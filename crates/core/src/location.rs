//! Process locations and the channel-type taxonomy of the paper's Table I.
//!
//! CellPilot's defining property is that a channel may join processes at
//! *any* level of the cluster — PPE, SPE, or non-Cell node — and the
//! library transparently applies whichever transport the endpoint pair
//! requires. The five cases are:
//!
//! | Type | Endpoints |
//! |------|-----------|
//! | 1 | PPE/non-Cell ↔ remote PPE/non-Cell |
//! | 2 | PPE ↔ local SPE |
//! | 3 | PPE or non-Cell ↔ remote SPE |
//! | 4 | SPE ↔ local SPE |
//! | 5 | SPE ↔ remote SPE |
//!
//! (Type 1 also covers two ranks co-resident on one node — plain Pilot/MPI
//! handles both.)

use cp_simnet::NodeId;
use std::fmt;

/// Handle to a CellPilot process (PPE-, non-Cell-, or SPE-resident).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CpProcess(pub usize);

/// The distinguished main process (MPI rank 0).
pub const CP_MAIN: CpProcess = CpProcess(0);

/// Handle to a CellPilot channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CpChannel(pub usize);

/// Where a process lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Location {
    /// A regular Pilot process: an MPI rank hosted on a node's PPE or on a
    /// non-Cell node.
    Rank {
        /// The MPI rank.
        rank: usize,
        /// The hosting node.
        node: NodeId,
    },
    /// An SPE process on the given Cell node. `slot` is the process's
    /// ordinal among the node's SPE processes (the physical SPE is chosen
    /// when the parent calls `PI_RunSPE`).
    Spe {
        /// The hosting Cell node.
        node: NodeId,
        /// SPE-process ordinal on that node.
        slot: usize,
    },
}

impl Location {
    /// The node this location is on.
    pub fn node(&self) -> NodeId {
        match *self {
            Location::Rank { node, .. } => node,
            Location::Spe { node, .. } => node,
        }
    }

    /// True for SPE-resident processes.
    pub fn is_spe(&self) -> bool {
        matches!(self, Location::Spe { .. })
    }
}

/// How a channel moves its data at run time — orthogonal to the Table-I
/// [`ChannelKind`] taxonomy, which is about *where* the endpoints live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ChannelMode {
    /// Two-sided rendezvous: writes travel through the Co-Pilot relay
    /// (one proxy hop per Co-Pilot between the endpoints). The default,
    /// and the fallback every channel supports.
    #[default]
    Rendezvous,
    /// One-sided put/get: the writer lands data directly in a window of
    /// the reading SPE's EA-mapped local store over the window fabric —
    /// one hop, no intermediate relay buffering. Requires the reader to
    /// be an SPE process.
    OneSided,
}

impl fmt::Display for ChannelMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ChannelMode::Rendezvous => "rendezvous",
            ChannelMode::OneSided => "one-sided",
        })
    }
}

/// The paper's Table I channel classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelKind {
    /// PPE/non-Cell ↔ PPE/non-Cell (plain Pilot over MPI).
    Type1,
    /// PPE ↔ local SPE.
    Type2,
    /// PPE/non-Cell ↔ remote SPE.
    Type3,
    /// SPE ↔ SPE on the same Cell node (Co-Pilot `memcpy`, no MPI).
    Type4,
    /// SPE ↔ SPE on different Cell nodes (two Co-Pilots relay via MPI).
    Type5,
}

impl ChannelKind {
    /// The Table-I type number (1–5) — the key observability metrics are
    /// bucketed under.
    pub fn type_number(self) -> u8 {
        match self {
            ChannelKind::Type1 => 1,
            ChannelKind::Type2 => 2,
            ChannelKind::Type3 => 3,
            ChannelKind::Type4 => 4,
            ChannelKind::Type5 => 5,
        }
    }
}

impl fmt::Display for ChannelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type {}", self.type_number())
    }
}

/// Classify a channel from its endpoint locations (order-insensitive:
/// the taxonomy is about the pair, not the direction).
pub fn classify(a: Location, b: Location) -> ChannelKind {
    match (a.is_spe(), b.is_spe()) {
        (false, false) => ChannelKind::Type1,
        (true, true) => {
            if a.node() == b.node() {
                ChannelKind::Type4
            } else {
                ChannelKind::Type5
            }
        }
        _ => {
            if a.node() == b.node() {
                ChannelKind::Type2
            } else {
                ChannelKind::Type3
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rank(r: usize, n: usize) -> Location {
        Location::Rank {
            rank: r,
            node: NodeId(n),
        }
    }

    fn spe(n: usize, s: usize) -> Location {
        Location::Spe {
            node: NodeId(n),
            slot: s,
        }
    }

    #[test]
    fn table_one_classification() {
        // Every row of Table I, both orientations.
        assert_eq!(classify(rank(0, 0), rank(1, 1)), ChannelKind::Type1);
        assert_eq!(classify(rank(0, 0), spe(0, 0)), ChannelKind::Type2);
        assert_eq!(classify(spe(0, 0), rank(0, 0)), ChannelKind::Type2);
        assert_eq!(classify(rank(0, 2), spe(1, 0)), ChannelKind::Type3);
        assert_eq!(classify(spe(0, 0), spe(0, 1)), ChannelKind::Type4);
        assert_eq!(classify(spe(0, 0), spe(1, 0)), ChannelKind::Type5);
    }

    #[test]
    fn co_resident_ranks_are_type1() {
        assert_eq!(classify(rank(0, 0), rank(1, 0)), ChannelKind::Type1);
    }

    #[test]
    fn display_names() {
        assert_eq!(ChannelKind::Type5.to_string(), "type 5");
    }
}
