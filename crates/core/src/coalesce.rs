//! Vectored bundle coalescing: consecutive small writes on one broadcast
//! bundle, batched into a single wire envelope per destination Co-Pilot.
//!
//! A heavy service workload fans many tiny requests from a front-tier rank
//! to SPE worker pools; sending each as its own MPI message pays the wire
//! and Co-Pilot pump once per request. A [`BundleCoalescer`] buffers the
//! writes and flushes them as one [`CP_BUNDLE_TAG`] envelope per node
//! (rank-destined members are sent individually — there is no Co-Pilot on
//! that side to unpack an envelope). Flushes trigger on **size** (the
//! configured batch fills) and on **deadline** (the oldest buffered write
//! has waited the configured virtual-time budget, checked at the next
//! write or explicit flush — the DES has no preemption).
//!
//! Flow control stays per member channel and is settled at [`write`] time:
//! the credit is acquired *before* the message is buffered, so a `Block`
//! policy blocks the writer right there, and a `Shed`/`DeadlineDrop`
//! rejection surfaces as [`CpError::Backpressure`] with nothing buffered —
//! a coalescer can never hide an overload behind its buffer.
//!
//! [`write`]: BundleCoalescer::write
//! [`CP_BUNDLE_TAG`]: crate::protocol::CP_BUNDLE_TAG

use crate::collective::CpBundle;
use crate::error::CpError;
use crate::location::Location;
use crate::protocol::{encode_bundle, CP_BUNDLE_TAG};
use crate::runtime::CellPilot;
use crate::tables::{CoalescePolicy, CpBundleUsage};
use crate::CpChannel;
use cp_des::SimTime;
use cp_mpisim::Datatype;
use cp_pilot::{
    fmt::parse_format,
    value::{check_against_format, pack_message, payload_bytes},
    PiValue,
};
use cp_simnet::NodeId;
use std::collections::BTreeMap;

/// Buffers small writes on a coalescing-enabled broadcast bundle and
/// flushes them as batched envelopes. Obtained from
/// [`CellPilot::coalescer`]; dropping it flushes best-effort.
pub struct BundleCoalescer<'a> {
    cp: &'a CellPilot,
    b: CpBundle,
    policy: CoalescePolicy,
    /// Buffered `(channel, packed payload)` writes, in arrival order.
    buf: Vec<(usize, Vec<u8>)>,
    /// Virtual time the oldest buffered write arrived (deadline anchor).
    opened_at: Option<SimTime>,
}

impl CellPilot {
    /// Open a coalescer over `b`. The bundle must be a broadcast bundle
    /// with a coalescing policy configured
    /// ([`CellPilotConfig::coalesce_bundle`]), and only its common
    /// endpoint may coalesce.
    ///
    /// [`CellPilotConfig::coalesce_bundle`]: crate::CellPilotConfig::coalesce_bundle
    pub fn coalescer(&self, b: CpBundle) -> Result<BundleCoalescer<'_>, CpError> {
        let entry = self
            .shared
            .tables
            .bundles
            .get(b.0)
            .ok_or(CpError::NoSuchBundle(b.0))?;
        if entry.usage != CpBundleUsage::Broadcast {
            return Err(CpError::BundleMisuse {
                bundle: b.0,
                detail: format!("bundle usage is {:?}", entry.usage),
            });
        }
        if entry.common != self.me {
            return Err(CpError::BundleMisuse {
                bundle: b.0,
                detail: "only the common endpoint may coalesce".into(),
            });
        }
        let policy = entry.coalesce.ok_or(CpError::BundleMisuse {
            bundle: b.0,
            detail: "bundle has no coalescing policy (CellPilotConfig::coalesce_bundle)".into(),
        })?;
        Ok(BundleCoalescer {
            cp: self,
            b,
            policy,
            buf: Vec::new(),
            opened_at: None,
        })
    }
}

impl BundleCoalescer<'_> {
    /// Buffer one write on a member channel of the bundle. Flushes first
    /// if the oldest buffered write has exceeded the deadline, and after
    /// buffering if the batch is full.
    pub fn write(
        &mut self,
        chan: CpChannel,
        format: &str,
        values: &[PiValue],
    ) -> Result<(), CpError> {
        let tables = self.cp.shared.tables.clone();
        if !tables.bundles[self.b.0].channels.contains(&chan) {
            return Err(CpError::BundleMisuse {
                bundle: self.b.0,
                detail: format!("channel {} is not a member", chan.0),
            });
        }
        let conv = parse_format(format)?;
        check_against_format(&conv, values)?;
        let data = pack_message(values);
        if self.deadline_expired() {
            self.flush()?;
        }
        // Settle flow control before buffering: a shed message never
        // enters the coalescer, so the caller sees the overload at the
        // write, not at some later flush.
        self.cp
            .shared
            .acquire_credit(self.cp.ctx(), &self.cp.name(), chan.0)?;
        self.charge(payload_bytes(values));
        self.opened_at.get_or_insert(self.cp.ctx().now());
        self.buf.push((chan.0, data));
        if self.buf.len() >= self.policy.max_batch || self.deadline_expired() {
            self.flush()?;
        }
        Ok(())
    }

    /// Number of writes currently buffered.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Flush everything buffered: SPE-destined entries are grouped per
    /// node into one `CP_BUNDLE_TAG` envelope for that node's Co-Pilot;
    /// rank-destined entries are sent individually under their channel
    /// tags. No-op when empty.
    pub fn flush(&mut self) -> Result<(), CpError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let tables = self.cp.shared.tables.clone();
        let entries = std::mem::take(&mut self.buf);
        self.opened_at = None;
        let total: usize = entries.iter().map(|(_, d)| d.len()).sum();
        // BTreeMap: envelope send order must be deterministic.
        let mut per_node: BTreeMap<NodeId, Vec<(u32, Vec<u8>)>> = BTreeMap::new();
        for (c, data) in entries {
            let n = data.len();
            match tables.processes[tables.channels[c].to.0].location {
                Location::Rank { rank, .. } => {
                    self.cp
                        .comm
                        .send_bytes(rank, c as i32, Datatype::Byte, n, data);
                }
                Location::Spe { node, .. } => {
                    per_node.entry(node).or_default().push((c as u32, data));
                }
            }
            crate::dlsvc::report(
                &self.cp.comm,
                &tables,
                crate::dlsvc::chan_event(&tables, cp_pilot::EV_WRITE, c),
            );
        }
        for (node, group) in per_node {
            let payload = encode_bundle(&group);
            let cp_rank = self.cp.shared.copilot_rank(node);
            let n = payload.len();
            self.cp
                .comm
                .send_bytes(cp_rank, CP_BUNDLE_TAG, Datatype::Byte, n, payload);
        }
        self.cp.shared.trace.record(
            self.cp.ctx().now(),
            &self.cp.name(),
            crate::trace::TraceOp::CoalescedFlush,
            self.b.0,
            total,
        );
        Ok(())
    }

    fn deadline_expired(&self) -> bool {
        self.opened_at.is_some_and(|t0| {
            let waited_ns = self.cp.ctx().now().as_nanos().saturating_sub(t0.as_nanos());
            waited_ns as f64 >= self.policy.deadline_us * 1_000.0
        })
    }

    fn charge(&self, bytes: usize) {
        let us = self.cp.shared.pilot_costs.op_us
            + bytes as f64 * self.cp.shared.pilot_costs.per_byte_us;
        self.cp
            .ctx()
            .advance(cp_des::SimDuration::from_micros_f64(us));
    }
}

impl Drop for BundleCoalescer<'_> {
    fn drop(&mut self) {
        // Buffered writes already hold their credits; losing them on drop
        // would leak the credits and silently drop acknowledged work.
        let _ = self.flush();
    }
}
