//! Channel-operation tracing: an optional in-memory log of every channel
//! operation with virtual timestamps — the observability tool behind the
//! Co-Pilot overhead analysis (paper §V: "our current analysis is that all
//! SPE-connected channel types are paying some overhead for the Co-Pilot
//! process"), and a debugging aid for applications.
//!
//! Enable with [`CellPilotOpts::trace`] and run via
//! [`CellPilotConfig::run_traced`]; every event carries the virtual time it
//! *completed* at, so consecutive events on one process measure the legs
//! of a transfer.
//!
//! [`CellPilotOpts::trace`]: crate::CellPilotOpts
//! [`CellPilotConfig::run_traced`]: crate::CellPilotConfig::run_traced

use cp_des::SimTime;
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// A rank-side `PI_Write` completed (message handed to MPI).
    RankWrite,
    /// A rank-side `PI_Read` completed (message verified and returned).
    RankRead,
    /// An SPE-side `PI_Write` completed (Co-Pilot confirmed).
    SpeWrite,
    /// An SPE-side `PI_Read` completed.
    SpeRead,
    /// The Co-Pilot finished servicing an SPE write request.
    CopilotWrite,
    /// The Co-Pilot delivered data into an SPE read buffer.
    CopilotDeliver,
    /// The Co-Pilot paired a type-4 write/read couple.
    CopilotPair,
    /// A one-sided put landed in the reader's window (writer side of the
    /// fabric; the acting process is the writing rank or the writer's
    /// Co-Pilot).
    OneSidedPut,
    /// The owning Co-Pilot moved a landed one-sided payload from the
    /// window into the reader SPE's posted buffer.
    OneSidedDeliver,
    /// An SPE process was launched (`PI_RunSPE`).
    RunSpe,
    /// A bundle broadcast was issued by its common endpoint.
    Broadcast,
    /// A bundle gather completed at its common endpoint.
    Gather,
    /// A coalescer flushed buffered small writes as batched envelopes
    /// (`bytes` counts the flushed payload total, `subject` is the bundle).
    CoalescedFlush,
}

impl fmt::Display for TraceOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceOp::RankWrite => "rank-write",
            TraceOp::RankRead => "rank-read",
            TraceOp::SpeWrite => "spe-write",
            TraceOp::SpeRead => "spe-read",
            TraceOp::CopilotWrite => "copilot-write",
            TraceOp::CopilotDeliver => "copilot-deliver",
            TraceOp::CopilotPair => "copilot-pair",
            TraceOp::OneSidedPut => "one-sided-put",
            TraceOp::OneSidedDeliver => "one-sided-deliver",
            TraceOp::RunSpe => "run-spe",
            TraceOp::Broadcast => "broadcast",
            TraceOp::Gather => "gather",
            TraceOp::CoalescedFlush => "coalesced-flush",
        };
        f.write_str(s)
    }
}

/// One traced event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual completion time.
    pub at: SimTime,
    /// Acting process name.
    pub process: String,
    /// The operation.
    pub op: TraceOp,
    /// Channel involved (or the SPE process id for [`TraceOp::RunSpe`]).
    pub subject: usize,
    /// Payload bytes moved (0 for control events).
    pub bytes: usize,
}

/// Shared trace sink.
#[derive(Clone, Default)]
pub struct TraceSink {
    inner: Option<Arc<Mutex<Vec<TraceEvent>>>>,
}

impl TraceSink {
    /// An enabled sink.
    pub fn enabled() -> TraceSink {
        TraceSink {
            inner: Some(Arc::new(Mutex::new(Vec::new()))),
        }
    }

    /// A disabled sink (records nothing, costs nothing).
    pub fn disabled() -> TraceSink {
        TraceSink { inner: None }
    }

    /// True if recording.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    pub(crate) fn record(
        &self,
        at: SimTime,
        process: &str,
        op: TraceOp,
        subject: usize,
        bytes: usize,
    ) {
        if let Some(sink) = &self.inner {
            sink.lock().push(TraceEvent {
                at,
                process: process.to_string(),
                op,
                subject,
                bytes,
            });
        }
    }

    /// Drain the recorded events, sorted by time.
    pub fn take(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(sink) => {
                let mut v = std::mem::take(&mut *sink.lock());
                v.sort_by_key(|e| e.at);
                v
            }
            None => Vec::new(),
        }
    }
}

/// Render a trace as an aligned log.
pub fn render_trace(events: &[TraceEvent]) -> String {
    let mut s = String::new();
    for e in events {
        s.push_str(&format!(
            "{:>12.3}us {:<24} {:<16} subject={:<4} {}B\n",
            e.at.as_micros_f64(),
            e.process,
            e.op.to_string(),
            e.subject,
            e.bytes
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let t = TraceSink::disabled();
        t.record(SimTime(5), "p", TraceOp::RankWrite, 0, 4);
        assert!(t.take().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_sink_sorts_by_time() {
        let t = TraceSink::enabled();
        t.record(SimTime(9), "b", TraceOp::RankRead, 1, 8);
        t.record(SimTime(3), "a", TraceOp::RankWrite, 1, 8);
        let v = t.take();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].process, "a");
        assert_eq!(v[1].process, "b");
        assert!(t.take().is_empty(), "take drains");
    }

    #[test]
    fn render_is_line_per_event() {
        let t = TraceSink::enabled();
        t.record(SimTime(1_500), "main", TraceOp::RunSpe, 2, 0);
        let out = render_trace(&t.take());
        assert!(out.contains("run-spe"));
        assert!(out.contains("main"));
        assert_eq!(out.lines().count(), 1);
    }
}
