//! The Co-Pilot wire protocol: what travels in mailbox words, SPE request
//! blocks, and completion words.
//!
//! An SPE-side `PI_Write`/`PI_Read` builds a 16-byte **request block** in
//! its local store — `[opcode, channel, buffer address, buffer length]` —
//! and posts the block's local-store address as a single word in its
//! outbound mailbox. The Co-Pilot reads the word, fetches the block through
//! the problem-state mapping, translates the buffer address to a main-
//! memory effective address, and services the request. Completion (or an
//! error) comes back as one word in the SPE's inbound mailbox. Keeping the
//! mailbox exchange to one word each way is what keeps the SPE-resident
//! runtime small and the latency close to a bare mailbox round trip.

/// SPE request opcode: this SPE is writing on the channel.
pub const OP_WRITE: u32 = 1;
/// SPE request opcode: this SPE wants to read from the channel.
pub const OP_READ: u32 = 2;
/// SPE request opcode: non-blocking poll — "does the channel have data
/// ready for me?" (the SPE-side `PI_ChannelHasData` extension).
pub const OP_POLL: u32 = 3;
/// SPE request opcode: an **eager inline write** — the payload travels in
/// the request block itself (immediately after the 16-byte header), so the
/// Co-Pilot needs no separate buffer translation + DMA round trip. Only
/// legal for payloads of at most [`EAGER_INLINE_MAX`] bytes.
pub const OP_WRITE_INLINE: u32 = 4;

/// Largest payload an eager inline transfer can carry: the inbound mailbox
/// is 4 words deep × 4 bytes, so 16 bytes is what one mailbox/control-word
/// exchange can move without falling back to a DMA round trip. This is
/// also the default `eager_threshold` of an eager-enabled channel.
pub const EAGER_INLINE_MAX: usize = 16;

/// Mailbox word that tells a Co-Pilot mailbox watcher to shut down.
pub const POISON_WORD: u32 = 0xFFFF_FFFF;

/// MPI tag of the Co-Pilot shutdown message (top of the positive tag
/// space, far above any channel id).
pub const CP_SHUTDOWN_TAG: i32 = i32::MAX;

/// MPI tag of a Co-Pilot multicast bundle message: one wire message whose
/// payload carries several channels' worth of identical data, fanned out
/// locally by the Co-Pilot (the hierarchical broadcast extension; the
/// paper lists SPE collectives as future work).
pub const CP_MCAST_TAG: i32 = i32::MAX - 1;

/// MPI tag of a coalesced bundle envelope: several small writes on the
/// channels of one bundle, batched into a single wire message and unpacked
/// by the destination Co-Pilot (the vectored-coalescing extension; unlike
/// [`CP_MCAST_TAG`] each entry carries its own payload).
pub const CP_BUNDLE_TAG: i32 = i32::MAX - 2;

/// Encode a coalesced bundle envelope:
/// `[u32 n][u32 chan; n][u32 len; n][data...]` (all big-endian, payloads
/// concatenated in entry order).
pub fn encode_bundle(entries: &[(u32, Vec<u8>)]) -> Vec<u8> {
    let total: usize = entries.iter().map(|(_, d)| d.len()).sum();
    let mut out = Vec::with_capacity(4 + 8 * entries.len() + total);
    out.extend_from_slice(&(entries.len() as u32).to_be_bytes());
    for (c, _) in entries {
        out.extend_from_slice(&c.to_be_bytes());
    }
    for (_, d) in entries {
        out.extend_from_slice(&(d.len() as u32).to_be_bytes());
    }
    for (_, d) in entries {
        out.extend_from_slice(d);
    }
    out
}

/// Decode a coalesced bundle envelope into `(channel, payload)` entries.
pub fn decode_bundle(bytes: &[u8]) -> Vec<(u32, Vec<u8>)> {
    let w = |i: usize| u32::from_be_bytes(bytes[i..i + 4].try_into().expect("bundle header"));
    let n = w(0) as usize;
    let mut entries = Vec::with_capacity(n);
    let mut off = 4 + 8 * n;
    for i in 0..n {
        let chan = w(4 + 4 * i);
        let len = w(4 + 4 * n + 4 * i) as usize;
        entries.push((chan, bytes[off..off + len].to_vec()));
        off += len;
    }
    entries
}

/// Encode a multicast payload: `[u32 n][u32 chan; n][data]`.
pub fn encode_mcast(chans: &[u32], data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 4 * chans.len() + data.len());
    out.extend_from_slice(&(chans.len() as u32).to_be_bytes());
    for c in chans {
        out.extend_from_slice(&c.to_be_bytes());
    }
    out.extend_from_slice(data);
    out
}

/// Decode a multicast payload into `(channels, data)`.
pub fn decode_mcast(bytes: &[u8]) -> (Vec<u32>, Vec<u8>) {
    let n = u32::from_be_bytes(bytes[0..4].try_into().expect("mcast header")) as usize;
    let mut chans = Vec::with_capacity(n);
    for i in 0..n {
        let off = 4 + 4 * i;
        chans.push(u32::from_be_bytes(
            bytes[off..off + 4].try_into().expect("mcast chan"),
        ));
    }
    (chans, bytes[4 + 4 * n..].to_vec())
}

/// Size of a request block in SPE local store.
pub const REQ_BLOCK_BYTES: usize = 16;

/// A decoded SPE request block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// [`OP_WRITE`] or [`OP_READ`].
    pub op: u32,
    /// Channel id.
    pub chan: u32,
    /// Local-store address of the data buffer.
    pub addr: u32,
    /// Buffer length: payload bytes for a write, capacity for a read.
    pub len: u32,
}

impl Request {
    /// Encode into the 16-byte local-store block layout.
    pub fn encode(&self) -> [u8; REQ_BLOCK_BYTES] {
        let mut b = [0u8; REQ_BLOCK_BYTES];
        b[0..4].copy_from_slice(&self.op.to_be_bytes());
        b[4..8].copy_from_slice(&self.chan.to_be_bytes());
        b[8..12].copy_from_slice(&self.addr.to_be_bytes());
        b[12..16].copy_from_slice(&self.len.to_be_bytes());
        b
    }

    /// Decode from the block layout.
    pub fn decode(b: &[u8]) -> Request {
        let w = |i: usize| u32::from_be_bytes(b[i..i + 4].try_into().expect("block size"));
        Request {
            op: w(0),
            chan: w(4),
            addr: w(8),
            len: w(12),
        }
    }
}

/// Completion-word error codes (delivered with the high bit set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionError {
    /// The incoming message does not fit the reader's local-store buffer.
    Overflow,
    /// Protocol violation (library bug or mismatched configuration).
    Internal,
    /// The channel's peer process is gone (a scripted SPE crash or rank
    /// death fired), so the request can never complete.
    PeerLost,
}

/// Completion-word flag: the payload of this (successful) completion was
/// delivered **inline** — it rides the same mailbox exchange as the
/// completion word instead of having been DMAed into the reader's
/// local-store buffer.
pub const COMPLETION_INLINE_FLAG: u32 = 0x4000_0000;

/// Encode a successful completion carrying the transferred byte count.
pub fn completion_ok(bytes: usize) -> u32 {
    debug_assert!(bytes < (1 << 30), "transfer too large for completion word");
    bytes as u32
}

/// Encode a successful completion whose payload was delivered inline
/// through the mailbox (see [`COMPLETION_INLINE_FLAG`]).
pub fn completion_ok_inline(bytes: usize) -> u32 {
    debug_assert!(bytes <= EAGER_INLINE_MAX, "inline payload too large");
    COMPLETION_INLINE_FLAG | bytes as u32
}

/// Was this (successful) completion's payload delivered inline?
pub fn completion_is_inline(word: u32) -> bool {
    word & 0x8000_0000 == 0 && word & COMPLETION_INLINE_FLAG != 0
}

/// Encode an error completion.
pub fn completion_err(e: CompletionError) -> u32 {
    0x8000_0000
        | match e {
            CompletionError::Overflow => 1,
            CompletionError::Internal => 2,
            CompletionError::PeerLost => 3,
        }
}

/// Decode a completion word (the inline flag, if set, is masked out of the
/// byte count — check it separately with [`completion_is_inline`]).
pub fn decode_completion(word: u32) -> Result<usize, CompletionError> {
    if word & 0x8000_0000 == 0 {
        Ok((word & !COMPLETION_INLINE_FLAG) as usize)
    } else {
        match word & 0x7FFF_FFFF {
            1 => Err(CompletionError::Overflow),
            3 => Err(CompletionError::PeerLost),
            _ => Err(CompletionError::Internal),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let r = Request {
            op: OP_READ,
            chan: 42,
            addr: 0x3F00,
            len: 1600,
        };
        assert_eq!(Request::decode(&r.encode()), r);
    }

    #[test]
    fn completion_roundtrip() {
        assert_eq!(decode_completion(completion_ok(1600)), Ok(1600));
        assert_eq!(decode_completion(completion_ok(0)), Ok(0));
        assert_eq!(
            decode_completion(completion_err(CompletionError::Overflow)),
            Err(CompletionError::Overflow)
        );
        assert_eq!(
            decode_completion(completion_err(CompletionError::Internal)),
            Err(CompletionError::Internal)
        );
        assert_eq!(
            decode_completion(completion_err(CompletionError::PeerLost)),
            Err(CompletionError::PeerLost)
        );
    }

    #[test]
    fn mcast_roundtrip() {
        let (chans, data) = decode_mcast(&encode_mcast(&[3, 7, 9], &[1, 2, 3]));
        assert_eq!(chans, vec![3, 7, 9]);
        assert_eq!(data, vec![1, 2, 3]);
        let (chans, data) = decode_mcast(&encode_mcast(&[], &[]));
        assert!(chans.is_empty() && data.is_empty());
    }

    #[test]
    fn poison_is_not_a_plausible_ls_address() {
        assert!(POISON_WORD as usize > cp_cellsim::LS_SIZE);
    }

    #[test]
    fn bundle_roundtrip() {
        let entries = vec![
            (3u32, vec![1u8, 2, 3]),
            (7u32, Vec::new()),
            (9u32, vec![0xAA; 16]),
        ];
        assert_eq!(decode_bundle(&encode_bundle(&entries)), entries);
        assert!(decode_bundle(&encode_bundle(&[])).is_empty());
    }

    #[test]
    fn inline_completion_roundtrip() {
        let w = completion_ok_inline(12);
        assert!(completion_is_inline(w));
        assert_eq!(decode_completion(w), Ok(12));
        assert!(!completion_is_inline(completion_ok(12)));
        assert!(!completion_is_inline(completion_err(
            CompletionError::Overflow
        )));
        assert_eq!(decode_completion(completion_ok(12)), Ok(12));
    }

    #[test]
    fn inline_max_matches_mailbox_depth() {
        // 4-deep inbound mailbox × 4-byte words: what one control-word
        // exchange can carry.
        assert_eq!(EAGER_INLINE_MAX, 4 * 4);
    }

    #[test]
    fn bundle_tag_below_other_reserved_tags() {
        let order = [CP_BUNDLE_TAG, CP_MCAST_TAG, CP_SHUTDOWN_TAG];
        assert!(order.windows(2).all(|w| w[0] < w[1]));
    }
}
