//! Collective operations over mixed PPE/SPE bundles — the extension the
//! paper names as future work: "CellPilot does not yet support collective
//! operations among SPEs, much less involving a mixture of SPE and other
//! processes."
//!
//! Pilot's MPMD convention is kept: only the bundle's common endpoint
//! calls [`CellPilot::broadcast`] / [`CellPilot::gather`] (or the
//! [`SpeCtx`] equivalents when the common endpoint is itself an SPE);
//! every other member just reads or writes its own channel.
//!
//! Broadcast from a rank endpoint is **hierarchical**: receivers are
//! grouped by location, rank receivers get individual messages, and each
//! Cell node's SPE receivers share *one* wire message to their Co-Pilot
//! (tag [`CP_MCAST_TAG`]), which fans the payload out locally — crossing
//! the slow gigabit wire once per node instead of once per SPE.
//!
//! [`CP_MCAST_TAG`]: crate::protocol::CP_MCAST_TAG

use crate::error::CpError;
use crate::location::{CpProcess, Location};
use crate::protocol::{encode_mcast, CP_MCAST_TAG};
use crate::runtime::CellPilot;
use crate::spe_rt::SpeCtx;
use crate::tables::{CpBundleEntry, CpBundleUsage};
use cp_mpisim::Datatype;
use cp_pilot::{
    fmt::parse_format,
    value::{check_against_format, pack_message, payload_bytes},
    PiValue,
};
use cp_simnet::NodeId;
use std::collections::BTreeMap;

/// Handle to a CellPilot bundle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CpBundle(pub usize);

fn bundle_entry(tables: &crate::tables::CpTables, b: CpBundle) -> Result<&CpBundleEntry, CpError> {
    tables.bundles.get(b.0).ok_or(CpError::NoSuchBundle(b.0))
}

fn check_common(
    entry: &CpBundleEntry,
    me: CpProcess,
    usage: CpBundleUsage,
    b: CpBundle,
) -> Result<(), CpError> {
    if entry.usage != usage {
        return Err(CpError::BundleMisuse {
            bundle: b.0,
            detail: format!("bundle usage is {:?}", entry.usage),
        });
    }
    if entry.common != me {
        return Err(CpError::BundleMisuse {
            bundle: b.0,
            detail: "only the common endpoint may invoke the collective".into(),
        });
    }
    Ok(())
}

impl CellPilot {
    /// `PI_Broadcast` (extension): send `values` to every reader of the
    /// bundle's channels. Receivers each call their side's `read` on their
    /// own channel.
    pub fn broadcast(&self, b: CpBundle, format: &str, values: &[PiValue]) -> Result<(), CpError> {
        let tables = self.shared.tables.clone();
        let entry = bundle_entry(&tables, b)?;
        check_common(entry, self.me, CpBundleUsage::Broadcast, b)?;
        let conv = parse_format(format)?;
        check_against_format(&conv, values)?;
        let data = pack_message(values);
        self.charge_collective(payload_bytes(values));
        // Group SPE readers by node; rank readers send individually.
        // BTreeMap: multicast send order must be deterministic.
        //
        // Flow control is per member channel: each copy of the message
        // consumes one credit on its own channel, even when several SPE
        // members share a single multicast wire message (the Co-Pilot's
        // fan-out drains each member channel individually). A member whose
        // policy sheds aborts the broadcast; credits grouped for the
        // not-yet-sent multicast are unwound so they cannot leak.
        let mut per_node: BTreeMap<NodeId, Vec<u32>> = BTreeMap::new();
        let mut grouped_unsent: Vec<usize> = Vec::new();
        for &c in &entry.channels {
            let chan = &tables.channels[c.0];
            if let Err(e) = self.shared.acquire_credit(self.ctx(), &self.name(), c.0) {
                for &u in &grouped_unsent {
                    self.shared.release_credit(u);
                }
                return Err(e);
            }
            match tables.processes[chan.to.0].location {
                Location::Rank { rank, .. } => {
                    self.comm_send(rank, c.0 as i32, data.clone());
                }
                Location::Spe { node, .. } => {
                    grouped_unsent.push(c.0);
                    per_node.entry(node).or_default().push(c.0 as u32);
                }
            }
        }
        for (node, chans) in per_node {
            let payload = encode_mcast(&chans, &data);
            let cp_rank = self.shared.copilot_rank(node);
            self.comm_send(cp_rank, CP_MCAST_TAG, payload);
        }
        // One write credit per member channel: every receiver (rank or
        // SPE) reports its own read wait against its own channel.
        for &c in &entry.channels {
            crate::dlsvc::report(
                &self.comm,
                &tables,
                crate::dlsvc::chan_event(&tables, cp_pilot::EV_WRITE, c.0),
            );
        }
        self.shared.trace.record(
            self.ctx().now(),
            &self.name(),
            crate::trace::TraceOp::Broadcast,
            b.0,
            data.len(),
        );
        Ok(())
    }

    /// `PI_Gather` (extension): collect one message from every channel of
    /// the bundle, in channel order. Writers — rank or SPE — each call
    /// their side's `write` on their own channel.
    pub fn gather(&self, b: CpBundle, format: &str) -> Result<Vec<Vec<PiValue>>, CpError> {
        let tables = self.shared.tables.clone();
        let channels = {
            let entry = bundle_entry(&tables, b)?;
            check_common(entry, self.me, CpBundleUsage::Gather, b)?;
            entry.channels.clone()
        };
        let mut out = Vec::with_capacity(channels.len());
        for c in channels {
            out.push(self.read(c, format)?);
        }
        Ok(out)
    }

    /// `PI_Select` (extension): block until some channel of a gather
    /// bundle has data ready at this (rank) endpoint — whatever the
    /// writers' locations, since SPE-originated data arrives via the
    /// writers' Co-Pilots under the same channel tags.
    pub fn select(&self, b: CpBundle) -> Result<crate::CpChannel, CpError> {
        let tables = self.shared.tables.clone();
        {
            let entry = bundle_entry(&tables, b)?;
            check_common(entry, self.me, CpBundleUsage::Gather, b)?;
        }
        let tags: Vec<i32> = tables.bundles[b.0]
            .channels
            .iter()
            .map(|c| c.0 as i32)
            .collect();
        let (_, tag, _, _) = self
            .comm
            .probe_match("PI_Select", |e| tags.contains(&e.tag));
        Ok(crate::CpChannel(tag as usize))
    }

    /// `PI_TrySelect` (extension): non-blocking [`CellPilot::select`].
    pub fn try_select(&self, b: CpBundle) -> Result<Option<crate::CpChannel>, CpError> {
        let tables = self.shared.tables.clone();
        {
            let entry = bundle_entry(&tables, b)?;
            check_common(entry, self.me, CpBundleUsage::Gather, b)?;
        }
        let tags: Vec<i32> = tables.bundles[b.0]
            .channels
            .iter()
            .map(|c| c.0 as i32)
            .collect();
        Ok(self
            .comm
            .iprobe_match(|e| tags.contains(&e.tag))
            .map(|(_, tag, _, _)| crate::CpChannel(tag as usize)))
    }

    fn charge_collective(&self, bytes: usize) {
        let us = self.shared.pilot_costs.op_us + bytes as f64 * self.shared.pilot_costs.per_byte_us;
        self.ctx().advance(cp_des::SimDuration::from_micros_f64(us));
    }

    fn comm_send(&self, rank: usize, tag: i32, data: Vec<u8>) {
        let n = data.len();
        self.comm.send_bytes(rank, tag, Datatype::Byte, n, data);
    }
}

impl SpeCtx {
    /// Broadcast from an SPE common endpoint: the SPE hands the message to
    /// its Co-Pilot once per channel (the SPE side stays thin — all
    /// routing intelligence lives on the PPE, per the paper's design
    /// principle).
    pub fn broadcast(&self, b: CpBundle, format: &str, values: &[PiValue]) -> Result<(), CpError> {
        let tables = self.shared_tables();
        let channels = {
            let entry = bundle_entry(&tables, b)?;
            check_common(entry, self.process(), CpBundleUsage::Broadcast, b)?;
            entry.channels.clone()
        };
        for c in channels {
            self.write(c, format, values)?;
        }
        Ok(())
    }

    /// Gather at an SPE common endpoint: read every channel in order.
    pub fn gather(&self, b: CpBundle, format: &str) -> Result<Vec<Vec<PiValue>>, CpError> {
        let tables = self.shared_tables();
        let channels = {
            let entry = bundle_entry(&tables, b)?;
            check_common(entry, self.process(), CpBundleUsage::Gather, b)?;
            entry.channels.clone()
        };
        let mut out = Vec::with_capacity(channels.len());
        for c in channels {
            out.push(self.read(c, format)?);
        }
        Ok(out)
    }
}

/// Reduce helper built on gather: apply `combine` elementwise over the
/// gathered contributions' first segment, decoded as `f64`.
pub fn reduce_f64<F>(rows: &[Vec<PiValue>], combine: F) -> Result<Vec<f64>, CpError>
where
    F: Fn(f64, f64) -> f64,
{
    let mut acc: Option<Vec<f64>> = None;
    for row in rows {
        let PiValue::Float64(vals) = &row[0] else {
            return Err(CpError::Args(cp_pilot::MatchError::TypeMismatch {
                index: 0,
                expected: Datatype::Float64,
                got: row[0].dtype(),
            }));
        };
        acc = Some(match acc {
            None => vals.clone(),
            Some(a) => a.iter().zip(vals).map(|(&x, &y)| combine(x, y)).collect(),
        });
    }
    Ok(acc.unwrap_or_default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_f64_combines_elementwise() {
        let rows = vec![
            vec![PiValue::Float64(vec![1.0, 2.0])],
            vec![PiValue::Float64(vec![10.0, 20.0])],
            vec![PiValue::Float64(vec![100.0, 200.0])],
        ];
        assert_eq!(reduce_f64(&rows, |a, b| a + b).unwrap(), vec![111.0, 222.0]);
        assert_eq!(reduce_f64(&rows, f64::max).unwrap(), vec![100.0, 200.0]);
        assert!(reduce_f64(&[], |a, b| a + b).unwrap().is_empty());
    }

    #[test]
    fn reduce_f64_rejects_wrong_type() {
        let rows = vec![vec![PiValue::Int32(vec![1])]];
        assert!(reduce_f64(&rows, |a, b| a + b).is_err());
    }
}
