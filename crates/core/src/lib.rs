#![warn(missing_docs)]
#![forbid(unsafe_code)]
//! # cellpilot — seamless communication for hybrid Cell clusters
//!
//! A Rust reproduction of **CellPilot** (Girard, Gardner, Carter, Grewal —
//! ICPP Workshops 2011): an extension of the Pilot process/channel library
//! that lets processes live on *any* processor of a hybrid cluster — PPEs,
//! SPEs, or non-Cell nodes — and communicate through one uniform
//! `PI_Write`/`PI_Read` API, "while hiding the complications of DMA
//! transfers, signals, mailboxes, alignment issues, and network transfers".
//!
//! Since the Cell BE platform is long unobtainable, the entire substrate is
//! simulated (see the `cp-cellsim`, `cp-simnet`, `cp-mpisim` crates) with a
//! latency model calibrated against the paper's measured baselines; the
//! library logic above it — the Co-Pilot protocol, channel routing, SPE
//! process control — is implemented in full.
//!
//! ## The paper's Figure 3/4 example
//!
//! Two Cell nodes; one SPE process writes an array of 100 integers to an
//! SPE process on the other node (a type-5 channel relayed through two
//! Co-Pilots):
//!
//! ```
//! use cellpilot::{CellPilotConfig, CellPilotOpts, SpeProgram, CP_MAIN};
//! use cp_simnet::ClusterSpec;
//!
//! let spec = ClusterSpec::two_cells_one_xeon();
//! let opts = CellPilotOpts::new();
//! let mut cfg = CellPilotConfig::one_rank_per_node(spec, opts);
//!
//! let spe_send = SpeProgram::new("spe_send", 2048, |spe, _arg, _ptr| {
//!     let array: Vec<i32> = (0..100).collect();
//!     spe.write_slice(cellpilot::CpChannel(0), &array).unwrap();
//! });
//! let spe_recv = SpeProgram::new("spe_recv", 2048, |spe, _arg, _ptr| {
//!     let vals = spe.read_vec::<i32>(cellpilot::CpChannel(0)).unwrap();
//!     assert_eq!(vals, (0..100).collect::<Vec<i32>>());
//! });
//!
//! let recv_ppe = cfg.create_process("recvFunc", 0, |cp, _| {
//!     // recv_spe is process id 3 (main=0, recvFunc=1, send_spe=2).
//!     let t = cp.run_spe(cellpilot::CpProcess(3), 0, 0).unwrap();
//!     cp.wait_spe(t);
//! }).unwrap();
//! let send_spe = cfg.create_spe_process(&spe_send, CP_MAIN, 0).unwrap();
//! let _recv_spe = cfg.create_spe_process(&spe_recv, recv_ppe, 0).unwrap();
//! let _between_spes = cfg.channel(send_spe, _recv_spe).build().unwrap();
//!
//! cfg.run(move |cp| {
//!     let t = cp.run_spe(send_spe, 0, 0).unwrap();
//!     cp.wait_spe(t);
//! }).unwrap();
//! ```

pub mod baseline;
mod coalesce;
mod collective;
mod config;
pub mod conformance;
mod copilot;
mod costs;
mod dlsvc;
mod error;
mod flow;
pub mod guide;
mod location;
mod program;
mod protocol;
mod runtime;
mod spe_rt;
mod tables;
pub mod trace;

pub use coalesce::BundleCoalescer;
pub use collective::{reduce_f64, CpBundle};
pub use config::{CellPilotConfig, CellPilotOpts, ChannelBuilder, SupervisionPolicy, TypedChannel};
pub use costs::{CellPilotCosts, SPE_RUNTIME_FOOTPRINT};
pub use cp_des::Backend;
pub use error::{CpError, ErrorKind, OverloadError};
pub use flow::OverloadPolicy;
pub use location::{classify, ChannelKind, ChannelMode, CpChannel, CpProcess, Location, CP_MAIN};
pub use program::SpeProgram;
pub use runtime::{CellPilot, SpeTask};
pub use spe_rt::SpeCtx;
pub use tables::CpBundleUsage;
pub use tables::CpTables;
pub use trace::{render_trace, TraceEvent, TraceOp, TraceSink};

// Re-export the pieces users need from the layers below.
pub use cp_pilot::{PiValue, PilotCosts};
// Static-analysis surface (see `cp-check`): diagnostics come back through
// `SimReport` incidents or a strict-mode abort, both rendering these types.
pub use cp_check::{CheckCode, Diagnostic, LintConfig, LintLevel, Severity};
