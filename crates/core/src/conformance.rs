//! Cross-backend conformance harness: seeded random wiring plans whose
//! observable behaviour must be identical on the DES simulator and the
//! native threads backend.
//!
//! The simulator is the oracle — it is deterministic, its golden traces are
//! pinned, and its semantics define the library. The native backend
//! ([`Backend::Native`]) must *agree on every observable*: per-channel
//! payload FIFOs, incident categories, outcome, and process census. What it
//! legitimately differs on — wall-clock timestamps, dispatch counts, thread
//! interleavings between independent channels — is exactly what
//! [`Observed`] does not record.
//!
//! Used by `tests/conformance.rs` (proptest over seeds) and the
//! `repro_conformance` bench binary (fixed seed sweep for CI, with
//! divergence artifacts). Both share [`WiringPlan::from_seed`] so a failing
//! seed reported by either is replayable in the other.

use crate::config::{CellPilotConfig, CellPilotOpts};
use crate::location::{CpChannel, CpProcess, CP_MAIN};
use crate::program::SpeProgram;
use cp_des::Backend;
use cp_simnet::ClusterSpec;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// What one conformance target does with the payloads main sends it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetKind {
    /// A rank process that echoes each payload back (ping-pong: two
    /// channels, strict alternation).
    RankEcho,
    /// A rank process that only consumes (burst: messages queue in its
    /// mailbox, FIFO order is the observable).
    RankSink,
    /// An SPE process that echoes each payload back through its Co-Pilot.
    SpeEcho,
    /// An SPE process that only consumes.
    SpeSink,
}

/// One spoke of the star: a peer process, its channel(s) from/to main, and
/// the payload schedule.
#[derive(Debug, Clone)]
pub struct TargetPlan {
    /// What the peer does.
    pub kind: TargetKind,
    /// Carry the inbound channel over the one-sided window fabric instead
    /// of the Co-Pilot relay (SPE targets only — one-sided readers must be
    /// SPE-resident).
    pub one_sided: bool,
    /// The payloads main writes, in order.
    pub msgs: Vec<Vec<i32>>,
}

/// A seeded random wiring graph: main plus 1–4 peers, mixed rank/SPE
/// endpoints, mixed rendezvous/one-sided transports, seeded payloads.
#[derive(Debug, Clone)]
pub struct WiringPlan {
    /// The generating seed ([`WiringPlan::from_seed`]) — quote it to replay.
    pub seed: u64,
    /// The spokes, in channel-declaration order.
    pub targets: Vec<TargetPlan>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl WiringPlan {
    /// Derive a plan deterministically from `seed`. The same seed always
    /// yields the same plan, on any host — the replay contract divergence
    /// reports depend on.
    pub fn from_seed(seed: u64) -> WiringPlan {
        let mut s = seed ^ 0xc0ff_ee11_d00d_f00d;
        let n_targets = 1 + (splitmix64(&mut s) % 4) as usize;
        let mut rank_left = 2; // app ranks 1 and 2 on two_cells_one_xeon
        let mut targets = Vec::with_capacity(n_targets);
        for _ in 0..n_targets {
            let roll = splitmix64(&mut s) % 4;
            let kind = match roll {
                0 if rank_left > 0 => TargetKind::RankEcho,
                1 if rank_left > 0 => TargetKind::RankSink,
                2 => TargetKind::SpeEcho,
                _ => TargetKind::SpeSink,
            };
            if matches!(kind, TargetKind::RankEcho | TargetKind::RankSink) {
                rank_left -= 1;
            }
            let one_sided = matches!(kind, TargetKind::SpeEcho | TargetKind::SpeSink)
                && splitmix64(&mut s).is_multiple_of(2);
            let n_msgs = 1 + (splitmix64(&mut s) % 3) as usize;
            let msgs = (0..n_msgs)
                .map(|_| {
                    let len = 1 + (splitmix64(&mut s) % 6) as usize;
                    (0..len).map(|_| splitmix64(&mut s) as i32).collect()
                })
                .collect();
            targets.push(TargetPlan {
                kind,
                one_sided,
                msgs,
            });
        }
        WiringPlan { seed, targets }
    }
}

/// The backend-independent observables of one plan execution.
///
/// Everything here must match between backends; anything timing-dependent
/// (virtual vs wall timestamps, dispatch counts, cross-channel
/// interleaving) is deliberately absent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Observed {
    /// Per-channel payload sequences in completion order, recorded at each
    /// reader (channel id → FIFO of payloads).
    pub payloads: BTreeMap<usize, Vec<Vec<i32>>>,
    /// Sorted multiset of incident category strings from the report.
    pub incidents: Vec<String>,
    /// `Ok(())` or the coarse error class (`"deadlock"`, `"panicked"`,
    /// `"aborted"`, `"time-limit"`) — error *messages* embed timestamps.
    pub outcome: Result<(), String>,
    /// Total process census from the report (0 when the run failed).
    pub processes: usize,
}

impl fmt::Display for Observed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.outcome {
            Ok(()) => writeln!(f, "outcome: ok ({} processes)", self.processes)?,
            Err(class) => writeln!(f, "outcome: error ({class})")?,
        }
        for (ch, fifo) in &self.payloads {
            writeln!(f, "channel {ch}: {} messages", fifo.len())?;
            for (i, p) in fifo.iter().enumerate() {
                writeln!(f, "  [{i}] {p:?}")?;
            }
        }
        for inc in &self.incidents {
            writeln!(f, "incident: {inc}")?;
        }
        Ok(())
    }
}

type Sink = Arc<Mutex<BTreeMap<usize, Vec<Vec<i32>>>>>;

fn record(sink: &Sink, channel: usize, payload: Vec<i32>) {
    sink.lock().entry(channel).or_default().push(payload);
}

/// Execute `plan` on `backend` and collect its observables.
pub fn run_plan(plan: &WiringPlan, backend: Backend) -> Observed {
    run_plan_traced(plan, backend, cp_trace::Recorder::disabled())
}

/// [`run_plan`] with an observability recorder attached — the
/// `repro_conformance` driver uses an enabled recorder's snapshot to
/// compute the native backend's wall-clock event and message rates.
pub fn run_plan_traced(
    plan: &WiringPlan,
    backend: Backend,
    recorder: cp_trace::Recorder,
) -> Observed {
    let sink: Sink = Arc::new(Mutex::new(BTreeMap::new()));
    let mut cfg = CellPilotConfig::one_rank_per_node(
        ClusterSpec::two_cells_one_xeon(),
        CellPilotOpts::new()
            .with_backend(backend)
            .with_tracing(recorder),
    );

    // main's execution script: per target, the channel ids to drive and
    // whether to ping-pong or burst; SPE targets carry the process to start.
    struct MainStep {
        inbound: CpChannel,
        outbound: Option<CpChannel>,
        spe: Option<CpProcess>,
        msgs: Vec<Vec<i32>>,
    }
    let mut script = Vec::new();
    let mut next_chan = 0usize;

    for (t_idx, t) in plan.targets.iter().enumerate() {
        let inbound = CpChannel(next_chan);
        let echo = matches!(t.kind, TargetKind::RankEcho | TargetKind::SpeEcho);
        let outbound = echo.then_some(CpChannel(next_chan + 1));
        next_chan += 1 + usize::from(echo);
        let n_msgs = t.msgs.len();

        let peer = match t.kind {
            TargetKind::RankEcho | TargetKind::RankSink => {
                let sink = sink.clone();
                cfg.create_process(&format!("peer{t_idx}"), t_idx as i32, move |cp, _| {
                    for _ in 0..n_msgs {
                        let v = cp.read_vec::<i32>(inbound).unwrap();
                        record(&sink, inbound.0, v.clone());
                        if let Some(out) = outbound {
                            cp.write_slice(out, &v).unwrap();
                        }
                    }
                })
                .expect("rank budget respected by the generator")
            }
            TargetKind::SpeEcho | TargetKind::SpeSink => {
                let sink = sink.clone();
                let prog = SpeProgram::new(&format!("spe{t_idx}"), 2048, move |spe, _, _| {
                    for _ in 0..n_msgs {
                        let v = spe.read_vec::<i32>(inbound).unwrap();
                        record(&sink, inbound.0, v.clone());
                        if let Some(out) = outbound {
                            spe.write_slice(out, &v).unwrap();
                        }
                    }
                });
                cfg.create_spe_process(&prog, CP_MAIN, t_idx as i32)
                    .expect("SPE slots plentiful on two_cells_one_xeon")
            }
        };

        let built_in = {
            let b = cfg.channel(CP_MAIN, peer);
            if t.one_sided {
                b.one_sided().build()
            } else {
                b.build()
            }
        }
        .expect("generator emits only well-formed channels");
        assert_eq!(
            built_in, inbound,
            "channel ids must follow declaration order"
        );
        if let Some(out) = outbound {
            let built_out = cfg.channel(peer, CP_MAIN).build().unwrap();
            assert_eq!(built_out, out);
        }

        script.push(MainStep {
            inbound,
            outbound,
            spe: matches!(t.kind, TargetKind::SpeEcho | TargetKind::SpeSink).then_some(peer),
            msgs: t.msgs.clone(),
        });
    }

    let main_sink = sink.clone();
    let result = cfg.run(move |cp| {
        let mut tasks = Vec::new();
        for step in &script {
            if let Some(spe) = step.spe {
                tasks.push(cp.run_spe(spe, 0, 0).unwrap());
            }
        }
        for step in &script {
            for msg in &step.msgs {
                cp.write_slice(step.inbound, msg).unwrap();
                if let Some(out) = step.outbound {
                    // Ping-pong: the echo must round-trip before the next
                    // write, or rendezvous legs would cross-block.
                    let back = cp.read_vec::<i32>(out).unwrap();
                    record(&main_sink, out.0, back);
                }
            }
        }
        for t in tasks {
            cp.wait_spe(t);
        }
    });

    let payloads = sink.lock().clone();
    observe_outcome(result, payloads)
}

/// Collapse a run result plus the recorded payload FIFOs into the
/// backend-independent [`Observed`] record.
fn observe_outcome(
    result: Result<cp_des::SimReport, cp_des::SimError>,
    payloads: BTreeMap<usize, Vec<Vec<i32>>>,
) -> Observed {
    match result {
        Ok(report) => Observed {
            payloads,
            incidents: {
                let mut cats: Vec<String> = report
                    .incidents
                    .iter()
                    .map(|i| i.category.as_str().to_string())
                    .collect();
                cats.sort();
                cats
            },
            outcome: Ok(()),
            processes: report.processes,
        },
        Err(e) => Observed {
            payloads,
            incidents: Vec::new(),
            outcome: Err(match e {
                cp_des::SimError::Deadlock { .. } => "deadlock".into(),
                cp_des::SimError::ProcessPanicked { .. } => "panicked".into(),
                cp_des::SimError::Aborted { .. } => "aborted".into(),
                cp_des::SimError::TimeLimitExceeded { .. } => "time-limit".into(),
            }),
            processes: 0,
        },
    }
}

/// Number of in-flight messages the saturated scenario's data channel
/// admits before its [`crate::OverloadPolicy::Shed`] policy starts refusing
/// writes.
pub const SATURATED_CAPACITY: usize = 3;
/// Messages the saturated scenario's writer bursts — three times the
/// capacity, so exactly `2 * SATURATED_CAPACITY` writes must shed.
pub const SATURATED_BURST: usize = 3 * SATURATED_CAPACITY;

/// Execute the fixed saturated-channel scenario on `backend`.
///
/// Main bursts [`SATURATED_BURST`] messages into a channel bounded at
/// [`SATURATED_CAPACITY`] with [`crate::OverloadPolicy::Shed`], while the reader
/// is parked on a control channel — nothing drains during the burst, so
/// exactly `burst - capacity` writes shed *regardless of backend timing*
/// (the race the gate closes: a wall-clock reader that drained mid-burst
/// would make native shed counts nondeterministic). Every shed must
/// surface as [`crate::ErrorKind::Backpressure`] with a `source()` chain, and
/// both backends must agree on the accepted-payload FIFO and the
/// `overload` / `message-shed` incident multiset.
pub fn run_saturated(backend: Backend) -> Observed {
    use crate::error::ErrorKind;
    use crate::flow::OverloadPolicy;
    use std::error::Error as _;

    let sink: Sink = Arc::new(Mutex::new(BTreeMap::new()));
    let mut cfg = CellPilotConfig::one_rank_per_node(
        ClusterSpec::two_cells_one_xeon(),
        CellPilotOpts::new().with_backend(backend),
    );

    const DATA: CpChannel = CpChannel(0);
    const COUNT: CpChannel = CpChannel(1);

    let reader_sink = sink.clone();
    let reader = cfg
        .create_process("reader", 0, move |cp, _| {
            // Parked here until the burst is over: the writer publishes how
            // many messages were accepted only after its last write.
            let n = cp.read_vec::<i32>(COUNT).unwrap()[0] as usize;
            for _ in 0..n {
                let v = cp.read_vec::<i32>(DATA).unwrap();
                record(&reader_sink, DATA.0, v);
            }
        })
        .expect("two_cells_one_xeon has an app rank free");

    let data = cfg
        .channel(CP_MAIN, reader)
        .capacity(SATURATED_CAPACITY)
        .overload_policy(OverloadPolicy::Shed)
        .build()
        .unwrap();
    assert_eq!(data, DATA);
    let count = cfg.channel(CP_MAIN, reader).build().unwrap();
    assert_eq!(count, COUNT);

    let result = cfg.run(move |cp| {
        let mut accepted = 0i32;
        for i in 0..SATURATED_BURST as i32 {
            match cp.write_slice(DATA, &[i, i * 3]) {
                Ok(()) => accepted += 1,
                Err(e) => {
                    assert_eq!(
                        e.kind(),
                        ErrorKind::Backpressure,
                        "a saturated Shed channel must refuse with Backpressure, got: {e}"
                    );
                    assert!(
                        e.source().is_some(),
                        "Backpressure must chain its OverloadError cause"
                    );
                }
            }
        }
        cp.write_slice(COUNT, &[accepted]).unwrap();
    });

    let payloads = sink.lock().clone();
    observe_outcome(result, payloads)
}

/// Run the saturated-channel scenario on both backends (sim first, as the
/// oracle) and return the divergence report, if any, alongside both
/// observations.
pub fn check_saturated() -> (Observed, Observed, Option<String>) {
    let oracle = run_saturated(Backend::Sim);
    let candidate = run_saturated(Backend::Native);
    let verdict = diff(&oracle, &candidate);
    (oracle, candidate, verdict)
}

/// Compare two executions of the same plan; `None` means they agree,
/// `Some` describes the first divergence.
pub fn diff(oracle: &Observed, candidate: &Observed) -> Option<String> {
    if oracle.outcome != candidate.outcome {
        return Some(format!(
            "outcome diverged: oracle {:?}, candidate {:?}",
            oracle.outcome, candidate.outcome
        ));
    }
    if oracle.processes != candidate.processes {
        return Some(format!(
            "process census diverged: oracle {}, candidate {}",
            oracle.processes, candidate.processes
        ));
    }
    if oracle.incidents != candidate.incidents {
        return Some(format!(
            "incident categories diverged: oracle {:?}, candidate {:?}",
            oracle.incidents, candidate.incidents
        ));
    }
    let channels: std::collections::BTreeSet<usize> = oracle
        .payloads
        .keys()
        .chain(candidate.payloads.keys())
        .copied()
        .collect();
    for ch in channels {
        let a = oracle.payloads.get(&ch);
        let b = candidate.payloads.get(&ch);
        if a != b {
            return Some(format!(
                "channel {ch} FIFO diverged:\n  oracle:    {a:?}\n  candidate: {b:?}"
            ));
        }
    }
    None
}

/// Run `plan` on both backends (sim first, as the oracle) and return the
/// divergence report, if any, alongside both observations.
pub fn check_plan(plan: &WiringPlan) -> (Observed, Observed, Option<String>) {
    let oracle = run_plan(plan, Backend::Sim);
    let candidate = run_plan(plan, Backend::Native);
    let verdict = diff(&oracle, &candidate);
    (oracle, candidate, verdict)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_seed_deterministic() {
        for seed in [0u64, 1, 42, u64::MAX] {
            let a = WiringPlan::from_seed(seed);
            let b = WiringPlan::from_seed(seed);
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
            assert!(!a.targets.is_empty() && a.targets.len() <= 4);
            let ranks = a
                .targets
                .iter()
                .filter(|t| matches!(t.kind, TargetKind::RankEcho | TargetKind::RankSink))
                .count();
            assert!(ranks <= 2, "seed {seed} overcommits app ranks");
        }
    }

    #[test]
    fn sim_run_is_reproducible() {
        let plan = WiringPlan::from_seed(7);
        let a = run_plan(&plan, Backend::Sim);
        let b = run_plan(&plan, Backend::Sim);
        assert_eq!(a, b, "the oracle must be deterministic");
        assert_eq!(a.outcome, Ok(()));
        assert!(!a.payloads.is_empty());
    }

    #[test]
    fn saturated_oracle_sheds_exactly_and_delivers_the_rest() {
        let obs = run_saturated(Backend::Sim);
        assert_eq!(obs.outcome, Ok(()));
        let fifo = &obs.payloads[&0];
        assert_eq!(
            fifo.len(),
            SATURATED_CAPACITY,
            "with the reader parked, exactly `capacity` writes may land"
        );
        for (i, p) in fifo.iter().enumerate() {
            let i = i as i32;
            assert_eq!(p, &vec![i, i * 3], "accepted messages keep FIFO order");
        }
        let sheds = SATURATED_BURST - SATURATED_CAPACITY;
        let expect: Vec<String> = std::iter::repeat_n("message-shed", sheds)
            .chain(std::iter::repeat_n("overload", sheds))
            .map(str::to_string)
            .collect();
        assert_eq!(obs.incidents, expect, "each shed reports both categories");
    }

    #[test]
    fn backends_agree_on_a_mixed_plan() {
        // Seed 3 exercises both transports; any divergence fails loudly
        // with the full observation dump.
        let plan = WiringPlan::from_seed(3);
        let (oracle, candidate, verdict) = check_plan(&plan);
        assert!(
            verdict.is_none(),
            "seed 3 diverged: {}\n--- sim ---\n{oracle}\n--- native ---\n{candidate}",
            verdict.unwrap()
        );
    }
}
