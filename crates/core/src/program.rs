//! SPE programs: the CellPilot equivalent of `spe_program_handle_t`.
//!
//! On the real Cell an SPE program is separately compiled object code that
//! a special linker embeds into the PPE executable "in the guise of
//! initialized static data"; `PI_CreateSPE` associates a process with that
//! handle, and the `PI_SPE_PROCESS`/`PI_SPE_END` macros bracket the SPE
//! function body and its argument transfer. Here an [`SpeProgram`] carries
//! the body as a closure plus the image size that will be reserved in the
//! 256 KB local store when the program is loaded (on top of the resident
//! CellPilot runtime's [`SPE_RUNTIME_FOOTPRINT`] bytes).
//!
//! [`SPE_RUNTIME_FOOTPRINT`]: crate::SPE_RUNTIME_FOOTPRINT

use crate::spe_rt::SpeCtx;
use std::fmt;
use std::sync::Arc;

/// The entry signature of an SPE program: the SPE context plus the two
/// `PI_RunSPE` arguments (an `int` and a pointer-sized value, "especially
/// useful when starting multiple instances of the same process function in
/// data parallel programming").
pub type SpeEntry = dyn Fn(&SpeCtx, i32, u64) + Send + Sync;

/// A loadable SPE program.
#[derive(Clone)]
pub struct SpeProgram {
    pub(crate) name: String,
    pub(crate) image_bytes: usize,
    pub(crate) entry: Arc<SpeEntry>,
}

impl SpeProgram {
    /// Define an SPE program. `image_bytes` is the code+static-data size of
    /// the program itself (the CellPilot runtime's footprint is added
    /// automatically at load time).
    pub fn new<F>(name: &str, image_bytes: usize, entry: F) -> SpeProgram
    where
        F: Fn(&SpeCtx, i32, u64) + Send + Sync + 'static,
    {
        SpeProgram {
            name: name.to_string(),
            image_bytes,
            entry: Arc::new(entry),
        }
    }

    /// The program's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The program image size in bytes.
    pub fn image_bytes(&self) -> usize {
        self.image_bytes
    }
}

impl fmt::Debug for SpeProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpeProgram")
            .field("name", &self.name)
            .field("image_bytes", &self.image_bytes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_is_cloneable_and_shares_entry() {
        let p = SpeProgram::new("worker", 4096, |_ctx, _a, _b| {});
        let q = p.clone();
        assert_eq!(q.name(), "worker");
        assert_eq!(q.image_bytes(), 4096);
        assert!(Arc::ptr_eq(&p.entry, &q.entry));
    }
}
