//! Credit-based flow control for bounded channels.
//!
//! Every queue a CellPilot message can sit in — a Co-Pilot's per-channel
//! `pending_mpi`/`pending_writes` tables, an MPI rank's mailbox, the
//! one-sided window fabric's landed-put queues — is bounded by the same
//! mechanism: a per-channel **credit ledger** shared by every process of
//! the application. A sender consumes one credit when its write enters the
//! pipeline and the credit returns when the message is finally drained by
//! the reader (a rank-side `read`, a Co-Pilot delivery into an SPE buffer,
//! a type-4 pairing, or a one-sided `take`). In-flight messages on a
//! channel therefore never exceed its configured capacity, whatever mix of
//! relay hops the channel type routes through.
//!
//! The ledger is deliberately *central* (one table in `AppShared`, not
//! per-process copies): a Co-Pilot failover hands the standby the same
//! ledger the primary was using, so credits consumed by messages still
//! parked in the dead primary's queues are returned when the standby
//! drains them — credit state migrates with the node exactly like the
//! wire-seq dedup state. The upstream exactly-once machinery (wire-seq
//! dedup in `cp-mpisim`, `next_seq` dedup in the window fabric) guarantees
//! each logical message is drained at most once, which is what keeps the
//! ledger conserved: never negative, never above capacity (the proptest in
//! this module drives that invariant through retransmission, duplication
//! and takeover schedules).
//!
//! Acquiring a credit on a channel below capacity is a single lock-guarded
//! check with **no** virtual-time charge and no kernel events — so runs
//! whose capacities are never reached (including every unbounded channel)
//! are byte-identical to runs without flow control at all.

use cp_des::SimDuration;
use parking_lot::Mutex;

/// What a sender does when its bounded channel is at capacity.
///
/// Selected per channel with
/// [`crate::ChannelBuilder::overload_policy`]; meaningless (and flagged by
/// the `cp-check` CP013 lint) without a
/// [`crate::ChannelBuilder::capacity`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// Block (virtual time in the sim, wall-clock on the native backend)
    /// until the reader drains a message and a credit returns. The
    /// default: lossless backpressure.
    #[default]
    Block,
    /// Fail the write immediately with
    /// [`crate::CpError::Backpressure`] and drop the message — load
    /// shedding for senders that would rather lose work than wait.
    Shed,
    /// Block up to the given (virtual-time) deadline waiting for a credit,
    /// then shed the message with [`crate::CpError::Backpressure`].
    DeadlineDrop(SimDuration),
}

impl OverloadPolicy {
    /// Stable kebab-case label (used in diagnostics and CP013 lint text).
    pub fn as_str(&self) -> &'static str {
        match self {
            OverloadPolicy::Block => "block",
            OverloadPolicy::Shed => "shed",
            OverloadPolicy::DeadlineDrop(_) => "deadline-drop",
        }
    }
}

/// Outcome of a non-blocking credit acquisition attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Acquire {
    /// A credit was consumed; `depth` is the channel's in-flight count
    /// including this message (its queue depth the moment it was sent).
    Granted { depth: usize },
    /// The channel is at its configured capacity.
    Full { capacity: usize },
}

/// One channel's credit state.
#[derive(Debug, Default)]
struct CreditState {
    /// `None` = unbounded (credits always granted, depth still tracked).
    capacity: Option<usize>,
    /// Messages sent but not yet drained by the reader.
    in_flight: usize,
    /// Deepest the in-flight count ever got.
    high_watermark: usize,
    /// Messages dropped by a `Shed`/`DeadlineDrop` policy.
    shed: u64,
}

/// The application-wide credit ledger: one [`CreditState`] per channel,
/// indexed by channel id. Shared via `AppShared` so every rank, SPE and
/// Co-Pilot (primary or standby) sees the same accounting.
pub(crate) struct FlowControl {
    chans: Vec<Mutex<CreditState>>,
}

impl FlowControl {
    /// Build the ledger from the configured per-channel capacities.
    pub(crate) fn new(capacities: impl IntoIterator<Item = Option<usize>>) -> FlowControl {
        FlowControl {
            chans: capacities
                .into_iter()
                .map(|capacity| {
                    Mutex::new(CreditState {
                        capacity,
                        ..CreditState::default()
                    })
                })
                .collect(),
        }
    }

    /// Try to consume one send credit on `chan`. Atomic check-and-claim:
    /// concurrent native-backend writers can never jointly exceed the
    /// capacity. Never blocks and never touches virtual time.
    pub(crate) fn try_acquire(&self, chan: usize) -> Acquire {
        let mut st = self.chans[chan].lock();
        if let Some(cap) = st.capacity {
            if st.in_flight >= cap {
                return Acquire::Full { capacity: cap };
            }
        }
        st.in_flight += 1;
        st.high_watermark = st.high_watermark.max(st.in_flight);
        Acquire::Granted {
            depth: st.in_flight,
        }
    }

    /// Return one credit on `chan` (the reader drained a message, or a
    /// failed send is unwinding). Saturates at zero: the exactly-once
    /// dedup layers upstream drain each message at most once, and a
    /// defensive duplicate release must not mint extra credits.
    pub(crate) fn release(&self, chan: usize) {
        if let Some(slot) = self.chans.get(chan) {
            let mut st = slot.lock();
            st.in_flight = st.in_flight.saturating_sub(1);
        }
    }

    /// Count one message dropped by an overload policy on `chan`.
    pub(crate) fn note_shed(&self, chan: usize) {
        self.chans[chan].lock().shed += 1;
    }

    /// The channel's configured capacity (`None` = unbounded).
    pub(crate) fn capacity(&self, chan: usize) -> Option<usize> {
        self.chans[chan].lock().capacity
    }

    /// Messages currently in flight on `chan`.
    #[cfg(test)]
    pub(crate) fn depth(&self, chan: usize) -> usize {
        self.chans[chan].lock().in_flight
    }

    /// The deepest the channel's in-flight count ever got.
    #[cfg(test)]
    pub(crate) fn high_watermark(&self, chan: usize) -> usize {
        self.chans[chan].lock().high_watermark
    }

    /// Messages dropped by the channel's overload policy so far.
    #[cfg(test)]
    pub(crate) fn sheds(&self, chan: usize) -> u64 {
        self.chans[chan].lock().shed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_channels_always_grant_and_track_watermark() {
        let f = FlowControl::new([None]);
        for i in 1..=100 {
            assert_eq!(f.try_acquire(0), Acquire::Granted { depth: i });
        }
        assert_eq!(f.high_watermark(0), 100);
        f.release(0);
        assert_eq!(f.depth(0), 99);
    }

    #[test]
    fn bounded_channel_refuses_past_capacity_and_recovers_on_release() {
        let f = FlowControl::new([Some(2)]);
        assert_eq!(f.try_acquire(0), Acquire::Granted { depth: 1 });
        assert_eq!(f.try_acquire(0), Acquire::Granted { depth: 2 });
        assert_eq!(f.try_acquire(0), Acquire::Full { capacity: 2 });
        f.note_shed(0);
        f.release(0);
        assert_eq!(f.try_acquire(0), Acquire::Granted { depth: 2 });
        assert_eq!(f.high_watermark(0), 2);
        assert_eq!(f.sheds(0), 1, "the refused acquire was counted as a shed");
    }

    #[test]
    fn release_saturates_at_zero() {
        let f = FlowControl::new([Some(1)]);
        f.release(0);
        f.release(0);
        assert_eq!(f.depth(0), 0);
        assert_eq!(f.try_acquire(0), Acquire::Granted { depth: 1 });
    }

    #[test]
    fn policy_labels_are_stable() {
        assert_eq!(OverloadPolicy::Block.as_str(), "block");
        assert_eq!(OverloadPolicy::Shed.as_str(), "shed");
        assert_eq!(
            OverloadPolicy::DeadlineDrop(SimDuration::from_micros(5)).as_str(),
            "deadline-drop"
        );
        assert_eq!(OverloadPolicy::default(), OverloadPolicy::Block);
    }

    // ---- credit-conservation proptest --------------------------------
    //
    // Model the whole delivery pipeline the ledger sits behind: senders
    // acquire a credit per logical message, the wire may duplicate or
    // retransmit envelopes, a Co-Pilot takeover may re-deliver everything
    // still parked in the dead primary's queues — but the exactly-once
    // dedup layer drains each logical message at most once, and that
    // single drain is what returns the credit. Under every schedule the
    // ledger must conserve: never negative, never above capacity.

    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        /// A sender attempts a write (acquire; sheds when full).
        Send,
        /// The wire duplicates the oldest undelivered envelope.
        Duplicate,
        /// The sender retransmits the oldest undelivered envelope.
        Retransmit,
        /// The reader drains the next envelope (dedup decides whether it
        /// is a fresh logical message).
        Deliver,
        /// Co-Pilot takeover: the standby adopts the shared ledger and
        /// re-queues every parked envelope (at-least-once redelivery).
        TakeOver,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        // Uniform choice; Send and Deliver are repeated to weight the
        // schedule toward actual traffic over fault injection.
        prop_oneof![
            Just(Op::Send),
            Just(Op::Send),
            Just(Op::Send),
            Just(Op::Duplicate),
            Just(Op::Retransmit),
            Just(Op::Deliver),
            Just(Op::Deliver),
            Just(Op::Deliver),
            Just(Op::TakeOver),
        ]
    }

    proptest! {
        #[test]
        fn credits_are_conserved_across_duplication_and_takeover(
            cap in 1usize..6,
            ops in proptest::collection::vec(op_strategy(), 1..120),
        ) {
            let f = FlowControl::new([Some(cap)]);
            let mut next_seq = 0u64;      // sender-side wire sequence
            let mut wire: Vec<u64> = Vec::new(); // envelopes in flight
            let mut delivered_below = 0u64; // dedup cursor (fabric-style)
            for op in ops {
                match op {
                    Op::Send => match f.try_acquire(0) {
                        Acquire::Granted { depth } => {
                            prop_assert!(depth <= cap, "depth {depth} > cap {cap}");
                            wire.push(next_seq);
                            next_seq += 1;
                        }
                        Acquire::Full { capacity } => {
                            prop_assert_eq!(capacity, cap);
                            f.note_shed(0);
                        }
                    },
                    Op::Duplicate | Op::Retransmit => {
                        if let Some(&seq) = wire.first() {
                            wire.push(seq);
                        }
                    }
                    Op::TakeOver => {
                        // The standby inherits the same ledger (no reset)
                        // and replays everything still parked.
                        let parked = wire.clone();
                        wire.extend(parked);
                    }
                    Op::Deliver => {
                        if wire.is_empty() {
                            continue;
                        }
                        let seq = wire.remove(0);
                        // Wire-seq dedup: only a first sighting drains the
                        // logical message and returns its credit.
                        if seq >= delivered_below {
                            delivered_below = seq + 1;
                            f.release(0);
                        }
                    }
                }
                let depth = f.depth(0);
                prop_assert!(depth <= cap, "in-flight {depth} exceeds capacity {cap}");
                prop_assert!(f.high_watermark(0) <= cap);
            }
        }
    }
}
