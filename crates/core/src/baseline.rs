//! Hand-coded baseline transfers — the paper's comparison points.
//!
//! Section V measures every channel type three ways: (1) via CellPilot,
//! (2) via "hand-coded SPE/PPE transfers using DMA", and (3) via
//! "hand-coded transfers using memory-mapped copying (i.e., CellPilot's
//! method, but without the generality of the Co-Pilot process)". This
//! module implements (2) and (3) directly against the simulated SDK
//! (`cp-cellsim`) and MPI (`cp-mpisim`) — exactly the style of code the
//! paper's 186-line SDK example needs: explicit mailbox words, DMA tag
//! management, and per-leg acknowledgements so buffers can be reused.
//!
//! Each `pingpong_*` function builds a dedicated mini-cluster, bounces a
//! message `reps` times between the two endpoints of the given channel
//! type, verifies the data, and returns the average **one-way** latency in
//! microseconds — the IMB PingPong convention Table II uses ("measured
//! time divided by the number of repetitions and halved").

use cp_cellsim::{ls_ea, CellNode, DmaDir};
use cp_des::{ProcCtx, SimDuration, SimTime, Simulation};
use cp_mpisim::{Datatype, MpiCosts, MpiWorld};
use cp_simnet::{ClusterSpec, NodeId};
use parking_lot::Mutex;
use std::sync::Arc;

/// Which hand-coded mechanism moves the bytes inside a Cell node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineImpl {
    /// MFC DMA transfers issued by the SPE.
    Dma,
    /// PPE `memcpy` through the memory-mapped local store.
    Copy,
}

/// Result of one ping-pong measurement.
#[derive(Debug, Clone, Copy)]
pub struct PingPong {
    /// Average one-way latency, µs.
    pub one_way_us: f64,
    /// Payload size, bytes.
    pub bytes: usize,
}

const GO: u32 = 0x60;
const ACK: u32 = 0x61;
const DONE: u32 = 0x62;

fn measure(total: SimTime, reps: usize) -> f64 {
    total.as_micros_f64() / (2.0 * reps as f64)
}

fn pattern(bytes: usize, round: usize) -> Vec<u8> {
    (0..bytes).map(|i| (i + round) as u8).collect()
}

/// Type 1: raw MPI ping-pong between two PPE ranks over the wire. DMA and
/// copy variants are identical here (no SPE involved) — the paper reports
/// the same numbers for both.
pub fn pingpong_type1(bytes: usize, reps: usize) -> PingPong {
    let spec = ClusterSpec::two_cells_one_xeon();
    let cluster = spec.build();
    let world = MpiWorld::new(cluster, vec![NodeId(0), NodeId(1)], MpiCosts::default());
    let mut sim = Simulation::new();
    let result = Arc::new(Mutex::new(SimTime::ZERO));
    let r2 = result.clone();
    let w2 = world.clone();
    world.launch(&mut sim, 0, "ping", move |comm| {
        let t0 = comm.ctx().now();
        for round in 0..reps {
            let data = pattern(bytes, round);
            comm.send_bytes(1, 0, Datatype::Byte, bytes, data.clone());
            let m = comm.recv(Some(1), Some(0));
            assert_eq!(m.data, data);
        }
        *r2.lock() = SimTime((comm.ctx().now() - t0).as_nanos());
    });
    w2.launch(&mut sim, 1, "pong", move |comm| {
        for _ in 0..reps {
            let m = comm.recv(Some(0), Some(0));
            comm.send_bytes(0, 0, Datatype::Byte, m.count, m.data);
        }
    });
    sim.run().expect("type1 baseline");
    let total = *result.lock();
    PingPong {
        one_way_us: measure(total, reps),
        bytes,
    }
}

/// Round a payload size up to a legal MFC transfer size.
fn dma_len(bytes: usize) -> usize {
    match bytes {
        0 => 1,
        1 | 2 | 4 | 8 => bytes,
        n if n % 16 == 0 => n,
        n => (n + 15) & !15,
    }
}

/// Spawn the hand-coded echo SPE program shared by types 2, 3 and 5.
///
/// DMA flavour, per one-way leg: notify + MFC transfer + ack — a mailbox
/// round trip plus the flat DMA cost, which is why the paper's DMA rows
/// are flat across sizes. Copy flavour: the PPE moves the bytes itself
/// through the mapped local store (uncached — hence the per-byte slope of
/// the copy rows); the SPE only handshakes.
fn spawn_spe_echo(
    ctx: &ProcCtx,
    cell: &Arc<CellNode>,
    imp: BaselineImpl,
    hw: usize,
    buf_ea: cp_cellsim::Ea,
    bytes: usize,
    reps: usize,
) -> cp_des::Pid {
    let cell2 = cell.clone();
    cell.start_spe(ctx, hw, "echo", 4096, move |sctx| {
        let costs = cell2.costs.clone();
        let ls_buf = cell2.spes[hw].ls.alloc(bytes.max(16), 16).unwrap();
        // Report my buffer address so the PPE side can find it.
        cell2.spes[hw]
            .mbox
            .spu_write_outbox(sctx, &costs, ls_buf as u32);
        for _ in 0..reps {
            match imp {
                BaselineImpl::Dma => {
                    // Inbound leg: wait GO, fetch, ack.
                    assert_eq!(cell2.spes[hw].mbox.spu_read_inbox(sctx, &costs), GO);
                    cell2
                        .dma(sctx, hw, DmaDir::Get, 0, ls_buf, buf_ea, dma_len(bytes))
                        .unwrap();
                    cell2.dma_wait(sctx, hw, 1 << 0);
                    cell2.spes[hw].mbox.spu_write_outbox(sctx, &costs, ACK);
                    // Echo leg: put back, signal DONE, wait ack.
                    cell2
                        .dma(sctx, hw, DmaDir::Put, 1, ls_buf, buf_ea, dma_len(bytes))
                        .unwrap();
                    cell2.dma_wait(sctx, hw, 1 << 1);
                    cell2.spes[hw].mbox.spu_write_outbox(sctx, &costs, DONE);
                    assert_eq!(cell2.spes[hw].mbox.spu_read_inbox(sctx, &costs), ACK);
                }
                BaselineImpl::Copy => {
                    // The PPE does both copies; the SPE only handshakes.
                    assert_eq!(cell2.spes[hw].mbox.spu_read_inbox(sctx, &costs), GO);
                    cell2.spes[hw].mbox.spu_write_outbox(sctx, &costs, ACK);
                    cell2.spes[hw].mbox.spu_write_outbox(sctx, &costs, DONE);
                    assert_eq!(cell2.spes[hw].mbox.spu_read_inbox(sctx, &costs), ACK);
                }
            }
        }
        cell2.spes[hw].ls.free(ls_buf).unwrap();
    })
    .expect("echo SPE starts")
}

/// One PPE-side round against the echo SPE. Returns the echoed bytes.
fn ppe_round(
    ctx: &ProcCtx,
    cell: &Arc<CellNode>,
    imp: BaselineImpl,
    hw: usize,
    ls_buf: usize,
    buf_ea: cp_cellsim::Ea,
    data: &[u8],
) -> Vec<u8> {
    let costs = &cell.costs;
    let bytes = data.len();
    match imp {
        BaselineImpl::Dma => {
            cell.mem.write(buf_ea.0 as usize, data).unwrap();
            cell.spes[hw].mbox.ppe_write_inbox(ctx, costs, GO);
            assert_eq!(cell.spes[hw].mbox.ppe_read_outbox(ctx, costs), ACK);
            assert_eq!(cell.spes[hw].mbox.ppe_read_outbox(ctx, costs), DONE);
            let back = cell.mem.read(buf_ea.0 as usize, bytes).unwrap();
            cell.spes[hw].mbox.ppe_write_inbox(ctx, costs, ACK);
            back
        }
        BaselineImpl::Copy => {
            // Inbound: store through the mapping, then handshake.
            cell.ea_write(ls_ea(hw, ls_buf), data).unwrap();
            ctx.advance(SimDuration::from_micros_f64(costs.memcpy_us(bytes, 1)));
            cell.spes[hw].mbox.ppe_write_inbox(ctx, costs, GO);
            assert_eq!(cell.spes[hw].mbox.ppe_read_outbox(ctx, costs), ACK);
            // Echo: wait DONE, load through the mapping, ack.
            assert_eq!(cell.spes[hw].mbox.ppe_read_outbox(ctx, costs), DONE);
            let back = cell.ea_read(ls_ea(hw, ls_buf), bytes).unwrap();
            ctx.advance(SimDuration::from_micros_f64(costs.memcpy_us(bytes, 1)));
            cell.spes[hw].mbox.ppe_write_inbox(ctx, costs, ACK);
            back
        }
    }
}

/// Type 2: PPE ↔ local SPE, hand-coded.
pub fn pingpong_type2(imp: BaselineImpl, bytes: usize, reps: usize) -> PingPong {
    let spec = ClusterSpec::two_cells_one_xeon();
    let cluster = spec.build();
    let cell = cluster.cell(NodeId(0)).clone();
    let mut sim = Simulation::new();
    let result = Arc::new(Mutex::new(SimTime::ZERO));
    let r2 = result.clone();
    sim.spawn("ppe", move |ctx| {
        let buf_ea = cell.mem.alloc(dma_len(bytes), 16).unwrap();
        let pid = spawn_spe_echo(ctx, &cell, imp, 0, buf_ea, bytes, reps);
        let ls_buf = cell.spes[0].mbox.ppe_read_outbox(ctx, &cell.costs) as usize;
        let t0 = ctx.now();
        for round in 0..reps {
            let data = pattern(bytes, round);
            let back = ppe_round(ctx, &cell, imp, 0, ls_buf, buf_ea, &data);
            assert_eq!(back, data);
        }
        *r2.lock() = SimTime((ctx.now() - t0).as_nanos());
        ctx.join(pid);
    });
    sim.run().expect("type2 baseline");
    let total = *result.lock();
    PingPong {
        one_way_us: measure(total, reps),
        bytes,
    }
}

/// Type 3: remote PPE rank ↔ SPE, hand-coded: MPI to a helper rank on the
/// SPE's node, which performs the local leg.
pub fn pingpong_type3(imp: BaselineImpl, bytes: usize, reps: usize) -> PingPong {
    let spec = ClusterSpec::two_cells_one_xeon();
    let cluster = spec.build();
    let cell = cluster.cell(NodeId(0)).clone();
    let world = MpiWorld::new(cluster, vec![NodeId(1), NodeId(0)], MpiCosts::default());
    let mut sim = Simulation::new();
    let result = Arc::new(Mutex::new(SimTime::ZERO));
    let r2 = result.clone();
    let w2 = world.clone();
    // Rank 0: the remote endpoint on node 1's PPE.
    world.launch(&mut sim, 0, "remote", move |comm| {
        let t0 = comm.ctx().now();
        for round in 0..reps {
            let data = pattern(bytes, round);
            comm.send_bytes(1, 0, Datatype::Byte, bytes, data.clone());
            let m = comm.recv(Some(1), Some(0));
            assert_eq!(m.data, data);
        }
        *r2.lock() = SimTime((comm.ctx().now() - t0).as_nanos());
    });
    // Rank 1: the helper PPE on the SPE's node.
    w2.launch(&mut sim, 1, "helper", move |comm| {
        let ctx = comm.ctx().clone();
        let buf_ea = cell.mem.alloc(dma_len(bytes), 16).unwrap();
        let pid = spawn_spe_echo(&ctx, &cell, imp, 0, buf_ea, bytes, reps);
        let ls_buf = cell.spes[0].mbox.ppe_read_outbox(&ctx, &cell.costs) as usize;
        for _ in 0..reps {
            let m = comm.recv(Some(0), Some(0));
            let back = ppe_round(&ctx, &cell, imp, 0, ls_buf, buf_ea, &m.data);
            comm.send_bytes(0, 0, Datatype::Byte, back.len(), back);
        }
        ctx.join(pid);
    });
    sim.run().expect("type3 baseline");
    let total = *result.lock();
    PingPong {
        one_way_us: measure(total, reps),
        bytes,
    }
}

/// Type 4: SPE ↔ SPE on one node, hand-coded, with the PPE relaying the
/// synchronization words (SPEs cannot poke each other's mailboxes; the
/// paper notes intra-Cell SPE coordination goes through the PPE).
pub fn pingpong_type4(imp: BaselineImpl, bytes: usize, reps: usize) -> PingPong {
    let spec = ClusterSpec::two_cells_one_xeon();
    let cluster = spec.build();
    let cell = cluster.cell(NodeId(0)).clone();
    let mut sim = Simulation::new();
    let result = Arc::new(Mutex::new(SimTime::ZERO));
    let r2 = result.clone();
    sim.spawn("ppe-coordinator", move |ctx| {
        let costs = cell.costs.clone();
        let cell_a = cell.clone();
        let pid_a = cell
            .start_spe(ctx, 0, "a", 4096, move |sctx| {
                let costs = cell_a.costs.clone();
                let buf = cell_a.spes[0].ls.alloc(bytes.max(16), 16).unwrap();
                cell_a.spes[0]
                    .mbox
                    .spu_write_outbox(sctx, &costs, buf as u32);
                let b_buf = cell_a.spes[0].mbox.spu_read_inbox(sctx, &costs) as usize;
                for round in 0..reps {
                    let data = pattern(bytes, round);
                    cell_a.spes[0].ls.write(buf, &data).unwrap();
                    match imp {
                        BaselineImpl::Dma => {
                            // Wait until B announces its buffer is free
                            // (relayed by the PPE), then push straight into
                            // B's mapped local store.
                            assert_eq!(cell_a.spes[0].mbox.spu_read_inbox(sctx, &costs), GO);
                            cell_a
                                .dma(
                                    sctx,
                                    0,
                                    DmaDir::Put,
                                    0,
                                    buf,
                                    ls_ea(1, b_buf),
                                    dma_len(bytes),
                                )
                                .unwrap();
                            cell_a.dma_wait(sctx, 0, 1 << 0);
                            cell_a.spes[0].mbox.spu_write_outbox(sctx, &costs, DONE);
                            // Wait for B's echo to land back in my LS.
                            assert_eq!(cell_a.spes[0].mbox.spu_read_inbox(sctx, &costs), DONE);
                        }
                        BaselineImpl::Copy => {
                            // Ask the PPE to copy A->B; wait for the leg
                            // ack, then for B's reply, then ack the round.
                            cell_a.spes[0].mbox.spu_write_outbox(sctx, &costs, GO);
                            assert_eq!(cell_a.spes[0].mbox.spu_read_inbox(sctx, &costs), ACK);
                            assert_eq!(cell_a.spes[0].mbox.spu_read_inbox(sctx, &costs), DONE);
                            cell_a.spes[0].mbox.spu_write_outbox(sctx, &costs, ACK);
                        }
                    }
                    let back = cell_a.spes[0].ls.read(buf, bytes).unwrap();
                    assert_eq!(back, data);
                }
                cell_a.spes[0].ls.free(buf).unwrap();
            })
            .unwrap();
        let cell_b = cell.clone();
        let pid_b = cell
            .start_spe(ctx, 1, "b", 4096, move |sctx| {
                let costs = cell_b.costs.clone();
                let buf = cell_b.spes[1].ls.alloc(bytes.max(16), 16).unwrap();
                cell_b.spes[1]
                    .mbox
                    .spu_write_outbox(sctx, &costs, buf as u32);
                let a_buf = cell_b.spes[1].mbox.spu_read_inbox(sctx, &costs) as usize;
                for _ in 0..reps {
                    match imp {
                        BaselineImpl::Dma => {
                            // Announce my buffer is free, wait for A's
                            // data, echo it back by DMA.
                            cell_b.spes[1].mbox.spu_write_outbox(sctx, &costs, GO);
                            assert_eq!(cell_b.spes[1].mbox.spu_read_inbox(sctx, &costs), DONE);
                            cell_b
                                .dma(
                                    sctx,
                                    1,
                                    DmaDir::Put,
                                    0,
                                    buf,
                                    ls_ea(0, a_buf),
                                    dma_len(bytes),
                                )
                                .unwrap();
                            cell_b.dma_wait(sctx, 1, 1 << 0);
                            cell_b.spes[1].mbox.spu_write_outbox(sctx, &costs, DONE);
                        }
                        BaselineImpl::Copy => {
                            // PPE copied A->B: ack receipt, then ask for
                            // the B->A reply copy and wait for its ack.
                            assert_eq!(cell_b.spes[1].mbox.spu_read_inbox(sctx, &costs), GO);
                            cell_b.spes[1].mbox.spu_write_outbox(sctx, &costs, ACK);
                            cell_b.spes[1].mbox.spu_write_outbox(sctx, &costs, GO);
                            assert_eq!(cell_b.spes[1].mbox.spu_read_inbox(sctx, &costs), ACK);
                        }
                    }
                }
                cell_b.spes[1].ls.free(buf).unwrap();
            })
            .unwrap();
        // Exchange buffer addresses.
        let a_buf = cell.spes[0].mbox.ppe_read_outbox(ctx, &costs) as usize;
        let b_buf = cell.spes[1].mbox.ppe_read_outbox(ctx, &costs) as usize;
        cell.spes[0].mbox.ppe_write_inbox(ctx, &costs, b_buf as u32);
        cell.spes[1].mbox.ppe_write_inbox(ctx, &costs, a_buf as u32);
        let t0 = ctx.now();
        if imp == BaselineImpl::Dma {
            for _ in 0..reps {
                // Relay B's buffer-ready announcement to A.
                assert_eq!(cell.spes[1].mbox.ppe_read_outbox(ctx, &costs), GO);
                cell.spes[0].mbox.ppe_write_inbox(ctx, &costs, GO);
                assert_eq!(cell.spes[0].mbox.ppe_read_outbox(ctx, &costs), DONE);
                cell.spes[1].mbox.ppe_write_inbox(ctx, &costs, DONE);
                assert_eq!(cell.spes[1].mbox.ppe_read_outbox(ctx, &costs), DONE);
                cell.spes[0].mbox.ppe_write_inbox(ctx, &costs, DONE);
            }
        } else {
            for _ in 0..reps {
                assert_eq!(cell.spes[0].mbox.ppe_read_outbox(ctx, &costs), GO);
                cell.ppe_memcpy(ctx, ls_ea(1, b_buf), ls_ea(0, a_buf), bytes)
                    .unwrap();
                cell.spes[1].mbox.ppe_write_inbox(ctx, &costs, GO);
                assert_eq!(cell.spes[1].mbox.ppe_read_outbox(ctx, &costs), ACK);
                cell.spes[0].mbox.ppe_write_inbox(ctx, &costs, ACK);
                assert_eq!(cell.spes[1].mbox.ppe_read_outbox(ctx, &costs), GO);
                cell.ppe_memcpy(ctx, ls_ea(0, a_buf), ls_ea(1, b_buf), bytes)
                    .unwrap();
                cell.spes[0].mbox.ppe_write_inbox(ctx, &costs, DONE);
                assert_eq!(cell.spes[0].mbox.ppe_read_outbox(ctx, &costs), ACK);
                cell.spes[1].mbox.ppe_write_inbox(ctx, &costs, ACK);
            }
        }
        let elapsed = ctx.now() - t0;
        ctx.join(pid_a);
        ctx.join(pid_b);
        *r2.lock() = SimTime(elapsed.as_nanos());
    });
    sim.run().expect("type4 baseline");
    let total = *result.lock();
    PingPong {
        one_way_us: measure(total, reps),
        bytes,
    }
}

/// Type 5: SPE ↔ remote SPE, hand-coded: each node's helper PPE rank does
/// the local leg and relays over MPI.
pub fn pingpong_type5(imp: BaselineImpl, bytes: usize, reps: usize) -> PingPong {
    let spec = ClusterSpec::two_cells_one_xeon();
    let cluster = spec.build();
    let cell0 = cluster.cell(NodeId(0)).clone();
    let cell1 = cluster.cell(NodeId(1)).clone();
    let world = MpiWorld::new(cluster, vec![NodeId(0), NodeId(1)], MpiCosts::default());
    let mut sim = Simulation::new();
    let result = Arc::new(Mutex::new(SimTime::ZERO));
    let r2 = result.clone();
    let w2 = world.clone();
    // Helper rank 0 on node 0 drives its SPE as the initiator. One loop
    // iteration = 2 full one-way transfers out + 2 back (the local echo
    // contributes a leg each way), so the elapsed time over `reps`
    // iterations is `2 * reps` round trips' worth of one-way pairs;
    // normalize by halving before the standard measure().
    world.launch(&mut sim, 0, "helper0", move |comm| {
        let ctx = comm.ctx().clone();
        let buf_ea = cell0.mem.alloc(dma_len(bytes), 16).unwrap();
        // The initiator's SPE echoes twice per iteration (outbound and
        // return), so it runs 2*reps rounds.
        let pid = spawn_spe_echo(&ctx, &cell0, imp, 0, buf_ea, bytes, 2 * reps);
        let ls_buf = cell0.spes[0].mbox.ppe_read_outbox(&ctx, &cell0.costs) as usize;
        let t0 = ctx.now();
        for round in 0..reps {
            let data = pattern(bytes, round);
            let out = ppe_round(&ctx, &cell0, imp, 0, ls_buf, buf_ea, &data);
            comm.send_bytes(1, 0, Datatype::Byte, out.len(), out);
            let m = comm.recv(Some(1), Some(0));
            let back = ppe_round(&ctx, &cell0, imp, 0, ls_buf, buf_ea, &m.data);
            assert_eq!(back, data);
        }
        // One iteration = SPE->wire->SPE out plus the same back: exactly
        // one type-5 round trip.
        *r2.lock() = SimTime((ctx.now() - t0).as_nanos());
        ctx.join(pid);
    });
    w2.launch(&mut sim, 1, "helper1", move |comm| {
        let ctx = comm.ctx().clone();
        let buf_ea = cell1.mem.alloc(dma_len(bytes), 16).unwrap();
        let pid = spawn_spe_echo(&ctx, &cell1, imp, 0, buf_ea, bytes, reps);
        let ls_buf = cell1.spes[0].mbox.ppe_read_outbox(&ctx, &cell1.costs) as usize;
        for _ in 0..reps {
            let m = comm.recv(Some(0), Some(0));
            let back = ppe_round(&ctx, &cell1, imp, 0, ls_buf, buf_ea, &m.data);
            comm.send_bytes(0, 0, Datatype::Byte, back.len(), back);
        }
        ctx.join(pid);
    });
    sim.run().expect("type5 baseline");
    let total = *result.lock();
    PingPong {
        one_way_us: measure(total, reps),
        bytes,
    }
}

/// Dispatch a baseline ping-pong by channel-type number (1..=5).
pub fn pingpong(chan_type: u8, imp: BaselineImpl, bytes: usize, reps: usize) -> PingPong {
    match chan_type {
        1 => pingpong_type1(bytes, reps),
        2 => pingpong_type2(imp, bytes, reps),
        3 => pingpong_type3(imp, bytes, reps),
        4 => pingpong_type4(imp, bytes, reps),
        5 => pingpong_type5(imp, bytes, reps),
        other => panic!("no such channel type {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const REPS: usize = 20;

    #[test]
    fn type1_matches_paper_anchor() {
        let p1 = pingpong_type1(1, REPS);
        let p1600 = pingpong_type1(1600, REPS);
        assert!((p1.one_way_us - 98.0).abs() < 5.0, "1B: {}", p1.one_way_us);
        assert!(
            (p1600.one_way_us - 160.0).abs() < 8.0,
            "1600B: {}",
            p1600.one_way_us
        );
    }

    #[test]
    fn type2_copy_matches_paper_anchor() {
        let p1 = pingpong_type2(BaselineImpl::Copy, 1, REPS);
        let p1600 = pingpong_type2(BaselineImpl::Copy, 1600, REPS);
        // Paper: 15 / 30. Band: same order, clear per-byte slope.
        assert!(
            p1.one_way_us > 8.0 && p1.one_way_us < 20.0,
            "1B: {}",
            p1.one_way_us
        );
        let slope = p1600.one_way_us - p1.one_way_us;
        assert!(
            (slope - 15.0).abs() < 3.0,
            "copy slope should be ~15us/1600B: {slope}"
        );
    }

    #[test]
    fn type2_dma_is_flat() {
        let p1 = pingpong_type2(BaselineImpl::Dma, 1, REPS);
        let p1600 = pingpong_type2(BaselineImpl::Dma, 1600, REPS);
        assert!(
            (p1600.one_way_us - p1.one_way_us).abs() < 1.0,
            "DMA should be flat: {} vs {}",
            p1.one_way_us,
            p1600.one_way_us
        );
        assert!(
            p1.one_way_us > 8.0 && p1.one_way_us < 20.0,
            "paper anchor 15: {}",
            p1.one_way_us
        );
    }

    #[test]
    fn type3_adds_wire_to_type2() {
        let t2 = pingpong_type2(BaselineImpl::Dma, 1, REPS).one_way_us;
        let t3 = pingpong_type3(BaselineImpl::Dma, 1, REPS).one_way_us;
        assert!(t3 > t2 + 80.0, "wire leg missing: t2={t2} t3={t3}");
        assert!((t3 - 114.0).abs() < 12.0, "paper anchor 114: {t3}");
    }

    #[test]
    fn type4_roughly_doubles_type2() {
        let t4_copy = pingpong_type4(BaselineImpl::Copy, 1600, REPS).one_way_us;
        assert!(
            t4_copy > 40.0 && t4_copy < 70.0,
            "paper anchor 60: {t4_copy}"
        );
        let t4_dma = pingpong_type4(BaselineImpl::Dma, 1, REPS).one_way_us;
        assert!(t4_dma > 18.0 && t4_dma < 40.0, "paper anchor 30: {t4_dma}");
        let t2_copy = pingpong_type2(BaselineImpl::Copy, 1600, REPS).one_way_us;
        assert!(
            t4_copy > 1.5 * t2_copy,
            "type4 ~ two local legs: {t4_copy} vs {t2_copy}"
        );
    }

    #[test]
    fn type5_is_two_local_legs_plus_wire() {
        let t5 = pingpong_type5(BaselineImpl::Dma, 1, REPS).one_way_us;
        assert!(t5 > 110.0 && t5 < 150.0, "paper anchor 131: {t5}");
        let t3 = pingpong_type3(BaselineImpl::Dma, 1, REPS).one_way_us;
        assert!(t5 > t3, "type5 adds a second local leg over type3");
    }

    #[test]
    fn dispatch_covers_all_types() {
        for t in 1..=5u8 {
            let p = pingpong(t, BaselineImpl::Copy, 16, 3);
            assert!(p.one_way_us > 0.0);
            assert_eq!(p.bytes, 16);
        }
    }
}
