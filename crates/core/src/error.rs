//! CellPilot error reporting: Pilot's source-located diagnostics extended
//! with the SPE-specific failure modes.

use cp_cellsim::{LsError, SpeRunError};
use cp_pilot::{FmtError, MatchError};
use std::fmt;

/// Everything a CellPilot call can report.
#[derive(Debug, Clone, PartialEq)]
pub enum CpError {
    /// `PI_CreateProcess` when every MPI rank is already assigned.
    TooManyProcesses {
        /// Ranks the launch configuration provided.
        available: usize,
    },
    /// Unknown process handle.
    NoSuchProcess(usize),
    /// Unknown channel handle.
    NoSuchChannel(usize),
    /// Channel endpoints must be distinct.
    SelfChannel,
    /// `PI_CreateSPE` with a parent that is not a PPE-resident process on a
    /// Cell node.
    BadSpeParent {
        /// The proposed parent's process id.
        parent: usize,
        /// Why it cannot parent an SPE process.
        reason: String,
    },
    /// `PI_RunSPE` by a process that is not the SPE process's parent.
    NotParent {
        /// The SPE process someone tried to launch.
        spe_process: usize,
        /// The offending caller.
        caller: String,
    },
    /// `PI_RunSPE` on a process that is not an SPE process.
    NotSpeProcess(usize),
    /// `PI_RunSPE` when every SPE of the node is busy.
    NoFreeSpe {
        /// The exhausted Cell node.
        node: usize,
    },
    /// The SPE process is already running.
    AlreadyRunning(usize),
    /// Write attempted by a process that is not the channel's writer.
    NotWriter {
        /// The channel id.
        channel: usize,
        /// The offending process.
        caller: String,
    },
    /// Read attempted by a process that is not the channel's reader.
    NotReader {
        /// The channel id.
        channel: usize,
        /// The offending process.
        caller: String,
    },
    /// Malformed format string.
    Format(FmtError),
    /// Arguments do not satisfy the format.
    Args(MatchError),
    /// Reader's format disagrees with the writer's message.
    FormatMismatch {
        /// The channel id.
        channel: usize,
        /// The disagreement.
        detail: MatchError,
    },
    /// The incoming message does not fit the SPE's read buffer.
    SpeBufferOverflow {
        /// The channel id.
        channel: usize,
        /// The buffer capacity that was exceeded.
        capacity: usize,
    },
    /// Unknown bundle handle.
    NoSuchBundle(usize),
    /// A bundle with no channels.
    EmptyBundle,
    /// Bundle channels do not share the required common endpoint.
    BundleCommonEndpoint,
    /// A channel was placed in more than one bundle.
    ChannelAlreadyBundled(usize),
    /// Wrong bundle operation or caller.
    BundleMisuse {
        /// The bundle id.
        bundle: usize,
        /// What was wrong.
        detail: String,
    },
    /// Local-store management failed (e.g. out of the 256 KB).
    LocalStore(LsError),
    /// SPE context management failed.
    SpeRun(SpeRunError),
}

impl fmt::Display for CpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpError::TooManyProcesses { available } => write!(
                f,
                "PI_CreateProcess: all {available} MPI processes already assigned"
            ),
            CpError::NoSuchProcess(p) => write!(f, "no such process (id {p})"),
            CpError::NoSuchChannel(c) => write!(f, "no such channel (id {c})"),
            CpError::SelfChannel => {
                write!(f, "PI_CreateChannel: endpoints must be distinct processes")
            }
            CpError::BadSpeParent { parent, reason } => {
                write!(
                    f,
                    "PI_CreateSPE: process {parent} cannot parent an SPE process: {reason}"
                )
            }
            CpError::NotParent {
                spe_process,
                caller,
            } => write!(
                f,
                "PI_RunSPE: '{caller}' is not the parent of SPE process {spe_process}"
            ),
            CpError::NotSpeProcess(p) => {
                write!(
                    f,
                    "PI_RunSPE: process {p} was not created with PI_CreateSPE"
                )
            }
            CpError::NoFreeSpe { node } => {
                write!(f, "PI_RunSPE: no free SPE on node {node}")
            }
            CpError::AlreadyRunning(p) => {
                write!(f, "PI_RunSPE: SPE process {p} is already running")
            }
            CpError::NotWriter { channel, caller } => write!(
                f,
                "PI_Write: process '{caller}' is not the writer of channel {channel}"
            ),
            CpError::NotReader { channel, caller } => write!(
                f,
                "PI_Read: process '{caller}' is not the reader of channel {channel}"
            ),
            CpError::Format(e) => write!(f, "bad format string: {e}"),
            CpError::Args(e) => write!(f, "arguments do not satisfy format: {e}"),
            CpError::FormatMismatch { channel, detail } => write!(
                f,
                "PI_Read on channel {channel}: reader format disagrees with writer: {detail}"
            ),
            CpError::SpeBufferOverflow { channel, capacity } => write!(
                f,
                "PI_Read on channel {channel}: message exceeds the SPE read buffer \
                 ({capacity} B); use a fixed-count format or raise the buffer limit"
            ),
            CpError::NoSuchBundle(b) => write!(f, "no such bundle (id {b})"),
            CpError::EmptyBundle => write!(f, "PI_CreateBundle: no channels given"),
            CpError::BundleCommonEndpoint => write!(
                f,
                "PI_CreateBundle: channels must share a common endpoint on the bundle side"
            ),
            CpError::ChannelAlreadyBundled(c) => {
                write!(
                    f,
                    "PI_CreateBundle: channel {c} already belongs to a bundle"
                )
            }
            CpError::BundleMisuse { bundle, detail } => {
                write!(f, "bundle {bundle} misuse: {detail}")
            }
            CpError::LocalStore(e) => write!(f, "{e}"),
            CpError::SpeRun(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CpError {}

impl From<FmtError> for CpError {
    fn from(e: FmtError) -> Self {
        CpError::Format(e)
    }
}

impl From<MatchError> for CpError {
    fn from(e: MatchError) -> Self {
        CpError::Args(e)
    }
}

impl From<LsError> for CpError {
    fn from(e: LsError) -> Self {
        CpError::LocalStore(e)
    }
}

impl From<SpeRunError> for CpError {
    fn from(e: SpeRunError) -> Self {
        CpError::SpeRun(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CpError::NoFreeSpe { node: 3 };
        assert!(e.to_string().contains("no free SPE on node 3"));
        let e = CpError::SpeBufferOverflow {
            channel: 9,
            capacity: 16384,
        };
        assert!(e.to_string().contains("16384"));
    }

    #[test]
    fn conversions() {
        let ls = LsError::BadFree(4);
        let e: CpError = ls.clone().into();
        assert_eq!(e, CpError::LocalStore(ls));
    }
}
