//! CellPilot error reporting: Pilot's source-located diagnostics extended
//! with the SPE-specific failure modes.
//!
//! [`CpError`] is the one error type the whole stack surfaces. Errors
//! raised by the layers underneath — the Pilot library ([`PilotError`])
//! and the simulation kernel ([`SimError`]) — are wrapped rather than
//! re-spelled, and remain reachable through [`std::error::Error::source`].
//! Callers that only care about the coarse class of a failure (was it
//! misuse? a resource limit? an injected fault?) match on the stable
//! [`CpError::kind`] accessor instead of the full variant list.

use cp_cellsim::{LsError, SpeRunError};
use cp_des::SimError;
use cp_pilot::{FmtError, MatchError, PilotError};
use std::fmt;

/// Coarse, stable classification of a [`CpError`].
///
/// New [`CpError`] variants may appear as the library grows, but each maps
/// into one of these kinds, so matching on `kind()` keeps compiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// Configuration-phase misuse: bad architecture declarations (unknown
    /// handles, self-channels, bundle shape errors, rank exhaustion).
    Config,
    /// Execution-phase API misuse: wrong process performing an operation.
    Usage,
    /// Format-string or data-description problems.
    Format,
    /// Hardware or resource limits: SPE exhaustion, local-store pressure.
    Resource,
    /// Injected-fault outcomes: deadlines missed, peers lost.
    Fault,
    /// Credit-based flow control pushed back: a bounded channel was at
    /// capacity and its overload policy shed the message or gave up on a
    /// bounded wait. Distinct from [`ErrorKind::Fault`]: nothing failed —
    /// the receiver is merely slower than the sender.
    Backpressure,
    /// An error from the Pilot layer underneath.
    Pilot,
    /// An error from the simulation kernel.
    Sim,
}

/// The structured cause carried by [`CpError::Backpressure`]: which
/// channel was overloaded, its configured capacity, the policy that
/// engaged, and what the policy did. Reachable through
/// [`std::error::Error::source`] so callers can introspect the overload
/// without string-matching the display text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverloadError {
    /// The saturated channel's id.
    pub channel: usize,
    /// The channel's configured capacity (messages in flight).
    pub capacity: usize,
    /// Stable label of the policy that engaged: `"shed"` or
    /// `"deadline-drop"`.
    pub policy: &'static str,
    /// What happened (shed immediately, or waited how long before drop).
    pub detail: String,
}

impl fmt::Display for OverloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "channel {} at capacity ({} in flight, policy {}): {}",
            self.channel, self.capacity, self.policy, self.detail
        )
    }
}

impl std::error::Error for OverloadError {}

/// Everything a CellPilot call can report.
#[derive(Debug, Clone, PartialEq)]
pub enum CpError {
    /// `PI_CreateProcess` when every MPI rank is already assigned.
    TooManyProcesses {
        /// Ranks the launch configuration provided.
        available: usize,
    },
    /// Unknown process handle.
    NoSuchProcess(usize),
    /// Unknown channel handle.
    NoSuchChannel(usize),
    /// Channel endpoints must be distinct.
    SelfChannel,
    /// `PI_CreateSPE` with a parent that is not a PPE-resident process on a
    /// Cell node.
    BadSpeParent {
        /// The proposed parent's process id.
        parent: usize,
        /// Why it cannot parent an SPE process.
        reason: String,
    },
    /// `PI_RunSPE` by a process that is not the SPE process's parent.
    NotParent {
        /// The SPE process someone tried to launch.
        spe_process: usize,
        /// The offending caller.
        caller: String,
    },
    /// `PI_RunSPE` on a process that is not an SPE process.
    NotSpeProcess(usize),
    /// `PI_RunSPE` when every SPE of the node is busy.
    NoFreeSpe {
        /// The exhausted Cell node.
        node: usize,
    },
    /// The SPE process is already running.
    AlreadyRunning(usize),
    /// Write attempted by a process that is not the channel's writer.
    NotWriter {
        /// The channel id.
        channel: usize,
        /// The offending process.
        caller: String,
    },
    /// Read attempted by a process that is not the channel's reader.
    NotReader {
        /// The channel id.
        channel: usize,
        /// The offending process.
        caller: String,
    },
    /// Malformed format string.
    Format(FmtError),
    /// Arguments do not satisfy the format.
    Args(MatchError),
    /// Reader's format disagrees with the writer's message.
    FormatMismatch {
        /// The channel id.
        channel: usize,
        /// The disagreement.
        detail: MatchError,
    },
    /// The incoming message does not fit the SPE's read buffer.
    SpeBufferOverflow {
        /// The channel id.
        channel: usize,
        /// The buffer capacity that was exceeded.
        capacity: usize,
    },
    /// Unknown bundle handle.
    NoSuchBundle(usize),
    /// A bundle with no channels.
    EmptyBundle,
    /// Bundle channels do not share the required common endpoint.
    BundleCommonEndpoint,
    /// A channel was placed in more than one bundle.
    ChannelAlreadyBundled(usize),
    /// Wrong bundle operation or caller.
    BundleMisuse {
        /// The bundle id.
        bundle: usize,
        /// What was wrong.
        detail: String,
    },
    /// A flow-control capacity was declared incorrectly (zero).
    BadCapacity {
        /// The channel id.
        channel: usize,
        /// What was wrong.
        detail: String,
    },
    /// A one-sided channel or its window was declared or used incorrectly
    /// (rank-resident reader, window placement on a non-one-sided channel,
    /// fence on a rendezvous channel, ...).
    WindowMisuse {
        /// The channel id.
        channel: usize,
        /// What was wrong.
        detail: String,
    },
    /// Local-store management failed (e.g. out of the 256 KB).
    LocalStore(LsError),
    /// SPE context management failed.
    SpeRun(SpeRunError),
    /// A channel operation missed its deadline or exhausted its retry
    /// budget without the peer being known dead.
    Timeout {
        /// The channel id.
        channel: usize,
        /// What ran out of time (operation and bound).
        detail: String,
    },
    /// Credit-based flow control refused the send: the channel was at its
    /// configured capacity and the overload policy shed the message
    /// (`Shed`) or abandoned a bounded wait (`DeadlineDrop`). The wrapped
    /// [`OverloadError`] is reachable through
    /// [`std::error::Error::source`].
    Backpressure(OverloadError),
    /// The channel's peer process was lost to an injected fault.
    PeerLost {
        /// The channel id.
        channel: usize,
        /// Name of the lost peer process.
        peer: String,
    },
    /// The deadlock-detection service found a circular wait.
    CircularWait {
        /// Endpoint names forming the cycle, in wait-for order, including
        /// any relaying Co-Pilot hops.
        cycle: Vec<String>,
    },
    /// An error surfaced by the Pilot layer underneath.
    Pilot(PilotError),
    /// An error surfaced by the simulation kernel.
    Sim(SimError),
}

impl CpError {
    /// The coarse, stable classification of this error (see [`ErrorKind`]).
    pub fn kind(&self) -> ErrorKind {
        match self {
            CpError::TooManyProcesses { .. }
            | CpError::NoSuchProcess(_)
            | CpError::NoSuchChannel(_)
            | CpError::SelfChannel
            | CpError::BadSpeParent { .. }
            | CpError::NoSuchBundle(_)
            | CpError::EmptyBundle
            | CpError::BundleCommonEndpoint
            | CpError::ChannelAlreadyBundled(_)
            | CpError::BadCapacity { .. }
            | CpError::WindowMisuse { .. } => ErrorKind::Config,
            CpError::NotParent { .. }
            | CpError::NotSpeProcess(_)
            | CpError::AlreadyRunning(_)
            | CpError::NotWriter { .. }
            | CpError::NotReader { .. }
            | CpError::CircularWait { .. }
            | CpError::BundleMisuse { .. } => ErrorKind::Usage,
            CpError::Format(_) | CpError::Args(_) | CpError::FormatMismatch { .. } => {
                ErrorKind::Format
            }
            CpError::NoFreeSpe { .. }
            | CpError::SpeBufferOverflow { .. }
            | CpError::LocalStore(_)
            | CpError::SpeRun(_) => ErrorKind::Resource,
            CpError::Timeout { .. } | CpError::PeerLost { .. } => ErrorKind::Fault,
            CpError::Backpressure(_) => ErrorKind::Backpressure,
            CpError::Pilot(_) => ErrorKind::Pilot,
            CpError::Sim(_) => ErrorKind::Sim,
        }
    }
}

impl fmt::Display for CpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpError::TooManyProcesses { available } => write!(
                f,
                "PI_CreateProcess: all {available} MPI processes already assigned"
            ),
            CpError::NoSuchProcess(p) => write!(f, "no such process (id {p})"),
            CpError::NoSuchChannel(c) => write!(f, "no such channel (id {c})"),
            CpError::SelfChannel => {
                write!(f, "PI_CreateChannel: endpoints must be distinct processes")
            }
            CpError::BadSpeParent { parent, reason } => {
                write!(
                    f,
                    "PI_CreateSPE: process {parent} cannot parent an SPE process: {reason}"
                )
            }
            CpError::NotParent {
                spe_process,
                caller,
            } => write!(
                f,
                "PI_RunSPE: '{caller}' is not the parent of SPE process {spe_process}"
            ),
            CpError::NotSpeProcess(p) => {
                write!(
                    f,
                    "PI_RunSPE: process {p} was not created with PI_CreateSPE"
                )
            }
            CpError::NoFreeSpe { node } => {
                write!(f, "PI_RunSPE: no free SPE on node {node}")
            }
            CpError::AlreadyRunning(p) => {
                write!(f, "PI_RunSPE: SPE process {p} is already running")
            }
            CpError::NotWriter { channel, caller } => write!(
                f,
                "PI_Write: process '{caller}' is not the writer of channel {channel}"
            ),
            CpError::NotReader { channel, caller } => write!(
                f,
                "PI_Read: process '{caller}' is not the reader of channel {channel}"
            ),
            CpError::Format(e) => write!(f, "bad format string: {e}"),
            CpError::Args(e) => write!(f, "arguments do not satisfy format: {e}"),
            CpError::FormatMismatch { channel, detail } => write!(
                f,
                "PI_Read on channel {channel}: reader format disagrees with writer: {detail}"
            ),
            CpError::SpeBufferOverflow { channel, capacity } => write!(
                f,
                "PI_Read on channel {channel}: message exceeds the SPE read buffer \
                 ({capacity} B); use a fixed-count format or raise the buffer limit"
            ),
            CpError::NoSuchBundle(b) => write!(f, "no such bundle (id {b})"),
            CpError::EmptyBundle => write!(f, "PI_CreateBundle: no channels given"),
            CpError::BundleCommonEndpoint => write!(
                f,
                "PI_CreateBundle: channels must share a common endpoint on the bundle side"
            ),
            CpError::ChannelAlreadyBundled(c) => {
                write!(
                    f,
                    "PI_CreateBundle: channel {c} already belongs to a bundle"
                )
            }
            CpError::BundleMisuse { bundle, detail } => {
                write!(f, "bundle {bundle} misuse: {detail}")
            }
            CpError::BadCapacity { channel, detail } => {
                write!(f, "channel {channel} capacity misuse: {detail}")
            }
            CpError::WindowMisuse { channel, detail } => {
                write!(f, "channel {channel} window misuse: {detail}")
            }
            CpError::LocalStore(e) => write!(f, "{e}"),
            CpError::SpeRun(e) => write!(f, "{e}"),
            CpError::Timeout { channel, detail } => {
                write!(f, "channel {channel} operation timed out: {detail}")
            }
            CpError::Backpressure(e) => {
                write!(f, "PI_Write backpressure: {e}")
            }
            CpError::PeerLost { channel, peer } => {
                write!(f, "channel {channel}: peer process '{peer}' was lost")
            }
            CpError::CircularWait { cycle } => {
                write!(
                    f,
                    "DEADLOCK: circular wait detected: {}",
                    cycle.join(" -> ")
                )
            }
            CpError::Pilot(e) => write!(f, "pilot layer: {e}"),
            CpError::Sim(e) => write!(f, "simulation: {e}"),
        }
    }
}

impl std::error::Error for CpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CpError::Format(e) => Some(e),
            CpError::Args(e) => Some(e),
            CpError::FormatMismatch { detail, .. } => Some(detail),
            CpError::LocalStore(e) => Some(e),
            CpError::SpeRun(e) => Some(e),
            CpError::Pilot(e) => Some(e),
            CpError::Sim(e) => Some(e),
            CpError::Backpressure(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FmtError> for CpError {
    fn from(e: FmtError) -> Self {
        CpError::Format(e)
    }
}

impl From<MatchError> for CpError {
    fn from(e: MatchError) -> Self {
        CpError::Args(e)
    }
}

impl From<LsError> for CpError {
    fn from(e: LsError) -> Self {
        CpError::LocalStore(e)
    }
}

impl From<SpeRunError> for CpError {
    fn from(e: SpeRunError) -> Self {
        CpError::SpeRun(e)
    }
}

impl From<PilotError> for CpError {
    fn from(e: PilotError) -> Self {
        CpError::Pilot(e)
    }
}

impl From<SimError> for CpError {
    fn from(e: SimError) -> Self {
        CpError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CpError::NoFreeSpe { node: 3 };
        assert!(e.to_string().contains("no free SPE on node 3"));
        let e = CpError::SpeBufferOverflow {
            channel: 9,
            capacity: 16384,
        };
        assert!(e.to_string().contains("16384"));
    }

    #[test]
    fn conversions() {
        let ls = LsError::BadFree(4);
        let e: CpError = ls.clone().into();
        assert_eq!(e, CpError::LocalStore(ls));
    }

    #[test]
    fn kinds_are_stable_coarse_classes() {
        assert_eq!(CpError::SelfChannel.kind(), ErrorKind::Config);
        assert_eq!(CpError::NotSpeProcess(1).kind(), ErrorKind::Usage);
        assert_eq!(CpError::NoFreeSpe { node: 0 }.kind(), ErrorKind::Resource);
        assert_eq!(
            CpError::Timeout {
                channel: 0,
                detail: "x".into()
            }
            .kind(),
            ErrorKind::Fault
        );
        assert_eq!(
            CpError::PeerLost {
                channel: 0,
                peer: "p".into()
            }
            .kind(),
            ErrorKind::Fault
        );
        assert_eq!(
            CpError::Pilot(PilotError::SelfChannel).kind(),
            ErrorKind::Pilot
        );
    }

    #[test]
    fn source_chains_reach_wrapped_errors() {
        use std::error::Error;
        let e = CpError::Pilot(PilotError::NoSuchChannel(3));
        let src = e.source().expect("pilot source");
        assert!(src.to_string().contains("no such channel"));
        let e = CpError::Sim(SimError::TimeLimitExceeded {
            limit: cp_des::SimTime(5),
        });
        assert!(e
            .source()
            .expect("sim source")
            .to_string()
            .contains("limit"));
        let e: CpError = LsError::BadFree(4).into();
        assert!(e.source().is_some());
        assert!(CpError::SelfChannel.source().is_none());
    }

    #[test]
    fn backpressure_is_its_own_kind_with_a_source_chain() {
        use std::error::Error;
        let e = CpError::Backpressure(OverloadError {
            channel: 4,
            capacity: 8,
            policy: "shed",
            detail: "message shed without waiting".into(),
        });
        // Backpressure must classify as its own kind — a saturated channel
        // is not a fault, and harnesses dispatch on the distinction.
        assert_eq!(e.kind(), ErrorKind::Backpressure);
        assert_ne!(
            e.kind(),
            CpError::Timeout {
                channel: 4,
                detail: "x".into()
            }
            .kind()
        );
        let src = e.source().expect("overload source");
        assert!(src.to_string().contains("capacity"), "{src}");
        assert!(src.downcast_ref::<OverloadError>().is_some());
        assert!(e.to_string().contains("backpressure"), "{e}");
    }
}
