//! CellPilot-layer cost model.
//!
//! Constants for the costs CellPilot's own machinery adds on top of MPI and
//! the Cell hardware: the Co-Pilot's request handling, the type-4 pairing
//! behaviour the paper describes ("whichever address arrives first is
//! stored, then the Co-Pilot process polls for requests until the second
//! SPE's request arrives"), and the SPE-resident runtime's format
//! interpretation.
//!
//! Calibration (see EXPERIMENTS.md): with the substrate anchored to the
//! hand-coded baselines, the CellPilot rows of Table II constrain the two
//! free constants here — the type-2 total (59 µs) pins
//! `copilot_dispatch_us`, and the type-4 total (112 µs) pins
//! `copilot_pair_poll_us`. The remaining rows (types 3 and 5) are then
//! predictions, not fits.

/// CellPilot-layer costs, microseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct CellPilotCosts {
    /// Co-Pilot request handling per SPE request (dequeue, bookkeeping,
    /// channel lookup, reply setup).
    pub copilot_dispatch_us: f64,
    /// Extra cost of pairing the two requests of a type-4 (SPE↔SPE local)
    /// transfer: the Co-Pilot's poll-until-second-request loop.
    pub copilot_pair_poll_us: f64,
    /// Co-Pilot fast-path handling of an **eager** request (inline write,
    /// or a read whose data is already buffered and fits the inline
    /// window). The fast path skips what dominates `copilot_dispatch_us`:
    /// buffer-address translation, pending-transfer bookkeeping, and DMA
    /// reply setup — the payload is already in hand (or goes straight out
    /// with the completion word), leaving dequeue + a channel-table probe.
    pub copilot_eager_dispatch_us: f64,
    /// SPE-resident runtime: fixed cost of one `PI_Write`/`PI_Read`
    /// (format interpretation + request-block setup).
    pub spu_op_us: f64,
    /// SPE-resident runtime: per payload byte (packing into / out of the
    /// local-store message buffer).
    pub spu_per_byte_us: f64,
    /// Default local-store buffer for reads whose format has a run-time
    /// (`%*`) count, bytes.
    pub spe_read_buffer: usize,
    /// Per-Co-Pilot service budget for the CP202 relay-saturation lint,
    /// microseconds: the static fan-in dispatch cost of the channels one
    /// Co-Pilot proxies (each channel charged its per-op dispatch cost)
    /// may not exceed this. Purely an analysis threshold — the runtime
    /// never throttles on it.
    pub copilot_service_budget_us: f64,
}

impl Default for CellPilotCosts {
    fn default() -> Self {
        CellPilotCosts {
            copilot_dispatch_us: 37.0,
            copilot_pair_poll_us: 20.0,
            copilot_eager_dispatch_us: 5.0,
            spu_op_us: 2.0,
            spu_per_byte_us: 0.000_5,
            spe_read_buffer: 16 * 1024,
            copilot_service_budget_us: 1_000.0,
        }
    }
}

/// Bytes of SPE local store the resident CellPilot runtime occupies —
/// the paper reports `cellpilot.o` at 10 336 bytes (vs 36 600 for
/// `libdacs.a`), and credits the small footprint to off-loading "the bulk
/// of SPE messaging logic ... onto the Co-Pilot PPE process".
pub const SPE_RUNTIME_FOOTPRINT: usize = 10_336;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_matches_paper() {
        assert_eq!(SPE_RUNTIME_FOOTPRINT, 10_336);
    }

    #[test]
    fn defaults_positive() {
        let c = CellPilotCosts::default();
        assert!(c.copilot_dispatch_us > 0.0);
        assert!(c.copilot_pair_poll_us > 0.0);
        assert!(
            c.copilot_eager_dispatch_us > 0.0
                && c.copilot_eager_dispatch_us < c.copilot_dispatch_us,
            "the eager fast path must be cheaper than full dispatch"
        );
        assert!(
            c.spe_read_buffer >= 1600,
            "must hold the paper's array case"
        );
        assert!(
            c.copilot_service_budget_us > c.copilot_dispatch_us,
            "a budget below one dispatch would flag every SPE channel"
        );
    }
}
