//! The SPE-resident CellPilot runtime: the tiny library an SPE program
//! links against (10 336 bytes of local store in the paper).
//!
//! The design principle the paper emphasizes — "the bulk of SPE messaging
//! logic has been off-loaded onto the Co-Pilot PPE process, thereby
//! conserving scarce SPE memory" — shows in how little happens here: a
//! write packs the message into a local-store buffer and posts a one-word
//! request; a read posts a request and unpacks whatever the Co-Pilot
//! deposits. All routing, MPI and pairing lives on the PPE side.

use crate::error::CpError;
use crate::location::{ChannelMode, CpChannel, CpProcess};
use crate::protocol::{
    completion_is_inline, decode_completion, CompletionError, Request, EAGER_INLINE_MAX, OP_POLL,
    OP_READ, OP_WRITE, OP_WRITE_INLINE, REQ_BLOCK_BYTES,
};
use crate::runtime::AppShared;
use cp_cellsim::LsAddr;
use cp_des::{IncidentCategory, ProcCtx, SimDuration};
use cp_mpisim::Datatype;
use cp_pilot::{
    fmt::{parse_format, Conversion, CountSpec},
    value::{check_against_format, check_read_format, pack_message, payload_bytes, unpack_message},
    PiScalar, PiValue,
};
use cp_simnet::NodeId;
use std::sync::Arc;

/// Unwind payload used to retire an SPE process killed by a scripted
/// [`cp_simnet::FaultPlan`] crash. `run_spe` catches it, runs the normal
/// teardown (local-store free, hardware-SPE release), and — under a
/// [`crate::SupervisionPolicy`] — restarts the work function in place;
/// otherwise the simulated process retires cleanly so only channels
/// touching the dead SPE fail.
pub(crate) struct SpeCrashUnwind;

/// One acknowledged channel operation of a supervised SPE process. The
/// Co-Pilot-side effects already happened, so a restarted attempt must not
/// re-issue it: the per-process journal is the lightweight checkpoint
/// cursor supervision restarts from. On restart the runtime replays
/// entries in order — writes become no-ops, reads re-yield the recorded
/// bytes, polls re-yield the recorded answer — then resumes live.
#[derive(Debug, Clone)]
pub(crate) enum JournalEntry {
    /// A completed write on the channel.
    Write { chan: usize },
    /// A completed read on the channel, with the delivered message bytes.
    Read { chan: usize, bytes: Vec<u8> },
    /// A completed `channel_has_data` poll on the channel and its answer.
    Poll { chan: usize, has: bool },
}

/// The context handed to an SPE program entry (what the `__ea`-decorated
/// globals and `PI_SPE_PROCESS` machinery give SPE code in C).
pub struct SpeCtx {
    ctx: ProcCtx,
    shared: Arc<AppShared>,
    me: CpProcess,
    node: NodeId,
    hw: usize,
    req_block: LsAddr,
    /// Replay cursor into this process's supervision journal: positions
    /// before it were acknowledged by an earlier (crashed) attempt.
    cursor: std::cell::Cell<usize>,
}

impl SpeCtx {
    pub(crate) fn new(
        ctx: ProcCtx,
        shared: Arc<AppShared>,
        me: CpProcess,
        node: NodeId,
        hw: usize,
    ) -> SpeCtx {
        let cell = &shared.node_shared[&node].cell;
        // Processes on an eager channel stage inline payloads directly
        // behind the request-block header, so their block is one inline
        // window larger. Everyone else keeps the classic 16-byte block —
        // local-store layout (and with it every golden trace) is untouched
        // unless eager inlining was asked for.
        let touches_eager = shared
            .tables
            .channels
            .iter()
            .any(|e| e.eager.is_some() && (e.from == me || e.to == me));
        let block_len = REQ_BLOCK_BYTES + if touches_eager { EAGER_INLINE_MAX } else { 0 };
        let req_block = cell.spes[hw]
            .ls
            .alloc(block_len, 16)
            .expect("room for the request block");
        // Register this process's one-sided windows (it is the reader of
        // those channels): allocate the landing region in the local store
        // and publish it in the cluster-wide window table. The physical
        // SPE is only known now, which is why registration happens at
        // launch rather than configure time. A crash-restart finds its
        // windows already registered and reuses them — landed-but-untaken
        // data survives the restart, and window regions are deliberately
        // never freed at teardown for the same reason.
        for (c, e) in shared.tables.channels.iter().enumerate() {
            if e.mode != ChannelMode::OneSided || e.to != me {
                continue;
            }
            if shared.fabric.window(c as u32).is_some() {
                continue;
            }
            let len = e
                .window
                .map(|(_, l)| l as usize)
                .unwrap_or(shared.costs.spe_read_buffer);
            let start = cell.spes[hw]
                .ls
                .alloc(len, 16)
                .expect("room for the one-sided window");
            shared
                .fabric
                .register(cp_simnet::WindowDesc {
                    chan: c as u32,
                    node: node.0,
                    spe: hw,
                    start: start as u32,
                    len: len as u32,
                    owner_rank: shared.copilot_rank(node),
                })
                .expect("allocator-placed windows cannot overlap");
        }
        SpeCtx {
            ctx,
            shared,
            me,
            node,
            hw,
            req_block,
            cursor: std::cell::Cell::new(0),
        }
    }

    pub(crate) fn teardown(&self) {
        let cell = &self.shared.node_shared[&self.node].cell;
        let _ = cell.spes[self.hw].ls.free(self.req_block);
    }

    /// This SPE process's handle.
    pub fn process(&self) -> CpProcess {
        self.me
    }

    /// This process's configured name.
    pub fn name(&self) -> String {
        self.shared.tables.processes[self.me.0].name.clone()
    }

    /// The Cell node hosting this SPE.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The index this process was configured with at `PI_CreateSPE` time
    /// (distinct from the `PI_RunSPE` arguments, which arrive as the entry
    /// function's parameters).
    pub fn index(&self) -> i32 {
        self.shared.tables.processes[self.me.0].index
    }

    /// The hardware SPE index this process was placed on.
    pub fn hw_spe(&self) -> usize {
        self.hw
    }

    /// The simulated-process context (for modelling compute time).
    pub fn ctx(&self) -> &ProcCtx {
        &self.ctx
    }

    pub(crate) fn shared_tables(&self) -> Arc<crate::tables::CpTables> {
        self.shared.tables.clone()
    }

    /// Free local-store bytes (after the program image and the resident
    /// runtime).
    pub fn local_store_free(&self) -> usize {
        self.shared.node_shared[&self.node].cell.spes[self.hw]
            .ls
            .free_bytes()
    }

    /// Create a code-overlay window in this SPE's local store (the
    /// capability the paper points at for programs whose code exceeds
    /// 256 KB: "an overlay capability is available"). Segment swaps charge
    /// DMA time; see [`cp_cellsim::OverlayRegion`].
    pub fn create_overlay(
        &self,
        window_len: usize,
        segments: Vec<cp_cellsim::OverlaySegment>,
    ) -> Result<cp_cellsim::OverlayRegion, CpError> {
        cp_cellsim::OverlayRegion::new(
            self.shared.node_shared[&self.node].cell.clone(),
            self.hw,
            window_len,
            segments,
        )
        .map_err(|e| match e {
            cp_cellsim::OverlayError::Ls(ls) => CpError::LocalStore(ls),
            other => CpError::SpeRun(cp_cellsim::SpeRunError::ImageTooLarge {
                spe: self.hw,
                bytes: match other {
                    cp_cellsim::OverlayError::SegmentTooLarge { bytes, .. } => bytes,
                    _ => 0,
                },
            }),
        })
    }

    fn charge(&self, bytes: usize) {
        let us = self.shared.costs.spu_op_us + bytes as f64 * self.shared.costs.spu_per_byte_us;
        self.ctx.advance(SimDuration::from_micros_f64(us));
    }

    /// Crash checkpoint at each channel-op entry point: a scripted SPE
    /// crash fires at the first communication attempt at or after its
    /// scheduled time (the fault model's stand-in for an SPE image dying
    /// mid-kernel). Each scheduled crash fires exactly once — consumed via
    /// [`cp_simnet::FaultPlan::take_spe_crash`] — so a supervised restart
    /// is not instantly re-killed by the same entry, while stacking
    /// entries deterministically exhausts a restart budget. The crash is
    /// logged as an `spe-crash` incident and the attempt unwinds through
    /// [`SpeCrashUnwind`].
    fn crash_checkpoint(&self) {
        if let Some(at) = self.shared.faults.take_spe_crash(self.me.0, self.ctx.now()) {
            self.ctx.report_incident(
                IncidentCategory::SpeCrash,
                &format!("SPE process '{}' crashed (scheduled at {at})", self.name()),
            );
            std::panic::resume_unwind(Box::new(SpeCrashUnwind));
        }
    }

    /// Supervised-restart replay: if this process's journal still has an
    /// entry at the cursor, the op being attempted was already
    /// acknowledged before the last crash — consume and return the entry
    /// instead of re-issuing the operation to the Co-Pilot.
    fn replay_next(&self) -> Option<JournalEntry> {
        self.shared.supervision?;
        let journals = self.shared.journals.lock();
        let entry = journals.get(&self.me.0)?.get(self.cursor.get())?.clone();
        self.cursor.set(self.cursor.get() + 1);
        Some(entry)
    }

    /// Record an acknowledged op (supervision only) and keep the cursor at
    /// the journal's end so live operation continues.
    fn journal(&self, entry: JournalEntry) {
        if self.shared.supervision.is_none() {
            return;
        }
        let mut journals = self.shared.journals.lock();
        let j = journals.entry(self.me.0).or_default();
        j.push(entry);
        self.cursor.set(j.len());
    }

    /// A journal entry that does not match the op the restarted program is
    /// attempting means the work function is not deterministic — replay
    /// cannot be trusted, so abort loudly rather than corrupt the run.
    fn replay_diverged(&self, got: &JournalEntry, attempting: &str) -> ! {
        self.ctx.abort(&format!(
            "supervised replay diverged in SPE process '{}': journal has {got:?} \
             but the restarted program issued {attempting}",
            self.name()
        ));
    }

    /// Post a request block (header plus optional inline payload) and wait
    /// for the Co-Pilot's completion word. Returns the byte count and
    /// whether the completion's payload rode the word inline.
    fn transact_block(
        &self,
        block: &[u8],
        chan: usize,
        cap: usize,
    ) -> Result<(usize, bool), CpError> {
        let cell = &self.shared.node_shared[&self.node].cell;
        let spe = &cell.spes[self.hw];
        spe.ls.write(self.req_block, block)?;
        spe.mbox
            .spu_write_outbox(&self.ctx, &cell.costs, self.req_block as u32);
        let word = spe.mbox.spu_read_inbox(&self.ctx, &cell.costs);
        match decode_completion(word) {
            Ok(n) => Ok((n, completion_is_inline(word))),
            Err(CompletionError::Overflow) => Err(CpError::SpeBufferOverflow {
                channel: chan,
                capacity: cap,
            }),
            Err(CompletionError::PeerLost) => {
                let peer = self
                    .shared
                    .tables
                    .channels
                    .get(chan)
                    .map(|e| self.shared.tables.processes[e.from.0].name.clone())
                    .unwrap_or_else(|| "<unknown>".to_string());
                Err(CpError::PeerLost {
                    channel: chan,
                    peer,
                })
            }
            Err(CompletionError::Internal) => {
                panic!("Co-Pilot reported an internal protocol error")
            }
        }
    }

    /// Post a classic 16-byte request block and wait for completion.
    fn transact(&self, req: Request) -> Result<usize, CpError> {
        self.transact_block(&req.encode(), req.chan as usize, req.len as usize)
            .map(|(n, _)| n)
    }

    /// `PI_Write` from an SPE process: pack into local store, hand the
    /// buffer to the Co-Pilot, wait for completion.
    pub fn write(&self, chan: CpChannel, format: &str, values: &[PiValue]) -> Result<(), CpError> {
        self.crash_checkpoint();
        let entry = self
            .shared
            .tables
            .channels
            .get(chan.0)
            .ok_or(CpError::NoSuchChannel(chan.0))?;
        if entry.from != self.me {
            return Err(CpError::NotWriter {
                channel: chan.0,
                caller: self.name(),
            });
        }
        if let Some(done) = self.replay_next() {
            match done {
                JournalEntry::Write { chan: c } if c == chan.0 => return Ok(()),
                other => self.replay_diverged(&other, &format!("write on channel {}", chan.0)),
            }
        }
        let conv = parse_format(format)?;
        check_against_format(&conv, values)?;
        let data = pack_message(values);
        let t0 = self.ctx.now();
        // Flow control: consume a send credit before the message enters
        // the pipeline (a replayed write above skipped this — its credit
        // was consumed by the acknowledged original).
        self.shared
            .acquire_credit(&self.ctx, &self.name(), chan.0)?;
        self.charge(payload_bytes(values));
        let cell = &self.shared.node_shared[&self.node].cell;
        let ls = &cell.spes[self.hw].ls;
        let one_sided = self.shared.one_sided_chan(chan.0);
        let eager_inline = entry.eager_limit() > 0 && data.len() <= entry.eager_limit();
        let result = if eager_inline && !one_sided {
            // Eager fast path: the payload rides the request block itself,
            // so there is no staging buffer, no address translation, and no
            // DMA read-back on the Co-Pilot side. Relay errors need no
            // unwind (the Co-Pilot drain point returns the credit).
            let mut block = Request {
                op: OP_WRITE_INLINE,
                chan: chan.0 as u32,
                addr: 0,
                len: data.len() as u32,
            }
            .encode()
            .to_vec();
            block.extend_from_slice(&data);
            self.transact_block(&block, chan.0, data.len())
                .map(|(n, _)| n)
        } else {
            let buf = match ls.alloc(data.len().max(1), 16) {
                Ok(buf) => buf,
                Err(e) => {
                    // Staging failed before the message entered the pipeline:
                    // unwind the credit.
                    self.shared.release_credit(chan.0);
                    return Err(e.into());
                }
            };
            if let Err(e) = cell.ls_write_traced(&self.ctx, self.hw, buf, &data) {
                let _ = ls.free(buf);
                self.shared.release_credit(chan.0);
                return Err(e.into());
            }
            let result = if one_sided {
                // One-sided channel: the SPE issues the MFC put itself and the
                // staged buffer lands straight in the reader's local-store
                // window — no Co-Pilot proxying, no relay leg. Only the DMA
                // issue is charged locally; the fabric hop is charged inside
                // the put. An eager-qualified small put skips even the DMA
                // setup: it rides the doorbell update.
                if !eager_inline {
                    self.ctx
                        .advance(SimDuration::from_micros_f64(cell.costs.dma_setup_us));
                }
                self.shared
                    .one_sided_put(&self.ctx, &self.name(), chan.0, self.node, data.clone())
                    .map_err(|cap| {
                        // The put never landed: unwind the credit.
                        self.shared.release_credit(chan.0);
                        CpError::SpeBufferOverflow {
                            channel: chan.0,
                            capacity: cap as usize,
                        }
                    })
            } else {
                // Relay errors need no unwind here: a write the Co-Pilot
                // failed (e.g. a type-4 overflow) was still drained by it, and
                // the drain point already returned the credit.
                self.transact(Request {
                    op: OP_WRITE,
                    chan: chan.0 as u32,
                    addr: buf as u32,
                    len: data.len() as u32,
                })
            };
            let _ = ls.free(buf);
            result
        };
        if result.is_ok() {
            self.journal(JournalEntry::Write { chan: chan.0 });
            self.shared.trace.record(
                self.ctx.now(),
                &self.name(),
                crate::trace::TraceOp::SpeWrite,
                chan.0,
                data.len(),
            );
            self.shared.record_chan_op(
                &self.name(),
                entry.kind,
                chan.0,
                true,
                payload_bytes(values),
                t0,
                self.ctx.now(),
            );
        }
        result.map(|_| ())
    }

    /// `PI_Read` from an SPE process. For formats with only fixed counts
    /// the local-store buffer is sized exactly; a `%*` format falls back to
    /// the configured read-buffer limit (the C API's explicit capacity
    /// argument), and an over-long message aborts with a diagnostic.
    pub fn read(&self, chan: CpChannel, format: &str) -> Result<Vec<PiValue>, CpError> {
        self.read_with_limit(chan, format, self.shared.costs.spe_read_buffer)
    }

    /// [`SpeCtx::read`] with an explicit capacity for `%*` formats.
    pub fn read_with_limit(
        &self,
        chan: CpChannel,
        format: &str,
        limit: usize,
    ) -> Result<Vec<PiValue>, CpError> {
        self.crash_checkpoint();
        let entry = self
            .shared
            .tables
            .channels
            .get(chan.0)
            .ok_or(CpError::NoSuchChannel(chan.0))?;
        if entry.to != self.me {
            return Err(CpError::NotReader {
                channel: chan.0,
                caller: self.name(),
            });
        }
        let conv = parse_format(format)?;
        if let Some(done) = self.replay_next() {
            match done {
                JournalEntry::Read { chan: c, bytes } if c == chan.0 => {
                    let values = unpack_message(&bytes).expect("journaled bytes round-trip");
                    let segs: Vec<(Datatype, usize)> =
                        values.iter().map(|v| (v.dtype(), v.len())).collect();
                    check_read_format(&conv, &segs).map_err(|detail| CpError::FormatMismatch {
                        channel: chan.0,
                        detail,
                    })?;
                    return Ok(values);
                }
                other => self.replay_diverged(&other, &format!("read on channel {}", chan.0)),
            }
        }
        let cap = exact_packed_size(&conv).unwrap_or(limit);
        let t0 = self.ctx.now();
        self.charge(0);
        let cell = &self.shared.node_shared[&self.node].cell;
        let ls = &cell.spes[self.hw].ls;
        let buf = ls.alloc(cap.max(1), 16)?;
        let got = if self.shared.one_sided_chan(chan.0) {
            self.one_sided_recv(chan.0, buf, cap)
        } else {
            let req = Request {
                op: OP_READ,
                chan: chan.0 as u32,
                addr: buf as u32,
                len: cap as u32,
            };
            self.transact_block(&req.encode(), chan.0, cap)
                .and_then(|(n, inline)| {
                    if inline {
                        // The payload rode the completion word: pop it from
                        // the mailbox side-queue into the posted buffer (a
                        // plain local store, already paid for by the
                        // Co-Pilot's store-gather burst).
                        let payload = cell.spes[self.hw]
                            .mbox
                            .spu_take_inline()
                            .expect("inline completion carries a staged payload");
                        debug_assert_eq!(payload.len(), n);
                        ls.write(buf, &payload)?;
                    }
                    Ok(n)
                })
        };
        let result = got.and_then(|n| {
            let bytes = cell.ls_read_traced(&self.ctx, self.hw, buf, n)?;
            let values = unpack_message(&bytes).expect("well-formed channel message");
            let segs: Vec<(Datatype, usize)> =
                values.iter().map(|v| (v.dtype(), v.len())).collect();
            check_read_format(&conv, &segs).map_err(|detail| CpError::FormatMismatch {
                channel: chan.0,
                detail,
            })?;
            self.charge(payload_bytes(&values));
            self.journal(JournalEntry::Read {
                chan: chan.0,
                bytes,
            });
            self.shared.trace.record(
                self.ctx.now(),
                &self.name(),
                crate::trace::TraceOp::SpeRead,
                chan.0,
                n,
            );
            self.shared.record_chan_op(
                &self.name(),
                entry.kind,
                chan.0,
                false,
                payload_bytes(&values),
                t0,
                self.ctx.now(),
            );
            Ok(values)
        });
        let _ = ls.free(buf);
        result
    }

    /// One-sided read body: the window lives in *this* SPE's own local
    /// store, so the reader spins on its doorbell — a local load, polled
    /// at 1 µs granularity, deterministic under the DES — until a put
    /// lands, then moves the payload into the posted buffer with a local
    /// MFC transfer. The Co-Pilot never touches the data.
    fn one_sided_recv(&self, chan: usize, buf: usize, cap: usize) -> Result<usize, CpError> {
        let landed = loop {
            match self.shared.fabric.take(chan as u32) {
                Ok(Some(l)) => break l,
                _ => {
                    if self.shared.chan_writer_gone(chan, self.ctx.now()) {
                        let peer = self.shared.tables.processes
                            [self.shared.tables.channels[chan].from.0]
                            .name
                            .clone();
                        self.ctx.report_incident(
                            IncidentCategory::PeerLost,
                            &format!(
                                "SPE process '{}' failing one-sided read on channel {chan}: \
                                 writer '{peer}' is lost",
                                self.name()
                            ),
                        );
                        return Err(CpError::PeerLost {
                            channel: chan,
                            peer,
                        });
                    }
                    self.ctx.advance(SimDuration::from_micros(1));
                }
            }
        };
        // The payload left the fabric with the `take` above — the channel
        // is drained by that amount even if the posted buffer turns out
        // too small, so its send credit returns here.
        self.shared.release_credit(chan);
        let n = landed.bytes.len();
        if n > cap {
            return Err(CpError::SpeBufferOverflow {
                channel: chan,
                capacity: cap,
            });
        }
        let t0 = self.ctx.now();
        let cell = &self.shared.node_shared[&self.node].cell;
        let desc = self
            .shared
            .fabric
            .window(chan as u32)
            .expect("payload taken from a registered window");
        self.shared.node_shared[&self.node].record_hb(
            &self.name(),
            self.ctx.now().as_nanos(),
            cp_trace::HbOp::OneSidedGet {
                chan: chan as u32,
                node: desc.node,
                spe: desc.spe,
                start: desc.start,
                len: n as u32,
                seq: landed.seq,
            },
        );
        self.ctx
            .advance(SimDuration::from_micros_f64(cell.costs.dma_transfer_us(n)));
        cell.ls_write_traced(&self.ctx, self.hw, buf, &landed.bytes)?;
        self.shared.trace.record(
            self.ctx.now(),
            &self.name(),
            crate::trace::TraceOp::OneSidedDeliver,
            chan,
            n,
        );
        self.shared
            .record_one_sided(&self.name(), false, chan, n, t0, self.ctx.now());
        Ok(n)
    }

    /// Typed single-segment write: sends `data` as one runtime-counted
    /// segment of `T`'s wire type, with the Pilot format string derived
    /// from `T` (`%*d` for `i32`, `%*lf` for `f64`, ...). The SPE twin of
    /// [`crate::CellPilot::write_slice`].
    pub fn write_slice<T: PiScalar>(&self, chan: CpChannel, data: &[T]) -> Result<(), CpError> {
        let format = format!("%*{}", T::CONV);
        self.write(chan, &format, &[T::wrap(data.to_vec())])
    }

    /// Typed single-segment read: receives one segment of `T`'s wire type
    /// (format `%*{conv}`) and returns it as a `Vec<T>`. The SPE twin of
    /// [`crate::CellPilot::read_vec`].
    pub fn read_vec<T: PiScalar>(&self, chan: CpChannel) -> Result<Vec<T>, CpError> {
        let format = format!("%*{}", T::CONV);
        let mut values = self.read(chan, &format)?;
        let v = values.pop().expect("format has exactly one segment");
        Ok(T::unwrap(v).expect("segment dtype verified against format"))
    }

    /// Typed write on a [`crate::TypedChannel`] — the SPE twin of
    /// [`crate::CellPilot::send`].
    pub fn send<T: PiScalar>(
        &self,
        chan: crate::config::TypedChannel<T>,
        data: &[T],
    ) -> Result<(), CpError> {
        self.write_slice(chan.channel(), data)
    }

    /// Typed read on a [`crate::TypedChannel`] — the SPE twin of
    /// [`crate::CellPilot::recv`].
    pub fn recv<T: PiScalar>(
        &self,
        chan: crate::config::TypedChannel<T>,
    ) -> Result<Vec<T>, CpError> {
        self.read_vec(chan.channel())
    }

    /// One-sided fence from an SPE process: block (in virtual time) until
    /// every put applied on `chan` has been taken by the reader. The SPE
    /// twin of [`crate::CellPilot::fence`].
    pub fn fence(&self, chan: CpChannel) -> Result<(), CpError> {
        self.crash_checkpoint();
        self.shared.fence_on(&self.ctx, chan)
    }

    /// `PI_ChannelHasData` from an SPE (extension): non-blocking check
    /// whether a read on `chan` would find a message already at the
    /// Co-Pilot. Costs one mailbox round trip on relay channels; on
    /// one-sided channels it is a local doorbell load.
    pub fn channel_has_data(&self, chan: CpChannel) -> Result<bool, CpError> {
        self.crash_checkpoint();
        let entry = self
            .shared
            .tables
            .channels
            .get(chan.0)
            .ok_or(CpError::NoSuchChannel(chan.0))?;
        if entry.to != self.me {
            return Err(CpError::NotReader {
                channel: chan.0,
                caller: self.name(),
            });
        }
        if let Some(done) = self.replay_next() {
            match done {
                JournalEntry::Poll { chan: c, has } if c == chan.0 => return Ok(has),
                other => self.replay_diverged(&other, &format!("poll on channel {}", chan.0)),
            }
        }
        let has = if self.shared.one_sided_chan(chan.0) {
            // The window is in this SPE's own local store: checking the
            // doorbell is a local load, no mailbox round trip needed.
            self.charge(0);
            self.shared
                .fabric
                .pending(chan.0 as u32)
                .is_ok_and(|pending| pending > 0)
        } else {
            self.transact(Request {
                op: OP_POLL,
                chan: chan.0 as u32,
                addr: 0,
                len: 0,
            })? != 0
        };
        self.journal(JournalEntry::Poll { chan: chan.0, has });
        Ok(has)
    }

    /// Abort the application with a diagnostic carrying the source
    /// location (SPE-side twin of `CellPilot::abort_loc`).
    pub fn abort_loc(&self, err: &CpError, file: &str, line: u32) -> ! {
        self.ctx.abort(&format!(
            "[{}:{}] in SPE process '{}': {}",
            file,
            line,
            self.name(),
            err
        ));
    }
}

/// The exact packed wire size of a message under `conv`, if every count is
/// fixed: 4-byte segment count + per segment 5-byte header + elements.
fn exact_packed_size(conv: &[Conversion]) -> Option<usize> {
    let mut total = 4usize;
    for c in conv {
        match c.count {
            CountSpec::Fixed(n) => total += 5 + n * c.dtype.wire_size(),
            CountSpec::Runtime => return None,
        }
    }
    Some(total)
}

/// `PI_Write` from an SPE process, aborting with a source-located
/// diagnostic on misuse.
#[macro_export]
macro_rules! spe_write {
    ($p:expr, $chan:expr, $fmt:expr $(, $val:expr)* $(,)?) => {
        match $p.write($chan, $fmt, &[$(cp_pilot::PiValue::from($val)),*]) {
            Ok(()) => (),
            Err(e) => $p.abort_loc(&e, file!(), line!()),
        }
    };
}

/// `PI_Read` from an SPE process, aborting with a source-located
/// diagnostic on misuse.
#[macro_export]
macro_rules! spe_read {
    ($p:expr, $chan:expr, $fmt:expr) => {
        match $p.read($chan, $fmt) {
            Ok(v) => v,
            Err(e) => $p.abort_loc(&e, file!(), line!()),
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::completion_ok;

    #[test]
    fn exact_size_counts_headers() {
        let conv = parse_format("%100d").unwrap();
        // 4 + (5 + 400) = 409
        assert_eq!(exact_packed_size(&conv), Some(409));
        let conv = parse_format("%b %100Lf").unwrap();
        // 4 + (5+1) + (5+1600) = 1615
        assert_eq!(exact_packed_size(&conv), Some(1615));
        let conv = parse_format("%*d").unwrap();
        assert_eq!(exact_packed_size(&conv), None);
    }

    #[test]
    fn exact_size_matches_pack_message() {
        let vals = [
            PiValue::Byte(vec![0]),
            PiValue::LongDouble(vec![cp_mpisim::LongDouble(0.0); 100]),
        ];
        let conv = parse_format("%b %100Lf").unwrap();
        assert_eq!(
            exact_packed_size(&conv),
            Some(pack_message(&vals).len()),
            "completion_ok roundtrip sanity: {}",
            completion_ok(0)
        );
    }
}
