//! The Co-Pilot process: CellPilot's key innovation.
//!
//! One extra MPI process runs on each Cell node ("since Cell blades have
//! two PPEs and each PPE has dual hardware threads, an added Co-Pilot
//! process utilizes a computing resource that might otherwise go idle") and
//! services every SPE-connected channel type:
//!
//! * **Type 2/3** (rank → SPE): the rank's MPI message arrives here; when
//!   the SPE posts its read request, the Co-Pilot translates the SPE's
//!   buffer address to a main-memory effective address and moves the data
//!   straight into the local store — "this technique does not need
//!   recourse to DMA transfers".
//! * **Type 2/3** (SPE → rank): the SPE's write request names its buffer;
//!   the Co-Pilot reads it through the mapping and makes the MPI send on
//!   the SPE's behalf — the SPE participates in MPI "as a first-class
//!   citizen" without linking any MPI code into the 256 KB local store.
//! * **Type 4** (SPE ↔ SPE, same node): both SPEs send their buffer
//!   addresses; whichever arrives first is stored, and when the second
//!   arrives the Co-Pilot `memcpy`s between the two mapped local stores
//!   and notifies both mailboxes. No MPI involved.
//! * **Type 5** (SPE ↔ remote SPE): the writer's Co-Pilot relays to the
//!   reader's Co-Pilot via MPI; each does its local-store leg.
//!
//! Structurally the Co-Pilot here is three kinds of simulated process: one
//! **mailbox watcher** per SPE (modelling the real Co-Pilot's polling of
//! the SPEs' outbound mailboxes), one **MPI pump** (its blocking
//! `MPI_Recv(ANY_SOURCE)`), and the **service loop** consuming both event
//! streams in arrival order.

use crate::location::Location;
use crate::protocol::{
    completion_err, completion_ok, completion_ok_inline, decode_bundle, decode_mcast,
    CompletionError, Request, CP_BUNDLE_TAG, CP_MCAST_TAG, CP_SHUTDOWN_TAG, OP_POLL, OP_READ,
    OP_WRITE, OP_WRITE_INLINE, POISON_WORD, REQ_BLOCK_BYTES,
};
use crate::runtime::AppShared;
use crate::tables::{CoEvent, NodeShared, PendingReq};
use cp_cellsim::{ls_ea, CellNode};
use cp_des::{IncidentCategory, ProcCtx, SimDuration};
use cp_mpisim::{Comm, Datatype, MpiWorld, Msg};
use cp_simnet::{NodeId, HEARTBEAT_PERIOD, WATCHDOG_TIMEOUT};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Build the co-pilot process body for `world.launch`.
pub(crate) fn copilot_body(
    world: MpiWorld,
    shared: Arc<AppShared>,
    node: NodeId,
    rank: usize,
) -> impl FnOnce(Comm) + Send + 'static {
    move |comm: Comm| {
        let ns = shared.node_shared[&node].clone();
        let cell = ns.cell.clone();
        let ctx = comm.ctx().clone();
        for hw in 0..cell.spe_count() {
            sim_spawn_watcher(&ctx, ns.clone(), hw);
        }
        spawn_pump(&ctx, &world, rank, ns.clone());
        if let Some(kill_at) = shared.faults.copilot_kill_of(node) {
            // The node-local liveness signal: beat every period until the
            // scripted death silences it (or a clean shutdown stops the
            // pair). The watchdog in `standby_body` polls the same cell.
            {
                let hb = ns.hb.clone();
                ctx.spawn(&format!("copilot{}-heartbeat", node.0), move |bctx| {
                    while !hb.is_stopped() && bctx.now() < kill_at {
                        hb.beat(bctx.now());
                        bctx.advance(HEARTBEAT_PERIOD);
                    }
                });
            }
            // Deliver the death at exactly the scripted instant as a queue
            // event, so the primary retires at the kill time (events queued
            // later stay behind the marker for the standby to service).
            {
                let ns = ns.clone();
                ctx.spawn(&format!("copilot{}-kill", node.0), move |kctx| {
                    kctx.advance(SimDuration::from_nanos(kill_at.as_nanos()));
                    ns.note_queue_push(&kctx.name(), kctx.now().as_nanos());
                    ns.queue.push(kctx, CoEvent::Die, SimDuration::ZERO);
                });
            }
        }
        service_loop(&comm, &shared, &ns, false);
    }
}

/// Build the standby co-pilot body for a node whose primary has a
/// scripted kill: watch the heartbeat, and on expiry adopt the node —
/// reroute the Co-Pilot rank, take over the dead primary's mailbox, and
/// resume servicing the shared proxy tables and event queue. Type-4/5
/// traffic continues with no application-visible loss.
pub(crate) fn standby_body(
    world: MpiWorld,
    shared: Arc<AppShared>,
    node: NodeId,
    rank: usize,
) -> impl FnOnce(Comm) + Send + 'static {
    move |comm: Comm| {
        let ns = shared.node_shared[&node].clone();
        let ctx = comm.ctx().clone();
        let hb = ns.hb.clone();
        loop {
            if hb.is_stopped() {
                // Clean shutdown before the kill fired: no failover needed.
                return;
            }
            if hb.expired(ctx.now(), WATCHDOG_TIMEOUT) {
                break;
            }
            ctx.advance(HEARTBEAT_PERIOD);
        }
        ctx.report_incident(
            IncidentCategory::CopilotFailover,
            &format!(
                "standby Co-Pilot (rank {rank}) adopting node {}: primary silent since {}",
                node.0,
                hb.last_beat()
            ),
        );
        let primary = shared.tables.copilot_ranks[&node];
        shared.copilot_route.lock().insert(node, rank);
        // Window ownership migrates with the node: one-sided writers that
        // consult the table from here on see the standby as the servicing
        // rank, and landed-but-undelivered puts stay queued for it.
        shared.fabric.take_over_node(node.0, rank);
        world.take_over_rank(&ctx, primary, rank);
        spawn_pump(&ctx, &world, rank, ns.clone());
        service_loop(&comm, &shared, &ns, true);
    }
}

/// Spawn the Co-Pilot's MPI pump (its blocking `MPI_Recv(ANY_SOURCE)`),
/// feeding the node's shared event queue. A takeover retires the rank's
/// mailbox mid-recv; the pump absorbs that unwind and exits — the
/// standby's own pump owns the wire from then on.
fn spawn_pump(ctx: &ProcCtx, world: &MpiWorld, rank: usize, ns: Arc<NodeShared>) {
    let world = world.clone();
    let node = ns.cell.id;
    ctx.spawn(&format!("copilot{node}-pump-r{rank}"), move |pctx| {
        let _ = cp_mpisim::absorb_rank_death(|| {
            let pcomm = world.attach(pctx, rank);
            loop {
                let m = pcomm.recv(None, None);
                ns.note_queue_push(&pctx.name(), pctx.now().as_nanos());
                if m.tag == CP_SHUTDOWN_TAG {
                    ns.queue.push(pctx, CoEvent::Shutdown, SimDuration::ZERO);
                    return;
                }
                ns.queue.push(pctx, CoEvent::Mpi(m), SimDuration::ZERO);
            }
        });
    });
}

fn sim_spawn_watcher(ctx: &ProcCtx, ns: Arc<NodeShared>, hw: usize) {
    let cell = ns.cell.clone();
    ctx.spawn(
        &format!("copilot{}-watch-spe{}", cell.id, hw),
        move |wctx| {
            loop {
                let word = cell.spes[hw].mbox.ppe_read_outbox(wctx, &cell.costs);
                if word == POISON_WORD {
                    return;
                }
                // Fetch the 16-byte request block through the problem-state
                // mapping (an uncached read, charged accordingly).
                let block = cell
                    .ea_read(ls_ea(hw, word as usize), REQ_BLOCK_BYTES)
                    .expect("request block within local store");
                wctx.advance(SimDuration::from_micros_f64(
                    cell.costs.memcpy_us(REQ_BLOCK_BYTES, 1),
                ));
                let req = Request::decode(&block);
                // An eager inline write stages its payload immediately after
                // the header: fetch it in the same mapped read (the block is
                // contiguous in the local store), charging only the extra
                // bytes — no second MMIO exchange.
                let inline = if req.op == OP_WRITE_INLINE {
                    let payload = cell
                        .ea_read(ls_ea(hw, word as usize + REQ_BLOCK_BYTES), req.len as usize)
                        .expect("inline payload within local store");
                    wctx.advance(SimDuration::from_micros_f64(
                        cell.costs.memcpy_us(req.len as usize, 1),
                    ));
                    Some(payload)
                } else {
                    None
                };
                ns.note_queue_push(&wctx.name(), wctx.now().as_nanos());
                ns.queue.push(
                    wctx,
                    CoEvent::Request { hw, req, inline },
                    SimDuration::ZERO,
                );
            }
        },
    );
}

fn service_loop(comm: &Comm, shared: &Arc<AppShared>, ns: &Arc<NodeShared>, standby: bool) {
    let ctx = comm.ctx();
    let costs = &shared.costs;
    let cell = &ns.cell;
    let queue = &ns.queue;
    // A scripted Co-Pilot stall freezes the service loop once, at the first
    // event serviced at or after its scheduled time: requests and MPI
    // deliveries keep queueing, but nothing is serviced for the duration.
    let stall = shared.faults.stall_of(NodeId(cell.id));
    loop {
        let event = queue.pop(ctx);
        ns.note_queue_pop(&ctx.name(), ctx.now().as_nanos());
        // Only this service loop touches the proxy tables while it runs —
        // a standby starts only after the primary retired — so holding the
        // guard across an event's (possibly blocking) handling is safe.
        let st = &mut *ns.co_state.lock();
        if let Some(s) = stall {
            if !st.stall_done && ctx.now() >= s.at {
                st.stall_done = true;
                ctx.report_incident(
                    IncidentCategory::CopilotStall,
                    &format!(
                        "Co-Pilot on node {} unresponsive for {} (scheduled at {})",
                        cell.id, s.duration, s.at
                    ),
                );
                ctx.advance(s.duration);
            }
        }
        match event {
            CoEvent::Die => {
                // A Die marker reaching the standby is stale — the primary
                // it was aimed at is already gone; the standby serves on.
                if standby {
                    continue;
                }
                ctx.report_incident(
                    IncidentCategory::CopilotDeath,
                    &format!(
                        "Co-Pilot on node {} killed by fault plan at {}",
                        cell.id,
                        ctx.now()
                    ),
                );
                return;
            }
            CoEvent::Shutdown => {
                // Unblock the mailbox watchers so their processes exit, and
                // retire the heartbeat pair so a standby stands down.
                for spe in &cell.spes {
                    spe.mbox.spu_write_outbox(ctx, &cell.costs, POISON_WORD);
                }
                ns.hb.stop();
                // The shutdown *wire message* may have been consumed by a
                // previous incarnation's pump (the primary pumps it, dies
                // to the kill marker, and the standby services the queued
                // event) — leaving this incarnation's own pump parked in
                // recv forever. Echo the shutdown to our own rank so
                // whichever pump still listens drains and exits; if none
                // does, the envelope sits unread and the run ends anyway.
                comm.send_bytes(comm.rank(), CP_SHUTDOWN_TAG, Datatype::Byte, 0, Vec::new());
                return;
            }
            CoEvent::Mpi(msg) if msg.tag == CP_MCAST_TAG => {
                // Hierarchical broadcast: one wire message, local fan-out.
                let (chans, data) = decode_mcast(&msg.data);
                for chan in chans {
                    let chan = chan as usize;
                    if let Some(rr) = pop_front(&mut st.pending_reads, chan) {
                        deliver(ctx, shared, cell, chan, &data, rr);
                    } else {
                        let mut m = msg.clone();
                        m.tag = chan as i32;
                        m.data = data.clone();
                        st.pending_mpi.entry(chan).or_default().push_back(m);
                    }
                }
            }
            CoEvent::Mpi(msg) if msg.tag == CP_BUNDLE_TAG => {
                // Coalesced bundle envelope: one wire message carrying
                // several small writes, each with its own payload. Unpack
                // and deliver-or-park per entry, exactly as if each had
                // arrived as its own message.
                for (chan, data) in decode_bundle(&msg.data) {
                    let chan = chan as usize;
                    if let Some(rr) = pop_front(&mut st.pending_reads, chan) {
                        deliver(ctx, shared, cell, chan, &data, rr);
                    } else {
                        let count = data.len();
                        st.pending_mpi.entry(chan).or_default().push_back(Msg {
                            src: msg.src,
                            tag: chan as i32,
                            dtype: Datatype::Byte,
                            count,
                            data,
                        });
                    }
                }
            }
            CoEvent::Mpi(msg) => {
                let chan = msg.tag as usize;
                if let Some(rr) = pop_front(&mut st.pending_reads, chan) {
                    deliver(ctx, shared, cell, chan, &msg.data, rr);
                } else {
                    st.pending_mpi.entry(chan).or_default().push_back(msg);
                }
            }
            CoEvent::Request {
                hw,
                req,
                inline: Some(data),
            } if req.op == OP_WRITE_INLINE => {
                // Eager inline write: the payload arrived with the request,
                // so the fast dispatch path applies — no buffer-address
                // translation, no pending-transfer bookkeeping, no DMA reply
                // setup.
                charge(ctx, costs.copilot_eager_dispatch_us);
                let chan = req.chan as usize;
                crate::dlsvc::report(
                    comm,
                    &shared.tables,
                    crate::dlsvc::chan_event(&shared.tables, cp_pilot::EV_WRITE, chan),
                );
                let n = data.len();
                match reader_side(shared, chan, cell.id) {
                    ReaderSide::LocalSpe => {
                        // Buffered send: the writer completes immediately
                        // (its payload is already in Co-Pilot hands); the
                        // data waits for the reader like an MPI-borne
                        // message would, preserving FIFO order against any
                        // rendezvous write the same (now unblocked) writer
                        // issues later.
                        complete(ctx, cell, hw, completion_ok(n));
                        shared.trace.record(
                            ctx.now(),
                            &format!("copilot{}", cell.id),
                            crate::trace::TraceOp::CopilotWrite,
                            chan,
                            n,
                        );
                        if let Some(rr) = pop_front(&mut st.pending_reads, chan) {
                            deliver(ctx, shared, cell, chan, &data, rr);
                        } else {
                            st.pending_mpi.entry(chan).or_default().push_back(Msg {
                                src: comm.rank(),
                                tag: chan as i32,
                                dtype: Datatype::Byte,
                                count: n,
                                data,
                            });
                        }
                    }
                    ReaderSide::Mpi(dest_rank) => {
                        // The payload is in hand: buffered send here too —
                        // the writer's completion does not wait for the MPI
                        // call made on its behalf.
                        complete(ctx, cell, hw, completion_ok(n));
                        comm.send_bytes(dest_rank, CpTablesTag(chan), Datatype::Byte, n, data);
                        shared.trace.record(
                            ctx.now(),
                            &format!("copilot{}", cell.id),
                            crate::trace::TraceOp::CopilotWrite,
                            chan,
                            n,
                        );
                        record_hop(ctx, shared, cell.id, chan, "forward");
                    }
                }
            }
            CoEvent::Request { hw, req, .. } if req.op == OP_WRITE => {
                charge(ctx, costs.copilot_dispatch_us);
                let chan = req.chan as usize;
                // Proxy report on behalf of the writing SPE (which cannot
                // reach the deadlock service itself).
                crate::dlsvc::report(
                    comm,
                    &shared.tables,
                    crate::dlsvc::chan_event(&shared.tables, cp_pilot::EV_WRITE, chan),
                );
                let wreq = PendingReq {
                    hw,
                    addr: req.addr,
                    len: req.len,
                };
                match reader_side(shared, chan, cell.id) {
                    ReaderSide::LocalSpe => {
                        if let Some(rr) = pop_front(&mut st.pending_reads, chan) {
                            pair_type4(ctx, shared, cell, chan, wreq, rr);
                        } else {
                            st.pending_writes.entry(chan).or_default().push_back(wreq);
                        }
                    }
                    ReaderSide::Mpi(dest_rank) => {
                        // Read the SPE's buffer through the mapping and make
                        // the MPI call on its behalf.
                        charge(ctx, cell.costs.ea_translate_us);
                        let data = cell
                            .ea_read(ls_ea(hw, req.addr as usize), req.len as usize)
                            .expect("write buffer within local store");
                        charge(ctx, cell.costs.memcpy_us(data.len(), 1));
                        let n = data.len();
                        comm.send_bytes(dest_rank, CpTablesTag(chan), Datatype::Byte, n, data);
                        complete(ctx, cell, hw, completion_ok(n));
                        shared.trace.record(
                            ctx.now(),
                            &format!("copilot{}", cell.id),
                            crate::trace::TraceOp::CopilotWrite,
                            chan,
                            n,
                        );
                        record_hop(ctx, shared, cell.id, chan, "forward");
                    }
                }
            }
            CoEvent::Request { hw, req, .. } if req.op == OP_POLL => {
                charge(ctx, costs.copilot_dispatch_us);
                let chan = req.chan as usize;
                let has_mpi = st.pending_mpi.get(&chan).is_some_and(|q| !q.is_empty());
                let has = match writer_side(shared, chan, cell.id) {
                    // A local SPE writer may have data parked either as a
                    // rendezvous request or as a buffered eager payload.
                    WriterSide::LocalSpe => {
                        has_mpi || st.pending_writes.get(&chan).is_some_and(|q| !q.is_empty())
                    }
                    WriterSide::Mpi => has_mpi,
                };
                complete(ctx, cell, hw, completion_ok(usize::from(has)));
            }
            CoEvent::Request { hw, req, .. } => {
                debug_assert_eq!(req.op, OP_READ);
                let chan = req.chan as usize;
                // Fast dispatch applies to every read posted on an eager
                // channel: whether the read is satisfied on the spot or
                // parked, the Co-Pilot only files the reply-mailbox slot —
                // no buffer-address translation and no transfer
                // bookkeeping up front. The DMA-path costs are charged at
                // delivery time instead (`deliver_to_spe` / `pair_type4`),
                // and only when the payload exceeds the inline budget.
                // Non-eager channels keep the exact schedule they had
                // before eager inlining existed.
                let fast = shared
                    .tables
                    .channels
                    .get(chan)
                    .is_some_and(|e| e.eager_limit() > 0);
                charge(
                    ctx,
                    if fast {
                        costs.copilot_eager_dispatch_us
                    } else {
                        costs.copilot_dispatch_us
                    },
                );
                // Proxy report on behalf of the reading SPE. Reported on
                // *every* read — even one satisfied from a pending queue —
                // so write credits and read waits stay paired 1:1 in the
                // detector; a satisfying EV_WRITE always clears the edge.
                crate::dlsvc::report(
                    comm,
                    &shared.tables,
                    crate::dlsvc::chan_event(&shared.tables, cp_pilot::EV_READWAIT, chan),
                );
                let rr = PendingReq {
                    hw,
                    addr: req.addr,
                    len: req.len,
                };
                match writer_side(shared, chan, cell.id) {
                    WriterSide::LocalSpe => {
                        // Buffered eager payloads park in `pending_mpi` and
                        // always predate any parked rendezvous write (the
                        // writer blocks on a rendezvous write until it is
                        // paired), so draining them first preserves FIFO.
                        if let Some(msg) = pop_front_msg(&mut st.pending_mpi, chan) {
                            deliver(ctx, shared, cell, chan, &msg.data, rr);
                        } else if let Some(w) = pop_front(&mut st.pending_writes, chan) {
                            pair_type4(ctx, shared, cell, chan, w, rr);
                        } else if writer_dead(ctx, shared, cell, chan) {
                            complete(ctx, cell, hw, completion_err(CompletionError::PeerLost));
                        } else {
                            st.pending_reads.entry(chan).or_default().push_back(rr);
                        }
                    }
                    WriterSide::Mpi => {
                        if let Some(msg) = pop_front_msg(&mut st.pending_mpi, chan) {
                            deliver(ctx, shared, cell, chan, &msg.data, rr);
                        } else if writer_dead(ctx, shared, cell, chan) {
                            complete(ctx, cell, hw, completion_err(CompletionError::PeerLost));
                        } else {
                            st.pending_reads.entry(chan).or_default().push_back(rr);
                        }
                    }
                }
            }
        }
    }
}

#[allow(non_snake_case)]
fn CpTablesTag(chan: usize) -> i32 {
    chan as i32
}

fn charge(ctx: &ProcCtx, us: f64) {
    ctx.advance(SimDuration::from_micros_f64(us));
}

fn pop_front(map: &mut HashMap<usize, VecDeque<PendingReq>>, chan: usize) -> Option<PendingReq> {
    map.get_mut(&chan).and_then(|q| q.pop_front())
}

fn pop_front_msg(map: &mut HashMap<usize, VecDeque<Msg>>, chan: usize) -> Option<Msg> {
    map.get_mut(&chan).and_then(|q| q.pop_front())
}

enum ReaderSide {
    /// Reader is an SPE on this node (type 4).
    LocalSpe,
    /// Reader is reachable via MPI: a rank (types 2/3) or a remote
    /// Co-Pilot (type 5).
    Mpi(usize),
}

enum WriterSide {
    LocalSpe,
    Mpi,
}

fn reader_side(shared: &AppShared, chan: usize, my_node: usize) -> ReaderSide {
    let entry = &shared.tables.channels[chan];
    match shared.tables.processes[entry.to.0].location {
        Location::Rank { rank, .. } => ReaderSide::Mpi(rank),
        Location::Spe { node, .. } => {
            if node.0 == my_node {
                ReaderSide::LocalSpe
            } else {
                // Consult the live route: after a failover the reader's
                // node is served by its standby's rank.
                ReaderSide::Mpi(shared.copilot_rank(node))
            }
        }
    }
}

/// Whether the channel's writer process is already gone: an SPE
/// permanently lost (crashed unsupervised, or supervised past its restart
/// budget — a supervised SPE being restarted is *not* gone), or a rank
/// whose scripted death has fired. Used to fail a data-less SPE read with
/// `PeerLost` instead of parking it forever. (A message the writer sent
/// before dying that is still in flight counts as "no data yet" —
/// fail-fast semantics.)
fn writer_dead(ctx: &ProcCtx, shared: &AppShared, cell: &Arc<CellNode>, chan: usize) -> bool {
    let from = shared.tables.channels[chan].from;
    let now = ctx.now();
    let gone = match shared.tables.processes[from.0].location {
        Location::Rank { rank, .. } => shared.faults.death_of(rank).is_some_and(|at| now >= at),
        Location::Spe { .. } => shared.spe_gone(from.0, now),
    };
    if gone {
        ctx.report_incident(
            IncidentCategory::PeerLost,
            &format!(
                "Co-Pilot on node {} failing read on channel {chan}: writer '{}' is lost",
                cell.id, shared.tables.processes[from.0].name
            ),
        );
    }
    gone
}

fn writer_side(shared: &AppShared, chan: usize, my_node: usize) -> WriterSide {
    let entry = &shared.tables.channels[chan];
    match shared.tables.processes[entry.from.0].location {
        Location::Rank { .. } => WriterSide::Mpi,
        Location::Spe { node, .. } => {
            if node.0 == my_node {
                WriterSide::LocalSpe
            } else {
                WriterSide::Mpi
            }
        }
    }
}

/// Whether `data` qualifies for eager inline delivery on `chan`: the
/// channel opted into eager inlining and the payload fits what one
/// mailbox/control-word exchange can carry.
fn eager_small(shared: &AppShared, chan: usize, data: &[u8]) -> bool {
    shared
        .tables
        .channels
        .get(chan)
        .is_some_and(|e| e.eager_limit() > 0 && data.len() <= e.eager_limit())
}

/// Deliver channel data to a waiting SPE reader, picking the eager inline
/// path when the channel and payload qualify.
fn deliver(
    ctx: &ProcCtx,
    shared: &AppShared,
    cell: &Arc<CellNode>,
    chan: usize,
    data: &[u8],
    rr: PendingReq,
) {
    if eager_small(shared, chan, data) {
        deliver_to_spe_eager(ctx, shared, cell, chan, data, rr);
    } else {
        deliver_to_spe(ctx, shared, cell, chan, data, rr);
    }
}

/// Eager inline delivery: the payload rides the completion word itself (a
/// store-gather burst into the reader's inbound mailbox), skipping the
/// buffer-address translation and the mapped store of the DMA path.
fn deliver_to_spe_eager(
    ctx: &ProcCtx,
    shared: &AppShared,
    cell: &Arc<CellNode>,
    chan: usize,
    data: &[u8],
    rr: PendingReq,
) {
    // Final drain point, same contract as `deliver_to_spe`: the credit
    // returns whether or not the payload fits the posted buffer.
    shared.release_credit(chan);
    if data.len() > rr.len as usize {
        complete(ctx, cell, rr.hw, completion_err(CompletionError::Overflow));
        return;
    }
    cell.spes[rr.hw].mbox.ppe_write_inbox_inline(
        ctx,
        &cell.costs,
        completion_ok_inline(data.len()),
        data.to_vec(),
    );
    shared.trace.record(
        ctx.now(),
        &format!("copilot{}", cell.id),
        crate::trace::TraceOp::CopilotDeliver,
        chan,
        data.len(),
    );
    record_hop(ctx, shared, cell.id, chan, "deliver");
}

/// Deliver MPI-borne channel data into a waiting SPE's buffer: translate,
/// store through the mapping, notify.
fn deliver_to_spe(
    ctx: &ProcCtx,
    shared: &AppShared,
    cell: &Arc<CellNode>,
    _chan: usize,
    data: &[u8],
    rr: PendingReq,
) {
    let _ = shared;
    // This is the channel's final drain point (rank→SPE types 2/3, the
    // reader-side leg of a type 5, mcast fan-out): the message leaves the
    // pipeline here whether it fits the buffer or not, so its flow-control
    // send credit returns either way.
    shared.release_credit(_chan);
    charge(ctx, cell.costs.ea_translate_us);
    if data.len() > rr.len as usize {
        complete(ctx, cell, rr.hw, completion_err(CompletionError::Overflow));
        return;
    }
    cell.ea_write(ls_ea(rr.hw, rr.addr as usize), data)
        .expect("read buffer within local store");
    charge(ctx, cell.costs.memcpy_us(data.len(), 1));
    complete(ctx, cell, rr.hw, completion_ok(data.len()));
    shared.trace.record(
        ctx.now(),
        &format!("copilot{}", cell.id),
        crate::trace::TraceOp::CopilotDeliver,
        _chan,
        data.len(),
    );
    record_hop(ctx, shared, cell.id, _chan, "deliver");
}

/// Count one Co-Pilot proxy hop on `chan` and mark it on the Co-Pilot's
/// Chrome-trace lane. A type-5 message records two hops — the writer-side
/// MPI forward plus the reader-side delivery — while a purely local type-4
/// pairing records none.
fn record_hop(ctx: &ProcCtx, shared: &AppShared, cell_id: usize, chan: usize, what: &str) {
    if !shared.recorder.is_enabled() {
        return;
    }
    let Some(entry) = shared.tables.channels.get(chan) else {
        return;
    };
    let ty = entry.kind.type_number();
    shared.recorder.record_proxy_hop(ty);
    let lane = shared.recorder.lane(&format!("copilot{cell_id}"));
    shared.recorder.instant(
        lane,
        "copilot",
        &format!("{what} c{chan} (type {ty})"),
        ctx.now().0,
        None,
    );
}

/// Type-4 pairing: both buffer addresses are in hand; `memcpy` between the
/// two mapped local stores and notify both SPEs. The pairing charge models
/// the paper's poll-until-second-request behaviour.
fn pair_type4(
    ctx: &ProcCtx,
    shared: &AppShared,
    cell: &Arc<CellNode>,
    _chan: usize,
    w: PendingReq,
    r: PendingReq,
) {
    // The pairing drains the write whatever its outcome — return its
    // flow-control send credit.
    shared.release_credit(_chan);
    charge(ctx, shared.costs.copilot_pair_poll_us);
    charge(ctx, 2.0 * cell.costs.ea_translate_us);
    if w.len > r.len {
        complete(ctx, cell, w.hw, completion_err(CompletionError::Overflow));
        complete(ctx, cell, r.hw, completion_err(CompletionError::Overflow));
        return;
    }
    cell.ppe_memcpy(
        ctx,
        ls_ea(r.hw, r.addr as usize),
        ls_ea(w.hw, w.addr as usize),
        w.len as usize,
    )
    .expect("type-4 buffers within local stores");
    complete(ctx, cell, w.hw, completion_ok(w.len as usize));
    complete(ctx, cell, r.hw, completion_ok(w.len as usize));
    shared.trace.record(
        ctx.now(),
        &format!("copilot{}", cell.id),
        crate::trace::TraceOp::CopilotPair,
        _chan,
        w.len as usize,
    );
}

fn complete(ctx: &ProcCtx, cell: &Arc<CellNode>, hw: usize, word: u32) {
    cell.spes[hw].mbox.ppe_write_inbox(ctx, &cell.costs, word);
}
