//! CellPilot's deadlock-detection service.
//!
//! This generalizes Pilot's `-pisvc=d` to the hybrid cluster: the wait-for
//! graph itself ([`cp_pilot::WaitGraph`]) is shared with the Pilot layer,
//! but here the endpoints are [`DlEndpoint`]s spanning all five channel
//! types. MPI-visible ranks report their own operations; SPEs cannot talk
//! to the service directly, so their node's **Co-Pilot reports by proxy**
//! whenever it handles an `OP_WRITE`/`OP_READ` request block — the same
//! place it already mediates every SPE channel operation. Events carry both
//! channel endpoints (computed from the reporter's [`CpTables`]), so the
//! detector needs no routing knowledge of its own.
//!
//! A confirmed cycle aborts the run with a diagnostic naming every hop,
//! including the relaying Co-Pilots, e.g.
//! `spe(1,3) -> copilot(1) -> rank 0 -> spe(1,3)`.

use crate::location::Location;
use crate::tables::{CpTables, ProcKind};
use cp_des::SimDuration;
use cp_mpisim::{Comm, Datatype};
use cp_pilot::{
    decode_event, encode_event, DlEndpoint, DlEvent, WaitGraph, GRACE_US, POLL_US, TAG_SVC,
};
use cp_simnet::FaultPlan;
use std::sync::Arc;

/// The detector endpoint for a process location.
pub(crate) fn dl_endpoint(loc: &Location) -> DlEndpoint {
    match loc {
        Location::Rank { rank, .. } => DlEndpoint::Rank(*rank),
        Location::Spe { node, slot } => DlEndpoint::Spe {
            node: node.0,
            slot: *slot,
        },
    }
}

/// Build a write/read-wait event for channel `chan`, resolving both
/// endpoints. SPE readers get a `via` hop naming the Co-Pilot that relays
/// their waits, so diagnostics can render the full proxy chain.
pub(crate) fn chan_event(tables: &CpTables, kind: u8, chan: usize) -> DlEvent {
    let entry = &tables.channels[chan];
    let reader_loc = &tables.processes[entry.to.0].location;
    let writer_loc = &tables.processes[entry.from.0].location;
    let via = match reader_loc {
        Location::Spe { node, .. } => Some(node.0 as u32),
        Location::Rank { .. } => None,
    };
    DlEvent {
        kind,
        chan: chan as u32,
        reader: dl_endpoint(reader_loc),
        writer: dl_endpoint(writer_loc),
        via,
    }
}

/// Fire-and-forget an event to the detector, if the service is enabled.
pub(crate) fn report(comm: &Comm, tables: &CpTables, ev: DlEvent) {
    if let Some(det) = tables.detector_rank {
        let payload = encode_event(&ev);
        let n = payload.len();
        comm.send_bytes(det, TAG_SVC, Datatype::Byte, n, payload);
    }
}

/// The detector process body.
///
/// Exits once every application rank that can finish has reported
/// `EV_FINISH` — ranks with a scheduled death in the fault plan never
/// reach their finish barrier, so they are excluded symmetrically (the
/// same rule [`crate::runtime::CellPilot::finish`] applies to its
/// end-of-run barrier).
pub(crate) fn detector_main(comm: Comm, tables: Arc<CpTables>, faults: Arc<FaultPlan>) {
    let expected = tables
        .processes
        .iter()
        .filter(|p| {
            matches!(p.kind, ProcKind::Rank)
                && match p.location {
                    Location::Rank { rank, .. } => faults.death_of(rank).is_none(),
                    Location::Spe { .. } => false,
                }
        })
        .count();
    let mut graph = WaitGraph::new();
    loop {
        let msg = comm.recv(None, Some(TAG_SVC));
        let ev = match decode_event(&msg.data) {
            Ok(ev) => ev,
            Err(e) => comm.ctx().abort(&e.to_string()),
        };
        let suspect = graph.on_event(&ev);
        if graph.finished() == expected {
            return;
        }
        if let Some(cycle) = suspect {
            // Confirmation: a satisfying write (or a proxied report of one)
            // may still be in flight; drain and re-check for a grace
            // period before declaring.
            let mut waited = 0u64;
            let confirmed = loop {
                while let Some((src, _tag, _dt, _count)) = comm.iprobe(None, Some(TAG_SVC)) {
                    let m = comm.recv(Some(src), Some(TAG_SVC));
                    match decode_event(&m.data) {
                        Ok(ev) => {
                            let _ = graph.on_event(&ev);
                        }
                        Err(e) => comm.ctx().abort(&e.to_string()),
                    }
                }
                if !graph.cycle_still_present(&cycle) {
                    break false;
                }
                if waited >= GRACE_US {
                    break true;
                }
                comm.ctx().advance(SimDuration::from_micros(POLL_US));
                waited += POLL_US;
            };
            if confirmed {
                let names = graph.render_cycle(&cycle, |ep| ep.to_string());
                let err = crate::error::CpError::CircularWait { cycle: names };
                comm.ctx().abort(&err.to_string());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::location::{ChannelKind, ChannelMode, CpProcess};
    use crate::tables::{CpChanEntry, CpProcEntry};
    use cp_pilot::{EV_READWAIT, EV_WRITE};
    use cp_simnet::NodeId;
    use std::collections::BTreeMap;

    /// rank 0 on node 2 <-> spe(1,3): one channel each way (type 3).
    fn tables() -> CpTables {
        let processes = vec![
            CpProcEntry {
                name: "main".into(),
                location: Location::Rank {
                    rank: 0,
                    node: NodeId(2),
                },
                index: 0,
                kind: ProcKind::Rank,
            },
            CpProcEntry {
                name: "worker".into(),
                location: Location::Spe {
                    node: NodeId(1),
                    slot: 3,
                },
                index: 0,
                kind: ProcKind::Rank, // kind is irrelevant to chan_event
            },
        ];
        let channels = vec![
            CpChanEntry {
                from: CpProcess(0),
                to: CpProcess(1),
                kind: ChannelKind::Type3,
                mode: ChannelMode::Rendezvous,
                window: None,
                capacity: None,
                policy: crate::OverloadPolicy::Block,
                eager: None,
                max_payload: None,
            },
            CpChanEntry {
                from: CpProcess(1),
                to: CpProcess(0),
                kind: ChannelKind::Type3,
                mode: ChannelMode::Rendezvous,
                window: None,
                capacity: None,
                policy: crate::OverloadPolicy::Block,
                eager: None,
                max_payload: None,
            },
        ];
        CpTables {
            processes,
            channels,
            bundles: Vec::new(),
            copilot_ranks: BTreeMap::new(),
            standby_ranks: BTreeMap::new(),
            app_ranks: 1,
            detector_rank: None,
        }
    }

    #[test]
    fn spe_reader_gets_copilot_via() {
        let t = tables();
        let ev = chan_event(&t, EV_READWAIT, 0);
        assert_eq!(ev.reader, DlEndpoint::Spe { node: 1, slot: 3 });
        assert_eq!(ev.writer, DlEndpoint::Rank(0));
        assert_eq!(ev.via, Some(1));
    }

    #[test]
    fn rank_reader_has_no_via() {
        let t = tables();
        let ev = chan_event(&t, EV_WRITE, 1);
        assert_eq!(ev.reader, DlEndpoint::Rank(0));
        assert_eq!(ev.writer, DlEndpoint::Spe { node: 1, slot: 3 });
        assert_eq!(ev.via, None);
    }

    #[test]
    fn cross_boundary_cycle_names_all_hops() {
        let t = tables();
        let mut g = WaitGraph::new();
        // spe(1,3) blocked reading chan 0 (writer rank 0), proxied.
        assert!(g.on_event(&chan_event(&t, EV_READWAIT, 0)).is_none());
        // rank 0 blocked reading chan 1 (writer spe(1,3)) closes the loop.
        let cycle = g.on_event(&chan_event(&t, EV_READWAIT, 1)).expect("cycle");
        let names = g.render_cycle(&cycle, |ep| ep.to_string());
        assert_eq!(names, vec!["rank 0", "spe(1,3)", "copilot(1)", "rank 0"]);
    }
}
