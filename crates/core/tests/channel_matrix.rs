//! Correctness matrix: every Table-I channel type, both directions,
//! 1-byte and 1600-byte payloads (the two sizes of Table II), plus
//! SPE-specific failure modes.

use cellpilot::{
    CellPilotConfig, CellPilotOpts, ChannelKind, CpChannel, CpError, SpeProgram, CP_MAIN,
};
use cp_mpisim::LongDouble;
use cp_pilot::PiValue;
use cp_simnet::ClusterSpec;

fn payload_small() -> Vec<PiValue> {
    vec![PiValue::Byte(vec![0x5A])]
}

fn payload_array() -> Vec<PiValue> {
    vec![PiValue::LongDouble(
        (0..100).map(|i| LongDouble(i as f64 * 0.5)).collect(),
    )]
}

/// Build a two-Cell+Xeon app with one channel between the named endpoint
/// kinds, run a one-way transfer of each payload, and assert integrity.
fn run_matrix_case(kind: ChannelKind, spe_writer: bool) {
    for (fmt_w, fmt_r, payload) in [
        ("%b", "%b", payload_small()),
        ("%100Lf", "%*Lf", payload_array()),
    ] {
        let spec = ClusterSpec::two_cells_one_xeon();
        let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::default());
        let expected = payload.clone();
        let payload2 = payload.clone();

        let writer_prog = SpeProgram::new("writer", 2048, move |spe, _, _| {
            spe.write(CpChannel(0), fmt_w, &payload2).unwrap();
        });
        let expected2 = expected.clone();
        let reader_prog = SpeProgram::new("reader", 2048, move |spe, _, _| {
            let vals = spe.read(CpChannel(0), fmt_r).unwrap();
            assert_eq!(vals, expected2);
        });

        // Process layout per channel kind. `main` lives on node 0 (a Cell
        // node's PPE); `ppe1` on node 1; `xeon` on node 2.
        let ppe1 = cfg
            .create_process("ppe1", 0, move |cp, _| {
                // Runs any SPE children assigned to it by the scenario.
                let mine: Vec<_> = (0..cp.process_count())
                    .map(cellpilot::CpProcess)
                    .filter(|p| cp.run_spe(*p, 0, 0).is_ok())
                    .collect();
                let _ = mine;
            })
            .unwrap();

        let (from, to);
        match (kind, spe_writer) {
            (ChannelKind::Type1, _) => {
                from = CP_MAIN;
                to = ppe1;
            }
            (ChannelKind::Type2, true) => {
                from = cfg.create_spe_process(&writer_prog, CP_MAIN, 0).unwrap();
                to = CP_MAIN;
            }
            (ChannelKind::Type2, false) => {
                from = CP_MAIN;
                to = cfg.create_spe_process(&reader_prog, CP_MAIN, 0).unwrap();
            }
            (ChannelKind::Type3, true) => {
                from = cfg.create_spe_process(&writer_prog, ppe1, 0).unwrap();
                to = CP_MAIN;
            }
            (ChannelKind::Type3, false) => {
                from = CP_MAIN;
                to = cfg.create_spe_process(&reader_prog, ppe1, 0).unwrap();
            }
            (ChannelKind::Type4, _) => {
                from = cfg.create_spe_process(&writer_prog, CP_MAIN, 0).unwrap();
                to = cfg.create_spe_process(&reader_prog, CP_MAIN, 1).unwrap();
            }
            (ChannelKind::Type5, _) => {
                from = cfg.create_spe_process(&writer_prog, CP_MAIN, 0).unwrap();
                to = cfg.create_spe_process(&reader_prog, ppe1, 0).unwrap();
            }
        }
        let chan = cfg.channel(from, to).build().unwrap();
        assert_eq!(chan, CpChannel(0));
        assert_eq!(cfg.channel_kind(chan), Some(kind), "classification");

        cfg.run(move |cp| {
            // Start any SPE children parented by main.
            for p in 0..cp.process_count() {
                let _ = cp.run_spe(cellpilot::CpProcess(p), 0, 0);
            }
            // Main plays rank endpoint when the scenario needs it.
            match (kind, spe_writer) {
                (ChannelKind::Type1, _) => {
                    cp.write(chan, fmt_w, &payload).unwrap();
                }
                (ChannelKind::Type2, true) | (ChannelKind::Type3, true) => {
                    let vals = cp.read(chan, fmt_r).unwrap();
                    assert_eq!(vals, expected);
                }
                (ChannelKind::Type2, false) | (ChannelKind::Type3, false) => {
                    cp.write(chan, fmt_w, &payload).unwrap();
                }
                _ => {}
            }
        })
        .unwrap();
        // Type1 reader side runs in ppe1's body? No: ppe1 only launches
        // SPEs. For Type1 we instead read here:
        if kind == ChannelKind::Type1 {
            // covered in dedicated test below
        }
    }
}

#[test]
fn type2_both_directions() {
    run_matrix_case(ChannelKind::Type2, true);
    run_matrix_case(ChannelKind::Type2, false);
}

#[test]
fn type3_both_directions() {
    run_matrix_case(ChannelKind::Type3, true);
    run_matrix_case(ChannelKind::Type3, false);
}

#[test]
fn type4_spe_to_spe_local() {
    run_matrix_case(ChannelKind::Type4, true);
}

#[test]
fn type5_spe_to_spe_remote() {
    run_matrix_case(ChannelKind::Type5, true);
}

#[test]
fn type1_rank_to_rank() {
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::default());
    let reader = cfg
        .create_process("reader", 0, |cp, _| {
            let vals = cp.read(CpChannel(0), "%*Lf").unwrap();
            assert_eq!(vals[0].len(), 100);
        })
        .unwrap();
    let chan = cfg.channel(CP_MAIN, reader).build().unwrap();
    assert_eq!(cfg.channel_kind(chan), Some(ChannelKind::Type1));
    cfg.run(move |cp| {
        cp.write(chan, "%100Lf", &payload_array()).unwrap();
    })
    .unwrap();
}

#[test]
fn xeon_to_spe_is_type3_and_works() {
    // Non-Cell (Xeon) endpoint to a remote SPE — the "or non-Cell" half of
    // the type-3 row.
    let spec = ClusterSpec::two_cells_one_xeon();
    // main on the Xeon node, one PPE process on Cell node 0.
    let placement = vec![cp_simnet::NodeId(2), cp_simnet::NodeId(0)];
    let mut cfg = CellPilotConfig::new(spec, placement, CellPilotOpts::default());
    let reader_prog = SpeProgram::new("reader", 2048, |spe, _, _| {
        let vals = spe.read(CpChannel(0), "%3d").unwrap();
        assert_eq!(vals[0], PiValue::Int32(vec![7, 8, 9]));
    });
    let ppe = cfg
        .create_process("ppe", 0, |cp, _| {
            let t = cp.run_spe(cellpilot::CpProcess(2), 0, 0).unwrap();
            cp.wait_spe(t);
        })
        .unwrap();
    let spe = cfg.create_spe_process(&reader_prog, ppe, 0).unwrap();
    let chan = cfg.channel(CP_MAIN, spe).build().unwrap();
    assert_eq!(cfg.channel_kind(chan), Some(ChannelKind::Type3));
    cfg.run(move |cp| {
        cp.write(chan, "%3d", &[PiValue::Int32(vec![7, 8, 9])])
            .unwrap();
    })
    .unwrap();
}

#[test]
fn spe_ping_pong_many_rounds() {
    // Sustained bidirectional type-4 traffic through one Co-Pilot.
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::default());
    let rounds = 25i32;
    let ping = SpeProgram::new("ping", 2048, move |spe, _, _| {
        for i in 0..rounds {
            spe.write(CpChannel(0), "%d", &[PiValue::Int32(vec![i])])
                .unwrap();
            let v = spe.read(CpChannel(1), "%d").unwrap();
            assert_eq!(v[0], PiValue::Int32(vec![i + 1000]));
        }
    });
    let pong = SpeProgram::new("pong", 2048, move |spe, _, _| {
        for _ in 0..rounds {
            let v = spe.read(CpChannel(0), "%d").unwrap();
            let PiValue::Int32(x) = &v[0] else {
                unreachable!()
            };
            spe.write(CpChannel(1), "%d", &[PiValue::Int32(vec![x[0] + 1000])])
                .unwrap();
        }
    });
    let a = cfg.create_spe_process(&ping, CP_MAIN, 0).unwrap();
    let b = cfg.create_spe_process(&pong, CP_MAIN, 1).unwrap();
    let c0 = cfg.channel(a, b).build().unwrap();
    let c1 = cfg.channel(b, a).build().unwrap();
    assert_eq!((c0, c1), (CpChannel(0), CpChannel(1)));
    cfg.run(move |cp| {
        let t1 = cp.run_spe(a, 0, 0).unwrap();
        let t2 = cp.run_spe(b, 0, 0).unwrap();
        cp.wait_spe(t1);
        cp.wait_spe(t2);
    })
    .unwrap();
}

#[test]
fn spe_buffer_overflow_reported() {
    // A %* read's default buffer can be exceeded by a huge message.
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::default());
    let reader = SpeProgram::new("reader", 2048, |spe, _, _| {
        // Default limit is 16 KiB; the writer sends ~32 KiB.
        match spe.read(CpChannel(0), "%*d") {
            Err(CpError::SpeBufferOverflow { .. }) => {}
            other => panic!("expected overflow, got {other:?}"),
        }
    });
    let spe = cfg.create_spe_process(&reader, CP_MAIN, 0).unwrap();
    let chan = cfg.channel(CP_MAIN, spe).build().unwrap();
    cfg.run(move |cp| {
        let t = cp.run_spe(cellpilot::CpProcess(1), 0, 0).unwrap();
        let big: Vec<i32> = vec![0; 8192];
        cp.write(chan, "%8192d", &[PiValue::Int32(big)]).unwrap();
        cp.wait_spe(t);
        let _ = chan;
    })
    .unwrap();
}

#[test]
fn wrong_spe_writer_aborts() {
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::default());
    let intruder = SpeProgram::new("intruder", 2048, |spe, _, _| {
        match spe.write(CpChannel(0), "%b", &[PiValue::Byte(vec![1])]) {
            Err(CpError::NotWriter { channel: 0, .. }) => {}
            other => panic!("expected NotWriter, got {other:?}"),
        }
    });
    let a = cfg.create_spe_process(&intruder, CP_MAIN, 0).unwrap();
    let ppe1 = cfg.create_process("ppe1", 0, |_, _| {}).unwrap();
    // Channel 0 belongs to main -> ppe1, not the SPE.
    let _chan = cfg.channel(CP_MAIN, ppe1).build().unwrap();
    cfg.run(move |cp| {
        let t = cp.run_spe(a, 0, 0).unwrap();
        cp.wait_spe(t);
        // The eager write below is buffered, so ppe1 exiting without
        // reading is harmless — the run completes.
        cp.write(CpChannel(0), "%b", &[PiValue::Byte(vec![9])])
            .unwrap();
    })
    .unwrap();
}

#[test]
fn run_spe_misuse_errors() {
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::default());
    let prog = SpeProgram::new("w", 2048, |spe, _, _| {
        spe.ctx().advance(cp_des::SimDuration::from_millis(1));
    });
    let other_ppe = cfg
        .create_process("ppe1", 0, |cp, _| {
            // Not the parent of SPE process 2.
            match cp.run_spe(cellpilot::CpProcess(2), 0, 0) {
                Err(CpError::NotParent { .. }) => {}
                other => panic!("expected NotParent, got {other:?}"),
            }
        })
        .unwrap();
    let spe = cfg.create_spe_process(&prog, CP_MAIN, 0).unwrap();
    let _ = other_ppe;
    cfg.run(move |cp| {
        // Running a rank process is an error.
        match cp.run_spe(cellpilot::CpProcess(1), 0, 0) {
            Err(CpError::NotSpeProcess(1)) => {}
            other => panic!("expected NotSpeProcess, got {other:?}"),
        }
        let t = cp.run_spe(spe, 0, 0).unwrap();
        // Double-run while running is an error.
        match cp.run_spe(spe, 0, 0) {
            Err(CpError::AlreadyRunning(_)) => {}
            other => panic!("expected AlreadyRunning, got {other:?}"),
        }
        cp.wait_spe(t);
        // After completion it can be run again (load/reload pattern).
        let t2 = cp.run_spe(spe, 1, 0).unwrap();
        cp.wait_spe(t2);
    })
    .unwrap();
}

#[test]
fn spe_args_are_delivered() {
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::default());
    let prog = SpeProgram::new("w", 2048, |spe, arg, ptr| {
        spe.write(
            CpChannel(0),
            "%d %ld",
            &[PiValue::Int32(vec![arg]), PiValue::Int64(vec![ptr as i64])],
        )
        .unwrap();
    });
    let spe = cfg.create_spe_process(&prog, CP_MAIN, 7).unwrap();
    let chan = cfg.channel(spe, CP_MAIN).build().unwrap();
    cfg.run(move |cp| {
        let t = cp.run_spe(spe, 1234, 0xDEAD_BEEF).unwrap();
        let vals = cp.read(chan, "%d %ld").unwrap();
        assert_eq!(vals[0], PiValue::Int32(vec![1234]));
        assert_eq!(vals[1], PiValue::Int64(vec![0xDEAD_BEEF]));
        cp.wait_spe(t);
    })
    .unwrap();
}

#[test]
fn no_free_spe_is_reported() {
    // two_cells_one_xeon gives 8 SPEs per Cell node; occupy all 8, then a
    // 9th launch must fail, and succeed again once an SPE frees up.
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::default());
    let hog = SpeProgram::new("hog", 2048, |spe, _, _| {
        spe.ctx().advance(cp_des::SimDuration::from_millis(5));
    });
    let mut procs = Vec::new();
    for i in 0..9 {
        procs.push(cfg.create_spe_process(&hog, CP_MAIN, i).unwrap());
    }
    cfg.run(move |cp| {
        let mut tasks = Vec::new();
        for p in &procs[..8] {
            tasks.push(cp.run_spe(*p, 0, 0).unwrap());
        }
        match cp.run_spe(procs[8], 0, 0) {
            Err(CpError::NoFreeSpe { node: 0 }) => {}
            other => panic!("expected NoFreeSpe, got {other:?}"),
        }
        for t in tasks {
            cp.wait_spe(t);
        }
        let t9 = cp.run_spe(procs[8], 0, 0).unwrap();
        cp.wait_spe(t9);
    })
    .unwrap();
}

#[test]
fn spe_channel_has_data_poll() {
    // The OP_POLL extension: an SPE can check for pending data without
    // blocking, then read it.
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::default());
    let poller = SpeProgram::new("poller", 2048, |spe, _, _| {
        // Nothing written yet at t ~ startup.
        assert!(!spe.channel_has_data(CpChannel(0)).unwrap());
        // Announce readiness, then poll until the data shows up.
        spe.write(CpChannel(1), "%b", &[PiValue::Byte(vec![1])])
            .unwrap();
        while !spe.channel_has_data(CpChannel(0)).unwrap() {
            spe.ctx().advance(cp_des::SimDuration::from_micros(50));
        }
        let v = spe.read(CpChannel(0), "%d").unwrap();
        assert_eq!(v[0], PiValue::Int32(vec![77]));
        // Polling a channel I do not read is misuse.
        assert!(matches!(
            spe.channel_has_data(CpChannel(1)),
            Err(CpError::NotReader { .. })
        ));
    });
    let s = cfg.create_spe_process(&poller, CP_MAIN, 0).unwrap();
    let to_spe = cfg.channel(CP_MAIN, s).build().unwrap();
    let from_spe = cfg.channel(s, CP_MAIN).build().unwrap();
    cfg.run(move |cp| {
        let t = cp.run_spe(s, 0, 0).unwrap();
        let _ = cp.read(from_spe, "%b").unwrap();
        cp.ctx().advance(cp_des::SimDuration::from_micros(500));
        cp.write(to_spe, "%d", &[PiValue::Int32(vec![77])]).unwrap();
        cp.wait_spe(t);
    })
    .unwrap();
}

#[test]
fn run_my_spes_launches_only_my_children() {
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::default());
    let worker = SpeProgram::new("w", 2048, |spe, arg, _| {
        // run_my_spes passes the configured index as arg_int.
        assert_eq!(arg, spe.index());
        spe.write(
            CpChannel(spe.index() as usize),
            "%d",
            &[PiValue::Int32(vec![arg * 5])],
        )
        .unwrap();
    });
    let host = cfg
        .create_process("host", 0, |cp, _| cp.run_and_wait_my_spes())
        .unwrap();
    let mut chans = Vec::new();
    for i in 0..3 {
        let parent = if i < 2 { CP_MAIN } else { host };
        let s = cfg.create_spe_process(&worker, parent, i).unwrap();
        chans.push(cfg.channel(s, CP_MAIN).build().unwrap());
    }
    cfg.run(move |cp| {
        let tasks = cp.run_my_spes();
        assert_eq!(tasks.len(), 2, "main parents exactly two SPE processes");
        for (i, &c) in chans.iter().enumerate() {
            let v = cp.read(c, "%d").unwrap();
            assert_eq!(v[0], PiValue::Int32(vec![i as i32 * 5]));
        }
        for t in tasks {
            cp.wait_spe(t);
        }
    })
    .unwrap();
}
