//! The paper's Figure 3/4 sample program: a type-5 SPE→SPE transfer of 100
//! integers across two Cell nodes, relayed through both Co-Pilots.

use cellpilot::{CellPilotConfig, CellPilotOpts, CpChannel, SpeProgram, CP_MAIN};
use cp_pilot::PiValue;
use cp_simnet::ClusterSpec;

#[test]
fn figure_3_4_type5_transfer() {
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::default());

    let spe_send = SpeProgram::new("spe_send", 2048, |spe, _arg, _ptr| {
        let array: Vec<i32> = (0..100).collect();
        spe.write(CpChannel(0), "%100d", &[PiValue::Int32(array)])
            .unwrap();
    });
    let spe_recv = SpeProgram::new("spe_recv", 2048, |spe, _arg, _ptr| {
        let vals = spe.read(CpChannel(0), "%*d").unwrap();
        assert_eq!(vals[0], PiValue::Int32((0..100).collect()));
    });

    let recv_ppe = cfg
        .create_process("recvFunc", 0, |cp, _| {
            let t = cp.run_spe(cellpilot::CpProcess(3), 0, 0).unwrap();
            cp.wait_spe(t);
        })
        .unwrap();
    let send_spe = cfg.create_spe_process(&spe_send, CP_MAIN, 0).unwrap();
    let recv_spe = cfg.create_spe_process(&spe_recv, recv_ppe, 0).unwrap();
    assert_eq!(recv_spe, cellpilot::CpProcess(3));
    let between = cfg.channel(send_spe, recv_spe).build().unwrap();
    assert_eq!(between, CpChannel(0));

    cfg.run(move |cp| {
        let t = cp.run_spe(send_spe, 0, 0).unwrap();
        cp.wait_spe(t);
    })
    .unwrap();
}
