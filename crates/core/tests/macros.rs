//! The Pilot-style convenience macros: `cp_write!`/`cp_read!` on the rank
//! side and `spe_write!`/`spe_read!` on the SPE side, including their
//! abort-with-source-location behaviour.

use cellpilot::{
    cp_read, cp_write, spe_read, spe_write, CellPilotConfig, CellPilotOpts, CpChannel, SpeProgram,
    CP_MAIN,
};
use cp_des::SimError;
use cp_pilot::PiValue;
use cp_simnet::ClusterSpec;

#[test]
fn macros_round_trip_both_sides() {
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::default());
    let echo = SpeProgram::new("echo", 2048, |spe, _, _| {
        let vals = spe_read!(spe, CpChannel(0), "%4d");
        let PiValue::Int32(v) = &vals[0] else {
            unreachable!()
        };
        let doubled: Vec<i32> = v.iter().map(|x| x * 2).collect();
        spe_write!(spe, CpChannel(1), "%4d", doubled);
    });
    let s = cfg.create_spe_process(&echo, CP_MAIN, 0).unwrap();
    cfg.channel(CP_MAIN, s).build().unwrap();
    cfg.channel(s, CP_MAIN).build().unwrap();
    cfg.run(move |cp| {
        let t = cp.run_spe(s, 0, 0).unwrap();
        cp_write!(cp, CpChannel(0), "%4d", vec![1i32, 2, 3, 4]);
        let vals = cp_read!(cp, CpChannel(1), "%4d");
        assert_eq!(vals[0], PiValue::Int32(vec![2, 4, 6, 8]));
        cp.wait_spe(t);
    })
    .unwrap();
}

#[test]
fn cp_write_macro_aborts_with_this_file() {
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::default());
    let a = cfg.create_process("a", 0, |_, _| {}).unwrap();
    let _chan = cfg.channel(a, CP_MAIN).build().unwrap(); // main is the READER
    match cfg.run(move |cp| {
        // Writing a channel main only reads must abort through the macro.
        cp_write!(cp, CpChannel(0), "%b", 1u8);
    }) {
        Err(SimError::Aborted { message, .. }) => {
            assert!(message.contains("macros.rs"), "{message}");
            assert!(message.contains("not the writer"), "{message}");
        }
        other => panic!("expected abort, got {other:?}"),
    }
}

#[test]
fn spe_read_macro_aborts_on_format_mismatch() {
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::default());
    let reader = SpeProgram::new("reader", 2048, |spe, _, _| {
        // Writer sends bytes; reading ints must abort via the macro.
        let _ = spe_read!(spe, CpChannel(0), "%4d");
    });
    let s = cfg.create_spe_process(&reader, CP_MAIN, 0).unwrap();
    let chan = cfg.channel(CP_MAIN, s).build().unwrap();
    match cfg.run(move |cp| {
        let t = cp.run_spe(s, 0, 0).unwrap();
        cp_write!(cp, chan, "%4b", vec![1u8, 2, 3, 4]);
        cp.wait_spe(t);
    }) {
        Err(SimError::Aborted { message, .. }) => {
            assert!(message.contains("macros.rs"), "{message}");
            assert!(message.contains("disagrees with writer"), "{message}");
        }
        other => panic!("expected abort, got {other:?}"),
    }
}

#[test]
fn macro_accepts_scalars_slices_and_vecs() {
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::default());
    let sink = cfg
        .create_process("sink", 0, |cp, _| {
            let vals = cp_read!(cp, CpChannel(0), "%d %3lf %2b");
            assert_eq!(vals[0], PiValue::Int32(vec![7]));
            assert_eq!(vals[1], PiValue::Float64(vec![1.0, 2.0, 3.0]));
            assert_eq!(vals[2], PiValue::Byte(vec![8, 9]));
        })
        .unwrap();
    let chan = cfg.channel(CP_MAIN, sink).build().unwrap();
    cfg.run(move |cp| {
        let doubles = [1.0f64, 2.0, 3.0];
        cp_write!(cp, chan, "%d %3lf %2b", 7i32, &doubles[..], vec![8u8, 9]);
    })
    .unwrap();
}
