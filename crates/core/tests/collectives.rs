//! SPE-inclusive collective operations (the paper's future-work
//! extension): broadcast and gather over bundles whose members mix PPE,
//! non-Cell, and SPE processes.

use cellpilot::{
    reduce_f64, CellPilotConfig, CellPilotOpts, CpBundleUsage, CpChannel, SpeProgram, CP_MAIN,
};
use cp_pilot::PiValue;
use cp_simnet::ClusterSpec;
use parking_lot::Mutex;
use std::sync::Arc;

#[test]
fn broadcast_to_mixed_spe_and_rank_receivers() {
    // main broadcasts one array to: 2 SPEs on node 0, 2 SPEs on node 1,
    // and a rank process — five receivers, three destinations on the wire.
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::default());
    let expected = PiValue::Int32((0..50).collect());
    let exp2 = expected.clone();

    let recv_prog = SpeProgram::new("recv", 2048, move |spe, _, _| {
        let vals = spe.read(CpChannel(spe.index() as usize), "%50d").unwrap();
        assert_eq!(vals[0], exp2);
    });
    let exp3 = expected.clone();
    let ppe1 = cfg
        .create_process("ppe1", 0, move |cp, _| {
            // Launch my SPE children, then read my own channel (id 4).
            let mut ts = Vec::new();
            for p in 0..cp.process_count() {
                if let Ok(t) = cp.run_spe(cellpilot::CpProcess(p), 0, 0) {
                    ts.push(t);
                }
            }
            let vals = cp.read(CpChannel(4), "%50d").unwrap();
            assert_eq!(vals[0], exp3);
            for t in ts {
                cp.wait_spe(t);
            }
        })
        .unwrap();
    let mut chans = Vec::new();
    for i in 0..2 {
        let s = cfg.create_spe_process(&recv_prog, CP_MAIN, i).unwrap();
        chans.push(cfg.channel(CP_MAIN, s).build().unwrap());
    }
    for i in 2..4 {
        let s = cfg.create_spe_process(&recv_prog, ppe1, i).unwrap();
        chans.push(cfg.channel(CP_MAIN, s).build().unwrap());
    }
    chans.push(cfg.channel(CP_MAIN, ppe1).build().unwrap());
    let bundle = cfg.create_bundle(CpBundleUsage::Broadcast, &chans).unwrap();
    cfg.run(move |cp| {
        let mut ts = Vec::new();
        for p in 0..cp.process_count() {
            if let Ok(t) = cp.run_spe(cellpilot::CpProcess(p), 0, 0) {
                ts.push(t);
            }
        }
        cp.broadcast(bundle, "%50d", std::slice::from_ref(&expected))
            .unwrap();
        for t in ts {
            cp.wait_spe(t);
        }
    })
    .unwrap();
}

#[test]
fn gather_from_spe_writers() {
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::default());
    let send_prog = SpeProgram::new("send", 2048, |spe, _, _| {
        let idx = spe.index();
        let contribution = vec![idx as f64, idx as f64 * 10.0];
        spe.write(
            CpChannel(idx as usize),
            "%2lf",
            &[PiValue::Float64(contribution)],
        )
        .unwrap();
    });
    let mut chans = Vec::new();
    for i in 0..4 {
        let s = cfg.create_spe_process(&send_prog, CP_MAIN, i).unwrap();
        chans.push(cfg.channel(s, CP_MAIN).build().unwrap());
    }
    let bundle = cfg.create_bundle(CpBundleUsage::Gather, &chans).unwrap();
    cfg.run(move |cp| {
        let mut ts = Vec::new();
        for p in 0..cp.process_count() {
            if let Ok(t) = cp.run_spe(cellpilot::CpProcess(p), 0, 0) {
                ts.push(t);
            }
        }
        let rows = cp.gather(bundle, "%2lf").unwrap();
        assert_eq!(rows.len(), 4);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row[0], PiValue::Float64(vec![i as f64, i as f64 * 10.0]));
        }
        // The reduce helper composes with gather.
        let sum = reduce_f64(&rows, |a, b| a + b).unwrap();
        assert_eq!(sum, vec![0.0 + 1.0 + 2.0 + 3.0, 0.0 + 10.0 + 20.0 + 30.0]);
        for t in ts {
            cp.wait_spe(t);
        }
    })
    .unwrap();
}

#[test]
fn spe_common_endpoint_gathers_from_siblings() {
    // An SPE is the gather point for two sibling SPEs (all on one node).
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::default());
    let send_prog = SpeProgram::new("send", 2048, |spe, _, _| {
        let idx = spe.index();
        spe.write(
            CpChannel(idx as usize),
            "%d",
            &[PiValue::Int32(vec![idx * 7])],
        )
        .unwrap();
    });
    let done: Arc<Mutex<bool>> = Arc::new(Mutex::new(false));
    let done2 = done.clone();
    let hub_prog = SpeProgram::new("hub", 2048, move |spe, _, _| {
        let rows = spe.gather(cellpilot::CpBundle(0), "%d").unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], PiValue::Int32(vec![0]));
        assert_eq!(rows[1][0], PiValue::Int32(vec![7]));
        *done2.lock() = true;
    });
    let hub = cfg.create_spe_process(&hub_prog, CP_MAIN, 9).unwrap();
    let mut chans = Vec::new();
    for i in 0..2 {
        let s = cfg.create_spe_process(&send_prog, CP_MAIN, i).unwrap();
        chans.push(cfg.channel(s, hub).build().unwrap());
    }
    cfg.create_bundle(CpBundleUsage::Gather, &chans).unwrap();
    cfg.run(move |cp| {
        let mut ts = Vec::new();
        for p in 0..cp.process_count() {
            if let Ok(t) = cp.run_spe(cellpilot::CpProcess(p), 0, 0) {
                ts.push(t);
            }
        }
        for t in ts {
            cp.wait_spe(t);
        }
    })
    .unwrap();
    assert!(*done.lock());
}

#[test]
fn hierarchical_broadcast_beats_linear_writes() {
    // Broadcasting to 6 remote SPEs crosses the wire once (multicast to
    // their Co-Pilot) instead of six times. Compare against writing each
    // channel individually.
    fn run_broadcast(linear: bool) -> f64 {
        let spec = ClusterSpec::two_cells_one_xeon();
        let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::default());
        let n = 6;
        let recv_prog = SpeProgram::new("recv", 2048, |spe, _, _| {
            let _ = spe.read(CpChannel(spe.index() as usize), "%100d").unwrap();
        });
        let ppe1 = cfg
            .create_process("ppe1", 0, move |cp, _| {
                let mut ts = Vec::new();
                for p in 0..cp.process_count() {
                    if let Ok(t) = cp.run_spe(cellpilot::CpProcess(p), 0, 0) {
                        ts.push(t);
                    }
                }
                for t in ts {
                    cp.wait_spe(t);
                }
            })
            .unwrap();
        let mut chans = Vec::new();
        for i in 0..n {
            let s = cfg.create_spe_process(&recv_prog, ppe1, i).unwrap();
            chans.push(cfg.channel(CP_MAIN, s).build().unwrap());
        }
        let bundle = cfg.create_bundle(CpBundleUsage::Broadcast, &chans).unwrap();
        let elapsed = Arc::new(Mutex::new(0.0f64));
        let el = elapsed.clone();
        cfg.run(move |cp| {
            let data = PiValue::Int32((0..100).collect());
            let t0 = cp.ctx().now();
            if linear {
                for &c in &chans {
                    cp.write(c, "%100d", std::slice::from_ref(&data)).unwrap();
                }
            } else {
                cp.broadcast(bundle, "%100d", &[data]).unwrap();
            }
            *el.lock() = (cp.ctx().now() - t0).as_micros_f64();
        })
        .unwrap();
        let v = *elapsed.lock();
        v
    }
    let linear = run_broadcast(true);
    let hierarchical = run_broadcast(false);
    assert!(
        hierarchical < linear / 2.0,
        "hierarchical {hierarchical} vs linear {linear}"
    );
}

#[test]
fn bundle_misuse_is_reported() {
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::default());
    let a = cfg.create_process("a", 0, |_, _| {}).unwrap();
    let b = cfg.create_process("b", 0, |_, _| {}).unwrap();
    let c1 = cfg.channel(CP_MAIN, a).build().unwrap();
    let c2 = cfg.channel(CP_MAIN, b).build().unwrap();
    let c3 = cfg.channel(a, b).build().unwrap();
    // Mixed writers cannot form a broadcast bundle.
    assert!(matches!(
        cfg.create_bundle(CpBundleUsage::Broadcast, &[c1, c3]),
        Err(cellpilot::CpError::BundleCommonEndpoint)
    ));
    // Empty bundle.
    assert!(matches!(
        cfg.create_bundle(CpBundleUsage::Gather, &[]),
        Err(cellpilot::CpError::EmptyBundle)
    ));
    // Double membership.
    cfg.create_bundle(CpBundleUsage::Broadcast, &[c1, c2])
        .unwrap();
    assert!(matches!(
        cfg.create_bundle(CpBundleUsage::Broadcast, &[c1]),
        Err(cellpilot::CpError::ChannelAlreadyBundled(_))
    ));
}

#[test]
fn trace_records_channel_legs() {
    use cellpilot::{CellPilotConfig, TraceOp};
    // A type-2 round trip with tracing on: the trace must show the rank
    // write, the Co-Pilot delivering into the SPE, the SPE's read, the
    // SPE's write serviced by the Co-Pilot, and the rank read — in time
    // order.
    let spec = ClusterSpec::two_cells_one_xeon();
    let opts = cellpilot::CellPilotOpts {
        trace: true,
        ..Default::default()
    };
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, opts);
    let echo = SpeProgram::new("echo", 2048, |spe, _, _| {
        let v = spe.read(CpChannel(0), "%d").unwrap();
        spe.write(CpChannel(1), "%d", &v).unwrap();
    });
    let s = cfg.create_spe_process(&echo, CP_MAIN, 0).unwrap();
    cfg.channel(CP_MAIN, s).build().unwrap();
    cfg.channel(s, CP_MAIN).build().unwrap();
    let (_report, trace) = cfg
        .run_traced(move |cp| {
            let t = cp.run_spe(s, 0, 0).unwrap();
            cp.write(CpChannel(0), "%d", &[PiValue::Int32(vec![5])])
                .unwrap();
            let _ = cp.read(CpChannel(1), "%d").unwrap();
            cp.wait_spe(t);
        })
        .unwrap();
    let ops: Vec<TraceOp> = trace.iter().map(|e| e.op).collect();
    assert!(ops.contains(&TraceOp::RunSpe));
    assert!(ops.contains(&TraceOp::RankWrite));
    assert!(ops.contains(&TraceOp::CopilotDeliver));
    assert!(ops.contains(&TraceOp::SpeRead));
    assert!(ops.contains(&TraceOp::SpeWrite));
    assert!(ops.contains(&TraceOp::CopilotWrite));
    assert!(ops.contains(&TraceOp::RankRead));
    // Monotone timestamps.
    assert!(trace.windows(2).all(|w| w[0].at <= w[1].at));
    // The render is printable.
    let rendered = cellpilot::render_trace(&trace);
    assert!(rendered.contains("copilot0"));
}

#[test]
fn select_over_mixed_writers() {
    // A gather bundle with one SPE writer and one rank writer; select
    // returns whichever channel has data first.
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::default());
    let slow_spe = SpeProgram::new("slow", 2048, |spe, _, _| {
        spe.ctx().advance(cp_des::SimDuration::from_millis(5));
        spe.write(CpChannel(0), "%b", &[PiValue::Byte(vec![1])])
            .unwrap();
    });
    let fast_rank = cfg
        .create_process("fast", 0, |cp, _| {
            cp.write(CpChannel(1), "%b", &[PiValue::Byte(vec![2])])
                .unwrap();
        })
        .unwrap();
    let s = cfg.create_spe_process(&slow_spe, CP_MAIN, 0).unwrap();
    let c0 = cfg.channel(s, CP_MAIN).build().unwrap();
    let c1 = cfg.channel(fast_rank, CP_MAIN).build().unwrap();
    let bundle = cfg.create_bundle(CpBundleUsage::Gather, &[c0, c1]).unwrap();
    cfg.run(move |cp| {
        let t = cp.run_spe(s, 0, 0).unwrap();
        let first = cp.select(bundle).unwrap();
        assert_eq!(first, c1, "the rank writer wins the race");
        let v = cp.read(first, "%b").unwrap();
        assert_eq!(v[0], PiValue::Byte(vec![2]));
        // try_select: the slow SPE's message is not there yet.
        assert_eq!(cp.try_select(bundle).unwrap(), None);
        let second = cp.select(bundle).unwrap();
        assert_eq!(second, c0);
        let v = cp.read(second, "%b").unwrap();
        assert_eq!(v[0], PiValue::Byte(vec![1]));
        cp.wait_spe(t);
    })
    .unwrap();
}

#[test]
fn select_misuse_rejected() {
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::default());
    let a = cfg.create_process("a", 0, |_, _| {}).unwrap();
    let c = cfg.channel(CP_MAIN, a).build().unwrap();
    let bundle = cfg.create_bundle(CpBundleUsage::Broadcast, &[c]).unwrap();
    cfg.run(move |cp| {
        // select on a broadcast bundle is misuse.
        assert!(matches!(
            cp.select(bundle),
            Err(cellpilot::CpError::BundleMisuse { .. })
        ));
        cp.broadcast(bundle, "%b", &[PiValue::Byte(vec![0])])
            .unwrap();
    })
    .unwrap(); // the eager broadcast is buffered; 'a' exiting unread is fine
}

#[test]
fn type5_traverses_both_copilots_three_hops() {
    // The paper: "for SPEs of different nodes to intercommunicate requires
    // three hops involving two PPEs." The trace of a type-5 transfer must
    // show the writer's Co-Pilot (copilot0) making the MPI send and the
    // reader's Co-Pilot (copilot1) doing the local-store delivery, in
    // that order.
    let spec = ClusterSpec::two_cells_one_xeon();
    let opts = CellPilotOpts {
        trace: true,
        ..Default::default()
    };
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, opts);
    let sender = SpeProgram::new("snd", 2048, |spe, _, _| {
        spe.write(CpChannel(0), "%d", &[PiValue::Int32(vec![7])])
            .unwrap();
    });
    let receiver = SpeProgram::new("rcv", 2048, |spe, _, _| {
        let _ = spe.read(CpChannel(0), "%d").unwrap();
    });
    let parent = cfg
        .create_process("parent", 0, |cp, _| cp.run_and_wait_my_spes())
        .unwrap();
    let a = cfg.create_spe_process(&sender, CP_MAIN, 0).unwrap();
    let b = cfg.create_spe_process(&receiver, parent, 0).unwrap();
    cfg.channel(a, b).build().unwrap();
    let (_r, trace) = cfg.run_traced(move |cp| cp.run_and_wait_my_spes()).unwrap();
    let hop_senders: Vec<&str> = trace
        .iter()
        .filter(|e| {
            matches!(
                e.op,
                cellpilot::TraceOp::CopilotWrite | cellpilot::TraceOp::CopilotDeliver
            )
        })
        .map(|e| e.process.as_str())
        .collect();
    assert_eq!(
        hop_senders,
        vec!["copilot0", "copilot1"],
        "writer's Co-Pilot relays, then reader's Co-Pilot delivers"
    );
    let w = trace
        .iter()
        .find(|e| e.op == cellpilot::TraceOp::CopilotWrite)
        .unwrap();
    let d = trace
        .iter()
        .find(|e| e.op == cellpilot::TraceOp::CopilotDeliver)
        .unwrap();
    // The wire separates the two Co-Pilot legs by at least its latency.
    assert!(
        (d.at - w.at).as_micros_f64() >= 60.0,
        "wire crossing between hops: {} -> {}",
        w.at,
        d.at
    );
}
