//! Failure injection: crashes and misuse inside SPE programs must surface
//! as clean diagnostics, never hangs or corrupted state.

use cellpilot::{CellPilotConfig, CellPilotOpts, CpChannel, SpeProgram, CP_MAIN};
use cp_des::SimError;
use cp_pilot::PiValue;
use cp_simnet::ClusterSpec;

#[test]
fn spe_panic_fails_the_run_cleanly() {
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::default());
    let crasher = SpeProgram::new("crasher", 2048, |spe, _, _| {
        spe.ctx().advance(cp_des::SimDuration::from_micros(100));
        panic!("simulated SPE crash at t=100us");
    });
    let s = cfg.create_spe_process(&crasher, CP_MAIN, 0).unwrap();
    match cfg.run(move |cp| {
        let t = cp.run_spe(s, 0, 0).unwrap();
        cp.wait_spe(t);
    }) {
        Err(SimError::ProcessPanicked { name, message, .. }) => {
            assert!(name.contains("crasher"), "{name}");
            assert!(message.contains("simulated SPE crash"), "{message}");
        }
        other => panic!("expected ProcessPanicked, got {other:?}"),
    }
}

#[test]
fn spe_crash_mid_protocol_does_not_hang() {
    // The SPE posts a write request and dies before consuming the
    // completion; the run must end with the panic diagnostic, not a hang
    // (the kernel tears down all parked processes).
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::default());
    let crasher = SpeProgram::new("mid-crash", 2048, |spe, _, _| {
        spe.write(CpChannel(0), "%d", &[PiValue::Int32(vec![1])])
            .unwrap();
        panic!("died after the write completed");
    });
    let s = cfg.create_spe_process(&crasher, CP_MAIN, 0).unwrap();
    let chan = cfg.channel(s, CP_MAIN).build().unwrap();
    match cfg.run(move |cp| {
        let t = cp.run_spe(s, 0, 0).unwrap();
        // The message itself was delivered before the crash.
        let v = cp.read(chan, "%d").unwrap();
        assert_eq!(v[0], PiValue::Int32(vec![1]));
        cp.wait_spe(t);
    }) {
        Err(SimError::ProcessPanicked { message, .. }) => {
            assert!(message.contains("died after"), "{message}");
        }
        other => panic!("expected ProcessPanicked, got {other:?}"),
    }
}

#[test]
fn spe_misuse_abort_carries_location() {
    // spe_write!-style abort from inside an SPE program names the file.
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::default());
    let bad = SpeProgram::new("bad", 2048, |spe, _, _| {
        // Channel 0 is rank->rank; this SPE is not its writer.
        let err = spe
            .write(CpChannel(0), "%b", &[PiValue::Byte(vec![1])])
            .unwrap_err();
        spe.abort_loc(&err, file!(), line!());
    });
    let other = cfg.create_process("other", 0, |_, _| {}).unwrap();
    let _chan = cfg.channel(CP_MAIN, other).build().unwrap();
    let s = cfg.create_spe_process(&bad, CP_MAIN, 0).unwrap();
    match cfg.run(move |cp| {
        let t = cp.run_spe(s, 0, 0).unwrap();
        cp.wait_spe(t);
    }) {
        Err(SimError::Aborted { message, .. }) => {
            assert!(message.contains("failure_modes.rs"), "{message}");
            assert!(message.contains("not the writer"), "{message}");
        }
        other => panic!("expected abort, got {other:?}"),
    }
}

#[test]
fn orphaned_spe_read_is_reported_as_deadlock() {
    // An SPE reads a channel nobody ever writes: the simulator's deadlock
    // report must include the SPE's blocking reason.
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::default());
    let orphan = SpeProgram::new("orphan", 2048, |spe, _, _| {
        let _ = spe.read(CpChannel(0), "%d").unwrap();
    });
    let s = cfg.create_spe_process(&orphan, CP_MAIN, 0).unwrap();
    let _chan = cfg.channel(CP_MAIN, s).build().unwrap();
    match cfg.run(move |cp| {
        let t = cp.run_spe(s, 0, 0).unwrap();
        cp.wait_spe(t); // main waits forever for the orphan
    }) {
        Err(SimError::Deadlock { blocked, .. }) => {
            assert!(
                blocked
                    .iter()
                    .any(|(_, n, r)| n.contains("orphan") && r.contains("mbox_in")),
                "{blocked:?}"
            );
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}
