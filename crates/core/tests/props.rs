//! Property tests over whole CellPilot applications: random worker
//! placements, payload shapes, and datatypes, round-tripped through the
//! full stack (rank → Co-Pilot → SPE local store → Co-Pilot → rank) and
//! verified byte-for-byte.

use cellpilot::{CellPilotConfig, CellPilotOpts, CpChannel, CpProcess, SpeProgram, CP_MAIN};
use cp_mpisim::LongDouble;
use cp_pilot::PiValue;
use cp_simnet::ClusterSpec;
use proptest::prelude::*;

/// A worker spec: which Cell node hosts it (0 or 1) and the payload its
/// echo round trips.
#[derive(Debug, Clone)]
struct WorkerSpec {
    remote: bool,
    payload: PiValue,
}

fn arb_payload() -> impl Strategy<Value = PiValue> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 1..200).prop_map(PiValue::Byte),
        proptest::collection::vec(any::<i32>(), 1..100).prop_map(PiValue::Int32),
        proptest::collection::vec(any::<i64>(), 1..60).prop_map(PiValue::Int64),
        proptest::collection::vec(-1.0e12f64..1.0e12, 1..60)
            .prop_map(|v| { PiValue::LongDouble(v.into_iter().map(LongDouble).collect()) }),
    ]
}

fn fmt_of(v: &PiValue) -> String {
    let letter = match v {
        PiValue::Byte(_) => "b",
        PiValue::Int32(_) => "d",
        PiValue::Int64(_) => "ld",
        PiValue::LongDouble(_) => "Lf",
        _ => unreachable!("strategy limits variants"),
    };
    format!("%{}{}", v.len(), letter)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any mix of local/remote echo workers and payloads, every value
    /// round trips intact through the full stack.
    #[test]
    fn random_echo_farms_round_trip(
        specs in proptest::collection::vec(
            (any::<bool>(), arb_payload()).prop_map(|(remote, payload)| WorkerSpec {
                remote,
                payload,
            }),
            1..6,
        )
    ) {
        let spec = ClusterSpec::two_cells_one_xeon();
        let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::default());
        let host = cfg
            .create_process("host", 0, |cp, _| {
                let mut ts = Vec::new();
                for p in 0..cp.process_count() {
                    if let Ok(t) = cp.run_spe(CpProcess(p), 0, 0) {
                        ts.push(t);
                    }
                }
                for t in ts {
                    cp.wait_spe(t);
                }
            })
            .unwrap();
        let fmts: Vec<String> = specs.iter().map(|s| fmt_of(&s.payload)).collect();
        let fmts2 = fmts.clone();
        let echo = SpeProgram::new("echo", 2048, move |spe, _, _| {
            let w = spe.index() as usize;
            let vals = spe.read(CpChannel(2 * w), &fmts2[w]).unwrap();
            spe.write(CpChannel(2 * w + 1), &fmts2[w], &vals).unwrap();
        });
        for (w, s) in specs.iter().enumerate() {
            let parent = if s.remote { host } else { CP_MAIN };
            let sp = cfg.create_spe_process(&echo, parent, w as i32).unwrap();
            let task = cfg.channel(CP_MAIN, sp).build().unwrap();
            let result = cfg.channel(sp, CP_MAIN).build().unwrap();
            prop_assert_eq!((task.0, result.0), (2 * w, 2 * w + 1));
        }
        let specs2 = specs.clone();
        cfg.run(move |cp| {
            let mut ts = Vec::new();
            for p in 0..cp.process_count() {
                if let Ok(t) = cp.run_spe(CpProcess(p), 0, 0) {
                    ts.push(t);
                }
            }
            for (w, s) in specs2.iter().enumerate() {
                cp.write(CpChannel(2 * w), &fmts[w], std::slice::from_ref(&s.payload))
                    .unwrap();
            }
            for (w, s) in specs2.iter().enumerate() {
                let vals = cp.read(CpChannel(2 * w + 1), &fmts[w]).unwrap();
                assert_eq!(vals[0], s.payload, "worker {w}");
            }
            for t in ts {
                cp.wait_spe(t);
            }
        })
        .unwrap();
    }

    /// The same application run twice finishes at the identical virtual
    /// instant — full-stack determinism under arbitrary configurations.
    #[test]
    fn random_farms_are_deterministic(
        n_workers in 1usize..5,
        bytes in 1usize..500,
        remote in any::<bool>(),
    ) {
        let run_once = || {
            let spec = ClusterSpec::two_cells_one_xeon();
            let mut cfg =
                CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::default());
            let host = cfg
                .create_process("host", 0, |cp, _| {
                    let mut ts = Vec::new();
                    for p in 0..cp.process_count() {
                        if let Ok(t) = cp.run_spe(CpProcess(p), 0, 0) {
                            ts.push(t);
                        }
                    }
                    for t in ts {
                        cp.wait_spe(t);
                    }
                })
                .unwrap();
            let fmt = format!("%{bytes}b");
            let fmt2 = fmt.clone();
            let echo = SpeProgram::new("echo", 2048, move |spe, _, _| {
                let w = spe.index() as usize;
                let vals = spe.read(CpChannel(2 * w), &fmt2).unwrap();
                spe.write(CpChannel(2 * w + 1), &fmt2, &vals).unwrap();
            });
            for w in 0..n_workers {
                let parent = if remote { host } else { CP_MAIN };
                let sp = cfg.create_spe_process(&echo, parent, w as i32).unwrap();
                cfg.channel(CP_MAIN, sp).build().unwrap();
                cfg.channel(sp, CP_MAIN).build().unwrap();
            }
            let report = cfg
                .run(move |cp| {
                    let mut ts = Vec::new();
                    for p in 0..cp.process_count() {
                        if let Ok(t) = cp.run_spe(CpProcess(p), 0, 0) {
                            ts.push(t);
                        }
                    }
                    let data = PiValue::Byte((0..bytes).map(|i| i as u8).collect());
                    for w in 0..n_workers {
                        cp.write(CpChannel(2 * w), &format!("%{bytes}b"), std::slice::from_ref(&data))
                            .unwrap();
                    }
                    for w in 0..n_workers {
                        let _ = cp.read(CpChannel(2 * w + 1), &format!("%{bytes}b")).unwrap();
                    }
                    for t in ts {
                        cp.wait_spe(t);
                    }
                })
                .unwrap();
            (report.end_time, report.processes)
        };
        prop_assert_eq!(run_once(), run_once());
    }
}
