//! Integration tests for the `cp-check` passes wired into the CellPilot
//! runtime: strict-mode pre-run aborts, non-strict `wiring-lint`
//! incidents, and the happens-before DMA race detector staying silent on
//! well-synchronized programs across every channel type.

use cellpilot::{CellPilotConfig, CellPilotOpts, CpChannel, SpeProgram, CP_MAIN};
use cp_des::{IncidentCategory, SimError, SimReport};
use cp_simnet::ClusterSpec;

/// Nine SPE processes on a node with eight SPEs: the one wiring defect
/// the typed configure API cannot reject (CP006).
fn oversubscribed(opts: CellPilotOpts) -> CellPilotConfig {
    let mut cfg = CellPilotConfig::one_rank_per_node(ClusterSpec::two_cells_one_xeon(), opts);
    let prog = SpeProgram::new("idle", 1024, |_, _, _| {});
    for i in 0..9 {
        cfg.create_spe_process(&prog, CP_MAIN, i).unwrap();
    }
    cfg
}

#[test]
fn strict_checks_abort_on_spe_oversubscription() {
    let cfg = oversubscribed(CellPilotOpts::new().with_strict_checks());
    match cfg.run(|_| {}) {
        Err(SimError::Aborted { name, message, .. }) => {
            assert_eq!(name, "cp-check");
            assert!(message.contains("CP006"), "{message}");
            assert!(message.contains("spe(0,8)"), "{message}");
        }
        other => panic!("expected a cp-check abort, got {other:?}"),
    }
}

#[test]
fn non_strict_checks_report_wiring_lint_incidents() {
    // The SPE processes stay dormant (nobody calls run_spe), so the run
    // completes and the defect surfaces as an incident instead.
    let cfg = oversubscribed(CellPilotOpts::new().with_checks());
    let report = cfg.run(|_| {}).unwrap();
    let lints: Vec<_> = report
        .incidents
        .iter()
        .filter(|i| i.category == IncidentCategory::WiringLint)
        .collect();
    assert_eq!(lints.len(), 1, "{:?}", report.incidents);
    assert_eq!(lints[0].process, "main");
    assert!(lints[0].detail.contains("CP006"), "{}", lints[0].detail);
}

#[test]
fn config_check_is_callable_without_running() {
    let cfg = oversubscribed(CellPilotOpts::new());
    let lints = cfg.check();
    assert_eq!(lints.len(), 1);
    assert_eq!(lints[0].code, cellpilot::CheckCode::Cp006);
}

/// An echo chain main → s0a → s0b → s1a → xeon exercising channel types
/// 2, 4, 5 and 3 (every SPE-connected transport, including the type-4
/// `ppe_memcpy` and the type-5 double Co-Pilot relay).
fn echo_chain(opts: CellPilotOpts) -> SimReport {
    let mut cfg = CellPilotConfig::one_rank_per_node(ClusterSpec::two_cells_one_xeon(), opts);
    let data: Vec<i32> = (0..8).collect();
    let pa = SpeProgram::new("sa", 2048, |spe, _, _| {
        let v = spe.read_vec::<i32>(CpChannel(0)).unwrap();
        spe.write_slice(CpChannel(1), &v).unwrap();
    });
    let pb = SpeProgram::new("sb", 2048, |spe, _, _| {
        let v = spe.read_vec::<i32>(CpChannel(1)).unwrap();
        spe.write_slice(CpChannel(2), &v).unwrap();
    });
    let pc = SpeProgram::new("sc", 2048, |spe, _, _| {
        let v = spe.read_vec::<i32>(CpChannel(2)).unwrap();
        spe.write_slice(CpChannel(3), &v).unwrap();
    });
    let w1 = cfg
        .create_process("w1", 0, |cp, _| cp.run_and_wait_my_spes())
        .unwrap();
    let expect = data.clone();
    let _xeon = cfg
        .create_process("xeon", 0, move |cp, _| {
            assert_eq!(cp.read_vec::<i32>(CpChannel(3)).unwrap(), expect);
        })
        .unwrap();
    let s0a = cfg.create_spe_process(&pa, CP_MAIN, 0).unwrap();
    let s0b = cfg.create_spe_process(&pb, CP_MAIN, 1).unwrap();
    let s1a = cfg.create_spe_process(&pc, w1, 2).unwrap();
    cfg.channel(CP_MAIN, s0a).build().unwrap(); // c0: type 2
    cfg.channel(s0a, s0b).build().unwrap(); // c1: type 4
    cfg.channel(s0b, s1a).build().unwrap(); // c2: type 5
    cfg.channel(s1a, _xeon).build().unwrap(); // c3: type 3
    cfg.run(move |cp| {
        let tasks = cp.run_my_spes();
        cp.write_slice(CpChannel(0), &data).unwrap();
        for t in tasks {
            cp.wait_spe(t);
        }
    })
    .unwrap()
}

#[test]
fn checked_clean_run_is_race_free_and_zero_overhead() {
    let plain = echo_chain(CellPilotOpts::new());
    let checked = echo_chain(CellPilotOpts::new().with_strict_checks());
    assert_eq!(
        checked.end_time, plain.end_time,
        "enabling checks must not perturb the schedule"
    );
    assert_eq!(
        checked.incidents,
        Vec::new(),
        "a well-synchronized run must verify clean across all channel types"
    );
}

/// CP013 flow-control lints surface through [`CellPilotConfig::check`]:
/// a non-Block overload policy on an unbounded channel is inert (always
/// flagged), and strict mode adds the unbounded-channel advisory once any
/// channel declares a capacity. Both are warnings — even a strict run
/// completes, because backpressure misconfiguration is advice, not an
/// abort.
#[test]
fn flow_lints_surface_through_config_check() {
    use cellpilot::OverloadPolicy;
    let mut cfg = CellPilotConfig::one_rank_per_node(
        ClusterSpec::two_cells_one_xeon(),
        CellPilotOpts::new().with_strict_checks(),
    );
    let peer = cfg
        .create_process("peer", 0, |cp, _| {
            assert_eq!(cp.read_vec::<i32>(CpChannel(0)).unwrap(), vec![1]);
            assert_eq!(cp.read_vec::<i32>(CpChannel(1)).unwrap(), vec![2]);
        })
        .unwrap();
    // c0: a Shed policy with no capacity — the policy can never engage.
    cfg.channel(CP_MAIN, peer)
        .overload_policy(OverloadPolicy::Shed)
        .build()
        .unwrap();
    // c1: bounded — its presence triggers the strict advisory on c0.
    cfg.channel(CP_MAIN, peer).capacity(4).build().unwrap();

    let lints = cfg.check();
    let cp13: Vec<_> = lints
        .iter()
        .filter(|d| d.code == cellpilot::CheckCode::Cp013)
        .collect();
    assert_eq!(cp13.len(), 2, "{lints:?}");
    assert!(
        cp13.iter().all(|d| !d.is_error()),
        "CP013 is advisory: it must never abort a strict run"
    );
    assert!(cp13.iter().any(|d| d.message.contains("inert")), "{cp13:?}");
    assert!(
        cp13.iter().any(|d| d.message.contains("unbounded")),
        "{cp13:?}"
    );

    // And indeed: the strict run completes despite both warnings.
    cfg.run(move |cp| {
        cp.write_slice(CpChannel(0), &[1i32]).unwrap();
        cp.write_slice(CpChannel(1), &[2i32]).unwrap();
    })
    .expect("warnings never abort, even under strict checks");
}

/// Two ranks exchanging two messages each over mutually Block-bounded
/// channels of capacity `cap`, under a virtual-time ceiling. At capacity
/// 1 the wiring is exactly the credit cycle CP201 describes; at capacity
/// 2 every write is accepted and the run drains.
fn credit_ring(cap: usize, limit: cp_des::SimDuration) -> Result<SimReport, SimError> {
    let opts = CellPilotOpts::new().with_time_limit(limit);
    let mut cfg = CellPilotConfig::one_rank_per_node(ClusterSpec::two_cells_one_xeon(), opts);
    let peer = cfg
        .create_process("peer", 0, |cp, _| {
            cp.write_slice(CpChannel(1), &[1i32]).unwrap();
            cp.write_slice(CpChannel(1), &[2i32]).unwrap();
            cp.read_vec::<i32>(CpChannel(0)).unwrap();
            cp.read_vec::<i32>(CpChannel(0)).unwrap();
        })
        .unwrap();
    cfg.channel(CP_MAIN, peer).capacity(cap).build().unwrap(); // c0
    cfg.channel(peer, CP_MAIN).capacity(cap).build().unwrap(); // c1
    if cap == 1 {
        let lints = cfg.check();
        assert!(
            lints.iter().any(|d| d.code == cellpilot::CheckCode::Cp201),
            "the analyzer must flag the credit cycle before the run proves it: {lints:?}"
        );
    }
    cfg.run(move |cp| {
        cp.write_slice(CpChannel(0), &[1i32]).unwrap();
        cp.write_slice(CpChannel(0), &[2i32]).unwrap();
        cp.read_vec::<i32>(CpChannel(1)).unwrap();
        cp.read_vec::<i32>(CpChannel(1)).unwrap();
    })
}

/// The companion to CP201: the exact wiring the analyzer flags — a cycle
/// of capacity-1 Block channels with both writers two messages deep —
/// really does wedge (the virtual-time ceiling fires), and the repair the
/// diagnostic proposes (capacity 1 → 2) really does complete under the
/// same ceiling.
#[test]
fn flagged_credit_cycle_stalls_and_the_proposed_repair_drains() {
    let limit = cp_des::SimDuration::from_millis(10);
    match credit_ring(1, limit) {
        Err(SimError::TimeLimitExceeded { .. }) => {}
        other => panic!("expected the credit cycle to stall out the clock, got {other:?}"),
    }
    credit_ring(2, limit).expect("the capacity-bumped twin must drain well inside the limit");
}

/// Per-code lint levels reshape what `check()` returns and what strict
/// mode aborts on: `Allow` drops a finding entirely, `Warn` demotes it
/// below the abort threshold.
#[test]
fn lint_levels_allow_and_warn_defuse_strict_aborts() {
    use cellpilot::{CheckCode, LintConfig, LintLevel};
    let allow = LintConfig::new().level(CheckCode::Cp006, LintLevel::Allow);
    let cfg = oversubscribed(
        CellPilotOpts::new()
            .with_strict_checks()
            .with_lint_config(allow),
    );
    assert_eq!(cfg.check(), Vec::new());
    cfg.run(|_| {})
        .expect("an Allow'ed finding must not abort a strict run");

    let warn = LintConfig::new().level(CheckCode::Cp006, LintLevel::Warn);
    let cfg = oversubscribed(
        CellPilotOpts::new()
            .with_strict_checks()
            .with_lint_config(warn),
    );
    let lints = cfg.check();
    assert!(
        !lints.is_empty() && lints.iter().all(|d| !d.is_error()),
        "{lints:?}"
    );
    cfg.run(|_| {})
        .expect("a Warn'ed finding must not abort a strict run");
}

/// `Deny` goes the other way: an advisory-tier code escalates to an
/// error, and a strict run that sailed through before now aborts.
#[test]
fn deny_escalates_advisories_into_strict_aborts() {
    use cellpilot::{CheckCode, LintConfig, LintLevel, OverloadPolicy};
    let deny = LintConfig::new().level(CheckCode::Cp013, LintLevel::Deny);
    let mut cfg = CellPilotConfig::one_rank_per_node(
        ClusterSpec::two_cells_one_xeon(),
        CellPilotOpts::new()
            .with_strict_checks()
            .with_lint_config(deny),
    );
    let peer = cfg.create_process("peer", 0, |_, _| {}).unwrap();
    // The inert-policy warning from `flow_lints_surface_through_config_check`,
    // now load-bearing.
    cfg.channel(CP_MAIN, peer)
        .overload_policy(OverloadPolicy::Shed)
        .build()
        .unwrap();
    let lints = cfg.check();
    assert!(
        lints
            .iter()
            .any(|d| d.code == CheckCode::Cp013 && d.is_error()),
        "{lints:?}"
    );
    match cfg.run(|_| {}) {
        Err(SimError::Aborted { name, message, .. }) => {
            assert_eq!(name, "cp-check");
            assert!(message.contains("CP013"), "{message}");
        }
        other => panic!("expected a cp-check abort under Deny, got {other:?}"),
    }
}

/// Endpoint-scoped suppressions and a committed baseline both exempt a
/// finding from the strict gate without touching its code's level.
#[test]
fn suppressions_and_baselines_exempt_findings() {
    use cellpilot::{CheckCode, LintConfig};
    let sup = LintConfig::new().suppress(CheckCode::Cp006, "spe(0,8)");
    let cfg = oversubscribed(
        CellPilotOpts::new()
            .with_strict_checks()
            .with_lint_config(sup),
    );
    assert_eq!(cfg.check(), Vec::new());
    cfg.run(|_| {})
        .expect("a suppressed finding must not abort a strict run");

    // Capture today's debt from an unconfigured twin, then gate on it.
    let baseline = LintConfig::baseline_text(&oversubscribed(CellPilotOpts::new()).check());
    let cfg = oversubscribed(
        CellPilotOpts::new()
            .with_strict_checks()
            .with_lint_config(LintConfig::new().with_baseline(&baseline)),
    );
    assert_eq!(cfg.check(), Vec::new());
    cfg.run(|_| {})
        .expect("a baselined finding must not abort a strict run");
}

/// The CP203/CP204 analyzer codes surface through the typed builder
/// hints: a small `max_payload` promise on a non-eager SPE channel draws
/// the advice tier, and an eager threshold on a one-sided channel is an
/// error the builder itself cannot reject.
#[test]
fn analyzer_codes_surface_through_builder_hints() {
    use cellpilot::{CheckCode, Severity};
    let mut cfg =
        CellPilotConfig::one_rank_per_node(ClusterSpec::two_cells_one_xeon(), CellPilotOpts::new());
    let prog = SpeProgram::new("idle", 1024, |_, _, _| {});
    let s0 = cfg.create_spe_process(&prog, CP_MAIN, 0).unwrap();
    let s1 = cfg.create_spe_process(&prog, CP_MAIN, 1).unwrap();
    cfg.channel(CP_MAIN, s0).max_payload(8).build().unwrap();
    cfg.channel(CP_MAIN, s1)
        .one_sided()
        .eager_threshold(8)
        .build()
        .unwrap();
    let lints = cfg.check();
    let cp203 = lints
        .iter()
        .find(|d| d.code == CheckCode::Cp203)
        .expect("the payload promise must draw CP203");
    assert_eq!(cp203.severity, Severity::Advice);
    let cp204 = lints
        .iter()
        .find(|d| d.code == CheckCode::Cp204)
        .expect("eager one-sided must draw CP204");
    assert!(cp204.is_error());
}

/// Without strict mode (and with nothing bounded) flow lints stay silent:
/// a plain unbounded wiring is exactly as clean as before flow control
/// existed.
#[test]
fn unbounded_wiring_stays_cp013_silent() {
    let mut cfg =
        CellPilotConfig::one_rank_per_node(ClusterSpec::two_cells_one_xeon(), CellPilotOpts::new());
    let peer = cfg
        .create_process("peer", 0, |cp, _| {
            assert_eq!(cp.read_vec::<i32>(CpChannel(0)).unwrap(), vec![7]);
        })
        .unwrap();
    cfg.channel(CP_MAIN, peer).build().unwrap();
    assert_eq!(cfg.check(), Vec::new());
    cfg.run(move |cp| cp.write_slice(CpChannel(0), &[7i32]).unwrap())
        .unwrap();
}
