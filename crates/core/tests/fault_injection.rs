//! Scripted fault injection: SPE crashes, Co-Pilot stalls and rank deaths
//! must degrade gracefully — only channels touching the lost process fail,
//! the run completes, and every degradation shows up as a structured
//! incident in the [`cp_des::SimReport`].

use cellpilot::trace::{TraceEvent, TraceOp};
use cellpilot::{
    CellPilotConfig, CellPilotOpts, CpChannel, CpError, SpeProgram, SupervisionPolicy, CP_MAIN,
};
use cp_des::{IncidentCategory, SimDuration, SimReport, SimTime};
use cp_simnet::{ClusterSpec, FaultPlan, NodeId};
use std::sync::{Arc, Mutex};

/// Type-4 blast radius: a crashed SPE writer fails its own channel with
/// `PeerLost`, while an unrelated same-node SPE pair keeps working, and the
/// run still finishes cleanly.
#[test]
fn type4_spe_crash_fails_only_touching_channels() {
    let spec = ClusterSpec::two_cells_one_xeon();
    // Process ids are assigned in creation order: main = 0, then the four
    // SPE processes below. The victim is the first one created (id 1).
    let plan = Arc::new(FaultPlan::new().crash_spe(1, SimTime::ZERO));
    let opts = CellPilotOpts::new().with_faults(plan);
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, opts);

    let dying = SpeProgram::new("dying", 2048, |spe, _, _| {
        // The scripted crash fires at this first channel operation; the
        // line below never completes.
        let _ = spe.write_slice(CpChannel(0), &[1i32, 2, 3]);
        unreachable!("the fault plan kills this SPE at its first write");
    });
    let bereft = SpeProgram::new("bereft", 2048, |spe, _, _| {
        let err = spe.read_vec::<i32>(CpChannel(0)).unwrap_err();
        match err {
            CpError::PeerLost { channel, peer } => {
                assert_eq!(channel, 0);
                assert!(peer.starts_with("dying"), "{peer}");
            }
            other => panic!("expected PeerLost, got {other}"),
        }
    });
    let healthy_w = SpeProgram::new("healthy_w", 2048, |spe, _, _| {
        spe.write_slice(CpChannel(1), &[7.5f64, -1.25]).unwrap();
    });
    let healthy_r = SpeProgram::new("healthy_r", 2048, |spe, _, _| {
        let v = spe.read_vec::<f64>(CpChannel(1)).unwrap();
        assert_eq!(v, vec![7.5, -1.25]);
    });

    let victim = cfg.create_spe_process(&dying, CP_MAIN, 0).unwrap();
    assert_eq!(victim.0, 1, "the fault plan targets process id 1");
    let reader = cfg.create_spe_process(&bereft, CP_MAIN, 1).unwrap();
    let w2 = cfg.create_spe_process(&healthy_w, CP_MAIN, 2).unwrap();
    let r2 = cfg.create_spe_process(&healthy_r, CP_MAIN, 3).unwrap();
    let broken = cfg.channel(victim, reader).build().unwrap();
    assert_eq!(broken.0, 0);
    let _healthy = cfg.channel(w2, r2).build().unwrap();

    let report = cfg
        .run(move |cp| {
            let tasks: Vec<_> = [victim, reader, w2, r2]
                .iter()
                .map(|&p| cp.run_spe(p, 0, 0).unwrap())
                .collect();
            for t in tasks {
                cp.wait_spe(t);
            }
        })
        .expect("a scripted SPE crash degrades the run, it does not sink it");

    let cats: Vec<IncidentCategory> = report.incidents.iter().map(|i| i.category).collect();
    assert!(
        cats.contains(&IncidentCategory::SpeCrash),
        "incidents: {:?}",
        report.incidents
    );
    assert!(
        cats.contains(&IncidentCategory::PeerLost),
        "incidents: {:?}",
        report.incidents
    );
}

/// Type-5 blast radius: the crash of a writer SPE on node 0 is seen by its
/// reader SPE on node 1 (via the reader's own Co-Pilot consulting the
/// global plan), while a healthy type-5 pair between the same two nodes
/// still delivers.
#[test]
fn type5_spe_crash_blast_radius_spans_nodes() {
    let spec = ClusterSpec::two_cells_one_xeon();
    // main = 0, recvFunc = 1, then SPEs: victim = 2.
    let plan = Arc::new(FaultPlan::new().crash_spe(2, SimTime::ZERO));
    let opts = CellPilotOpts::new().with_faults(plan);
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, opts);

    let dying = SpeProgram::new("dying", 2048, |spe, _, _| {
        let _ = spe.write_slice(CpChannel(0), &[9i32]);
        unreachable!("the fault plan kills this SPE at its first write");
    });
    let bereft = SpeProgram::new("bereft", 2048, |spe, _, _| {
        match spe.read_vec::<i32>(CpChannel(0)).unwrap_err() {
            CpError::PeerLost { channel: 0, peer } => {
                assert!(peer.starts_with("dying"), "{peer}")
            }
            other => panic!("expected PeerLost on channel 0, got {other}"),
        }
    });
    let healthy_w = SpeProgram::new("healthy_w", 2048, |spe, _, _| {
        spe.write_slice(CpChannel(1), &[42i64, -42]).unwrap();
    });
    let healthy_r = SpeProgram::new("healthy_r", 2048, |spe, _, _| {
        assert_eq!(spe.read_vec::<i64>(CpChannel(1)).unwrap(), vec![42, -42]);
    });

    let recv_ppe = cfg
        .create_process("recvFunc", 0, |cp, _| {
            // Its SPE children are processes 3 (bereft) and 5 (healthy_r).
            cp.run_and_wait_my_spes();
        })
        .unwrap();
    let victim = cfg.create_spe_process(&dying, CP_MAIN, 0).unwrap();
    assert_eq!(victim.0, 2, "the fault plan targets process id 2");
    let reader = cfg.create_spe_process(&bereft, recv_ppe, 0).unwrap();
    let w2 = cfg.create_spe_process(&healthy_w, CP_MAIN, 1).unwrap();
    let r2 = cfg.create_spe_process(&healthy_r, recv_ppe, 1).unwrap();
    let broken = cfg.channel(victim, reader).build().unwrap();
    assert_eq!(broken.0, 0);
    let _healthy = cfg.channel(w2, r2).build().unwrap();

    let report = cfg
        .run(move |cp| {
            cp.run_and_wait_my_spes();
        })
        .expect("the crash fails two channels' endpoints, not the run");

    let cats: Vec<IncidentCategory> = report.incidents.iter().map(|i| i.category).collect();
    assert!(
        cats.contains(&IncidentCategory::SpeCrash),
        "incidents: {:?}",
        report.incidents
    );
    assert!(
        cats.contains(&IncidentCategory::PeerLost),
        "incidents: {:?}",
        report.incidents
    );
}

/// A stalled Co-Pilot delays every channel it services but loses nothing:
/// the same workload finishes later than a healthy run, delivers the same
/// data, and the stall is reported as an incident.
#[test]
fn copilot_stall_delays_but_preserves_delivery() {
    let build = |plan: Option<Arc<FaultPlan>>| {
        let spec = ClusterSpec::two_cells_one_xeon();
        let mut opts = CellPilotOpts::new();
        if let Some(p) = plan {
            opts = opts.with_faults(p);
        }
        let mut cfg = CellPilotConfig::one_rank_per_node(spec, opts);
        let writer = SpeProgram::new("writer", 2048, |spe, _, _| {
            spe.write_slice(CpChannel(0), &[1i32, 2, 3, 4]).unwrap();
        });
        let s = cfg.create_spe_process(&writer, CP_MAIN, 0).unwrap();
        let chan = cfg.channel(s, CP_MAIN).build().unwrap();
        cfg.run(move |cp| {
            let t = cp.run_spe(s, 0, 0).unwrap();
            assert_eq!(cp.read_vec::<i32>(chan).unwrap(), vec![1, 2, 3, 4]);
            cp.wait_spe(t);
        })
    };

    let healthy = build(None).unwrap();
    let stall = Arc::new(FaultPlan::new().stall_copilot(
        NodeId(0),
        SimTime::ZERO,
        SimDuration::from_millis(50),
    ));
    let stalled = build(Some(stall)).unwrap();

    assert!(
        stalled.end_time >= healthy.end_time + SimDuration::from_millis(50),
        "stall must show up in the virtual clock: {} vs {}",
        stalled.end_time,
        healthy.end_time
    );
    assert!(
        stalled
            .incidents
            .iter()
            .any(|i| i.category == IncidentCategory::CopilotStall),
        "incidents: {:?}",
        stalled.incidents
    );
    assert!(healthy.incidents.is_empty(), "{:?}", healthy.incidents);
}

/// The whole point of a scripted [`FaultPlan`]: the same plan replayed on
/// the same configuration yields a bit-identical execution — same trace,
/// same incidents, same end time.
#[test]
fn fault_plan_replays_identically() {
    let run_once = || {
        let spec = ClusterSpec::two_cells_one_xeon();
        let plan = Arc::new(
            FaultPlan::new()
                .delay_link(
                    NodeId(0),
                    NodeId(1),
                    SimTime::ZERO,
                    SimTime(u64::MAX),
                    SimDuration::from_micros(700),
                )
                .crash_spe(4, SimTime::ZERO)
                .stall_copilot(NodeId(1), SimTime::ZERO, SimDuration::from_millis(5)),
        );
        let opts = CellPilotOpts::new().with_trace().with_faults(plan);
        let mut cfg = CellPilotConfig::one_rank_per_node(spec, opts);
        let writer = SpeProgram::new("writer", 2048, |spe, _, _| {
            spe.write_slice(CpChannel(0), &[5i32; 64]).unwrap();
        });
        let reader = SpeProgram::new("reader", 2048, |spe, _, _| {
            assert_eq!(spe.read_vec::<i32>(CpChannel(0)).unwrap(), vec![5i32; 64]);
        });
        let doomed = SpeProgram::new("doomed", 2048, |spe, _, _| {
            let _ = spe.write_slice(CpChannel(1), &[0u8]);
            unreachable!("scripted crash");
        });
        let bereft = SpeProgram::new("bereft", 2048, |spe, _, _| {
            assert!(matches!(
                spe.read_vec::<u8>(CpChannel(1)).unwrap_err(),
                CpError::PeerLost { channel: 1, .. }
            ));
        });
        let recv_ppe = cfg
            .create_process("recvFunc", 0, |cp, _| cp.run_and_wait_my_spes())
            .unwrap();
        let w = cfg.create_spe_process(&writer, CP_MAIN, 0).unwrap();
        let r = cfg.create_spe_process(&reader, recv_ppe, 0).unwrap();
        let d = cfg.create_spe_process(&doomed, CP_MAIN, 1).unwrap();
        assert_eq!(d.0, 4, "the fault plan targets process id 4");
        let b = cfg.create_spe_process(&bereft, recv_ppe, 1).unwrap();
        cfg.channel(w, r).build().unwrap();
        cfg.channel(d, b).build().unwrap();
        cfg.run_traced(move |cp| cp.run_and_wait_my_spes()).unwrap()
    };

    let (report_a, trace_a) = run_once();
    let (report_b, trace_b) = run_once();
    assert_eq!(trace_a, trace_b, "fault replay must be deterministic");
    assert_eq!(report_a.incidents, report_b.incidents);
    assert_eq!(report_a.end_time, report_b.end_time);
    assert!(!trace_a.is_empty());
    assert!(report_a
        .incidents
        .iter()
        .any(|i| i.category == IncidentCategory::SpeCrash));
    assert!(report_a
        .incidents
        .iter()
        .any(|i| i.category == IncidentCategory::CopilotStall));
}

/// Recovery harness: a 5-round SPE ↔ main ping-pong whose sequence of
/// rank-side reads is the "application output" recovery is judged against.
/// Returns the report, the trace, and that output. The SPE writer is
/// process id 1 and writes channel 0; main acks on channel 1.
fn ping_pong(
    plan: Option<Arc<FaultPlan>>,
    supervise: bool,
) -> (SimReport, Vec<TraceEvent>, Vec<Vec<i32>>) {
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut opts = CellPilotOpts::new().with_trace();
    if let Some(p) = plan {
        opts = opts.with_faults(p);
    }
    if supervise {
        opts = opts.with_supervision(SupervisionPolicy::default());
    }
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, opts);
    let writer = SpeProgram::new("writer", 2048, |spe, _, _| {
        for i in 0..5i32 {
            spe.write_slice(CpChannel(0), &[i, i * i, i + 100]).unwrap();
            // A restarted attempt re-yields this ack from its journal
            // instead of re-reading the wire, so the assertion must hold
            // across crashes too.
            assert_eq!(spe.read_vec::<i32>(CpChannel(1)).unwrap(), vec![i]);
        }
    });
    let s = cfg.create_spe_process(&writer, CP_MAIN, 0).unwrap();
    assert_eq!(s.0, 1, "fault plans in these tests target process id 1");
    let data = cfg.channel(s, CP_MAIN).build().unwrap();
    let ack = cfg.channel(CP_MAIN, s).build().unwrap();
    let collected = Arc::new(Mutex::new(Vec::new()));
    let sink = collected.clone();
    let (report, trace) = cfg
        .run_traced(move |cp| {
            let t = cp.run_spe(s, 0, 0).unwrap();
            for i in 0..5i32 {
                let v = cp.read_vec::<i32>(data).unwrap();
                sink.lock().unwrap().push(v);
                cp.write_slice(ack, &[i]).unwrap();
            }
            cp.wait_spe(t);
        })
        .expect("recovery keeps the run alive");
    let out = std::mem::take(&mut *collected.lock().unwrap());
    (report, trace, out)
}

/// The virtual time main completed its third read in a trace — a point
/// guaranteed to be mid-stream, with acknowledged operations behind the
/// writer and live ones ahead of it.
fn third_read_at(trace: &[TraceEvent]) -> SimTime {
    trace
        .iter()
        .filter(|e| e.op == TraceOp::RankRead && e.process == "main")
        .nth(2)
        .expect("the golden run makes five rank reads")
        .at
}

/// The tentpole recovery guarantee, SPE side: a supervised SPE crashed
/// mid-stream is restarted from its op journal, and the application output
/// is byte-identical to the fault-free golden run — peers observe every
/// message exactly once, no `PeerLost` anywhere.
#[test]
fn supervised_spe_crash_output_matches_fault_free_run() {
    let (golden_report, golden_trace, golden_out) = ping_pong(None, true);
    assert!(
        golden_report.incidents.is_empty(),
        "{:?}",
        golden_report.incidents
    );
    assert_eq!(golden_out.len(), 5);

    let plan = Arc::new(FaultPlan::new().crash_spe(1, third_read_at(&golden_trace)));
    let (report, _trace, out) = ping_pong(Some(plan), true);
    assert_eq!(out, golden_out, "supervised recovery must be lossless");

    let cats: Vec<IncidentCategory> = report.incidents.iter().map(|i| i.category).collect();
    assert!(cats.contains(&IncidentCategory::SpeCrash), "{cats:?}");
    assert!(cats.contains(&IncidentCategory::SpeRestart), "{cats:?}");
    assert!(!cats.contains(&IncidentCategory::PeerLost), "{cats:?}");
    assert!(!cats.contains(&IncidentCategory::SpeAbandoned), "{cats:?}");
}

/// The tentpole recovery guarantee, Co-Pilot side: killing a node's
/// Co-Pilot mid-stream hands its proxy tables, queued mailbox traffic and
/// dedup state to the standby, and the application output is byte-identical
/// to the fault-free golden run.
#[test]
fn copilot_failover_output_matches_fault_free_run() {
    let (golden_report, golden_trace, golden_out) = ping_pong(None, false);
    assert!(
        golden_report.incidents.is_empty(),
        "{:?}",
        golden_report.incidents
    );

    let plan = Arc::new(FaultPlan::new().kill_copilot(NodeId(0), third_read_at(&golden_trace)));
    let (report, _trace, out) = ping_pong(Some(plan), false);
    assert_eq!(out, golden_out, "failover must be application-invisible");

    let cats: Vec<IncidentCategory> = report.incidents.iter().map(|i| i.category).collect();
    assert!(cats.contains(&IncidentCategory::CopilotDeath), "{cats:?}");
    assert!(
        cats.contains(&IncidentCategory::CopilotFailover),
        "{cats:?}"
    );
    assert!(!cats.contains(&IncidentCategory::PeerLost), "{cats:?}");
}

/// Supervision is a budget, not a blank cheque: enough stacked crashes
/// exhaust `max_restarts`, the SPE is abandoned with an incident, and its
/// channels degrade to the unsupervised `PeerLost` behaviour.
#[test]
fn restart_exhaustion_abandons_spe_and_degrades_to_peer_lost() {
    let spec = ClusterSpec::two_cells_one_xeon();
    // Three stacked crashes: the initial attempt and both permitted
    // restarts (`max_restarts: 2`) each die at their first write.
    let plan = Arc::new(
        FaultPlan::new()
            .crash_spe(1, SimTime::ZERO)
            .crash_spe(1, SimTime::ZERO)
            .crash_spe(1, SimTime::ZERO),
    );
    let opts = CellPilotOpts::new()
        .with_faults(plan)
        .with_supervision(SupervisionPolicy::default())
        .with_channel_timeout(SimDuration::from_millis(5));
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, opts);
    let doomed = SpeProgram::new("doomed", 2048, |spe, _, _| {
        let _ = spe.write_slice(CpChannel(0), &[1i32]);
        unreachable!("every attempt dies at its first write");
    });
    let s = cfg.create_spe_process(&doomed, CP_MAIN, 0).unwrap();
    let chan = cfg.channel(s, CP_MAIN).build().unwrap();
    let report = cfg
        .run(move |cp| {
            let t = cp.run_spe(s, 0, 0).unwrap();
            match cp.read_vec::<i32>(chan) {
                Err(CpError::PeerLost { channel: 0, peer }) => {
                    assert!(peer.starts_with("doomed"), "{peer}")
                }
                other => panic!("expected PeerLost after abandonment, got {other:?}"),
            }
            cp.wait_spe(t);
        })
        .expect("an abandoned SPE degrades the run, it does not sink it");

    let cats: Vec<IncidentCategory> = report.incidents.iter().map(|i| i.category).collect();
    let restarts = cats
        .iter()
        .filter(|&&c| c == IncidentCategory::SpeRestart)
        .count();
    assert_eq!(restarts, 2, "incidents: {:?}", report.incidents);
    assert!(cats.contains(&IncidentCategory::SpeAbandoned), "{cats:?}");
    assert!(cats.contains(&IncidentCategory::PeerLost), "{cats:?}");
}

/// Error-matrix: an injected fault and a saturated channel, in the same
/// run, classify under *different* [`ErrorKind`]s — the crashed peer's
/// read fails as `Fault`, the shed write as `Backpressure` — and the
/// backpressure error chains its structured [`OverloadError`] cause
/// through `source()`, so callers can introspect the overload (channel,
/// capacity, policy) without string-matching. Both degradations also land
/// in the incident report under their own categories.
#[test]
fn backpressure_and_faults_classify_distinctly() {
    use cellpilot::{ErrorKind, OverloadError, OverloadPolicy};
    use std::error::Error as _;

    let spec = ClusterSpec::two_cells_one_xeon();
    let plan = Arc::new(FaultPlan::new().crash_spe(1, SimTime::ZERO));
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::new().with_faults(plan));

    let dying = SpeProgram::new("dying", 2048, |spe, _, _| {
        let _ = spe.write_slice(CpChannel(0), &[1i32]);
        unreachable!("the fault plan kills this SPE at its first write");
    });
    let victim = cfg.create_spe_process(&dying, CP_MAIN, 0).unwrap();
    assert_eq!(victim.0, 1, "the fault plan targets process id 1");

    // Fault leg: the bereft reader's channel fails with PeerLost — the
    // `Fault` row of the matrix.
    let bereft = SpeProgram::new("bereft", 2048, |spe, _, _| {
        let fault = spe.read_vec::<i32>(CpChannel(0)).unwrap_err();
        assert_eq!(fault.kind(), ErrorKind::Fault, "got: {fault}");
    });
    let reader = cfg.create_spe_process(&bereft, CP_MAIN, 1).unwrap();

    // Parked sink: it reads its go-signal only after main's burst is over,
    // so nothing drains the bounded channel while main saturates it and
    // the shed count is exact.
    let sink = SpeProgram::new("sink", 2048, |spe, _, _| {
        let n = spe.read_vec::<i32>(CpChannel(2)).unwrap()[0] as usize;
        for _ in 0..n {
            spe.read_vec::<i32>(CpChannel(1)).unwrap();
        }
    });
    let parked = cfg.create_spe_process(&sink, CP_MAIN, 2).unwrap();

    let broken = cfg.channel(victim, reader).build().unwrap();
    assert_eq!(broken.0, 0);
    let bounded = cfg
        .channel(CP_MAIN, parked)
        .capacity(2)
        .overload_policy(OverloadPolicy::Shed)
        .build()
        .unwrap();
    assert_eq!(bounded.0, 1);
    let gate = cfg.channel(CP_MAIN, parked).build().unwrap();
    assert_eq!(gate.0, 2);

    let report = cfg
        .run(move |cp| {
            let t_victim = cp.run_spe(victim, 0, 0).unwrap();
            let t_reader = cp.run_spe(reader, 0, 0).unwrap();
            let t_sink = cp.run_spe(parked, 0, 0).unwrap();

            // Backpressure leg: burst 6 into capacity 2 with the reader
            // parked — exactly 4 writes shed.
            let mut accepted = 0i32;
            let mut shed_errs = Vec::new();
            for i in 0..6i32 {
                match cp.write_slice(bounded, &[i]) {
                    Ok(()) => accepted += 1,
                    Err(e) => shed_errs.push(e),
                }
            }
            assert_eq!(accepted, 2);
            assert_eq!(shed_errs.len(), 4);
            for shed in &shed_errs {
                assert_eq!(shed.kind(), ErrorKind::Backpressure, "got: {shed}");
                assert_ne!(
                    shed.kind(),
                    ErrorKind::Fault,
                    "the matrix must keep overload distinct from faults"
                );
                let cause = shed
                    .source()
                    .expect("Backpressure chains its cause through source()")
                    .downcast_ref::<OverloadError>()
                    .expect("the cause is the structured OverloadError");
                assert_eq!(cause.channel, bounded.0);
                assert_eq!(cause.capacity, 2);
                assert_eq!(cause.policy, "shed");
            }

            cp.write_slice(gate, &[accepted]).unwrap();
            cp.wait_spe(t_sink);
            cp.wait_spe(t_reader);
            cp.wait_spe(t_victim);
        })
        .expect("both degradations are graceful: the run still completes");

    let cats: Vec<IncidentCategory> = report.incidents.iter().map(|i| i.category).collect();
    for needed in [
        IncidentCategory::SpeCrash,
        IncidentCategory::PeerLost,
        IncidentCategory::Overload,
        IncidentCategory::MessageShed,
    ] {
        assert!(cats.contains(&needed), "missing {needed:?} in {cats:?}");
    }
    let sheds = cats
        .iter()
        .filter(|&&c| c == IncidentCategory::MessageShed)
        .count();
    assert_eq!(sheds, 4, "one message-shed incident per refused write");
}
