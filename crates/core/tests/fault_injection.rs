//! Scripted fault injection: SPE crashes, Co-Pilot stalls and rank deaths
//! must degrade gracefully — only channels touching the lost process fail,
//! the run completes, and every degradation shows up as a structured
//! incident in the [`cp_des::SimReport`].

use cellpilot::{CellPilotConfig, CellPilotOpts, CpChannel, CpError, SpeProgram, CP_MAIN};
use cp_des::{SimDuration, SimTime};
use cp_simnet::{ClusterSpec, FaultPlan, NodeId};
use std::sync::Arc;

/// Type-4 blast radius: a crashed SPE writer fails its own channel with
/// `PeerLost`, while an unrelated same-node SPE pair keeps working, and the
/// run still finishes cleanly.
#[test]
fn type4_spe_crash_fails_only_touching_channels() {
    let spec = ClusterSpec::two_cells_one_xeon();
    // Process ids are assigned in creation order: main = 0, then the four
    // SPE processes below. The victim is the first one created (id 1).
    let plan = Arc::new(FaultPlan::new().crash_spe(1, SimTime::ZERO));
    let opts = CellPilotOpts::new().with_faults(plan);
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, opts);

    let dying = SpeProgram::new("dying", 2048, |spe, _, _| {
        // The scripted crash fires at this first channel operation; the
        // line below never completes.
        let _ = spe.write_slice(CpChannel(0), &[1i32, 2, 3]);
        unreachable!("the fault plan kills this SPE at its first write");
    });
    let bereft = SpeProgram::new("bereft", 2048, |spe, _, _| {
        let err = spe.read_vec::<i32>(CpChannel(0)).unwrap_err();
        match err {
            CpError::PeerLost { channel, peer } => {
                assert_eq!(channel, 0);
                assert!(peer.starts_with("dying"), "{peer}");
            }
            other => panic!("expected PeerLost, got {other}"),
        }
    });
    let healthy_w = SpeProgram::new("healthy_w", 2048, |spe, _, _| {
        spe.write_slice(CpChannel(1), &[7.5f64, -1.25]).unwrap();
    });
    let healthy_r = SpeProgram::new("healthy_r", 2048, |spe, _, _| {
        let v = spe.read_vec::<f64>(CpChannel(1)).unwrap();
        assert_eq!(v, vec![7.5, -1.25]);
    });

    let victim = cfg.create_spe_process(&dying, CP_MAIN, 0).unwrap();
    assert_eq!(victim.0, 1, "the fault plan targets process id 1");
    let reader = cfg.create_spe_process(&bereft, CP_MAIN, 1).unwrap();
    let w2 = cfg.create_spe_process(&healthy_w, CP_MAIN, 2).unwrap();
    let r2 = cfg.create_spe_process(&healthy_r, CP_MAIN, 3).unwrap();
    let broken = cfg.create_channel(victim, reader).unwrap();
    assert_eq!(broken.0, 0);
    let _healthy = cfg.create_channel(w2, r2).unwrap();

    let report = cfg
        .run(move |cp| {
            let tasks: Vec<_> = [victim, reader, w2, r2]
                .iter()
                .map(|&p| cp.run_spe(p, 0, 0).unwrap())
                .collect();
            for t in tasks {
                cp.wait_spe(t);
            }
        })
        .expect("a scripted SPE crash degrades the run, it does not sink it");

    let cats: Vec<&str> = report
        .incidents
        .iter()
        .map(|i| i.category.as_str())
        .collect();
    assert!(
        cats.contains(&"spe-crash"),
        "incidents: {:?}",
        report.incidents
    );
    assert!(
        cats.contains(&"peer-lost"),
        "incidents: {:?}",
        report.incidents
    );
}

/// Type-5 blast radius: the crash of a writer SPE on node 0 is seen by its
/// reader SPE on node 1 (via the reader's own Co-Pilot consulting the
/// global plan), while a healthy type-5 pair between the same two nodes
/// still delivers.
#[test]
fn type5_spe_crash_blast_radius_spans_nodes() {
    let spec = ClusterSpec::two_cells_one_xeon();
    // main = 0, recvFunc = 1, then SPEs: victim = 2.
    let plan = Arc::new(FaultPlan::new().crash_spe(2, SimTime::ZERO));
    let opts = CellPilotOpts::new().with_faults(plan);
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, opts);

    let dying = SpeProgram::new("dying", 2048, |spe, _, _| {
        let _ = spe.write_slice(CpChannel(0), &[9i32]);
        unreachable!("the fault plan kills this SPE at its first write");
    });
    let bereft = SpeProgram::new("bereft", 2048, |spe, _, _| {
        match spe.read_vec::<i32>(CpChannel(0)).unwrap_err() {
            CpError::PeerLost { channel: 0, peer } => {
                assert!(peer.starts_with("dying"), "{peer}")
            }
            other => panic!("expected PeerLost on channel 0, got {other}"),
        }
    });
    let healthy_w = SpeProgram::new("healthy_w", 2048, |spe, _, _| {
        spe.write_slice(CpChannel(1), &[42i64, -42]).unwrap();
    });
    let healthy_r = SpeProgram::new("healthy_r", 2048, |spe, _, _| {
        assert_eq!(spe.read_vec::<i64>(CpChannel(1)).unwrap(), vec![42, -42]);
    });

    let recv_ppe = cfg
        .create_process("recvFunc", 0, |cp, _| {
            // Its SPE children are processes 3 (bereft) and 5 (healthy_r).
            cp.run_and_wait_my_spes();
        })
        .unwrap();
    let victim = cfg.create_spe_process(&dying, CP_MAIN, 0).unwrap();
    assert_eq!(victim.0, 2, "the fault plan targets process id 2");
    let reader = cfg.create_spe_process(&bereft, recv_ppe, 0).unwrap();
    let w2 = cfg.create_spe_process(&healthy_w, CP_MAIN, 1).unwrap();
    let r2 = cfg.create_spe_process(&healthy_r, recv_ppe, 1).unwrap();
    let broken = cfg.create_channel(victim, reader).unwrap();
    assert_eq!(broken.0, 0);
    let _healthy = cfg.create_channel(w2, r2).unwrap();

    let report = cfg
        .run(move |cp| {
            cp.run_and_wait_my_spes();
        })
        .expect("the crash fails two channels' endpoints, not the run");

    let cats: Vec<&str> = report
        .incidents
        .iter()
        .map(|i| i.category.as_str())
        .collect();
    assert!(
        cats.contains(&"spe-crash"),
        "incidents: {:?}",
        report.incidents
    );
    assert!(
        cats.contains(&"peer-lost"),
        "incidents: {:?}",
        report.incidents
    );
}

/// A stalled Co-Pilot delays every channel it services but loses nothing:
/// the same workload finishes later than a healthy run, delivers the same
/// data, and the stall is reported as an incident.
#[test]
fn copilot_stall_delays_but_preserves_delivery() {
    let build = |plan: Option<Arc<FaultPlan>>| {
        let spec = ClusterSpec::two_cells_one_xeon();
        let mut opts = CellPilotOpts::new();
        if let Some(p) = plan {
            opts = opts.with_faults(p);
        }
        let mut cfg = CellPilotConfig::one_rank_per_node(spec, opts);
        let writer = SpeProgram::new("writer", 2048, |spe, _, _| {
            spe.write_slice(CpChannel(0), &[1i32, 2, 3, 4]).unwrap();
        });
        let s = cfg.create_spe_process(&writer, CP_MAIN, 0).unwrap();
        let chan = cfg.create_channel(s, CP_MAIN).unwrap();
        cfg.run(move |cp| {
            let t = cp.run_spe(s, 0, 0).unwrap();
            assert_eq!(cp.read_vec::<i32>(chan).unwrap(), vec![1, 2, 3, 4]);
            cp.wait_spe(t);
        })
    };

    let healthy = build(None).unwrap();
    let stall = Arc::new(FaultPlan::new().stall_copilot(
        NodeId(0),
        SimTime::ZERO,
        SimDuration::from_millis(50),
    ));
    let stalled = build(Some(stall)).unwrap();

    assert!(
        stalled.end_time >= healthy.end_time + SimDuration::from_millis(50),
        "stall must show up in the virtual clock: {} vs {}",
        stalled.end_time,
        healthy.end_time
    );
    assert!(
        stalled
            .incidents
            .iter()
            .any(|i| i.category == "copilot-stall"),
        "incidents: {:?}",
        stalled.incidents
    );
    assert!(healthy.incidents.is_empty(), "{:?}", healthy.incidents);
}

/// The whole point of a scripted [`FaultPlan`]: the same plan replayed on
/// the same configuration yields a bit-identical execution — same trace,
/// same incidents, same end time.
#[test]
fn fault_plan_replays_identically() {
    let run_once = || {
        let spec = ClusterSpec::two_cells_one_xeon();
        let plan = Arc::new(
            FaultPlan::new()
                .delay_link(
                    NodeId(0),
                    NodeId(1),
                    SimTime::ZERO,
                    SimTime(u64::MAX),
                    SimDuration::from_micros(700),
                )
                .crash_spe(4, SimTime::ZERO)
                .stall_copilot(NodeId(1), SimTime::ZERO, SimDuration::from_millis(5)),
        );
        let opts = CellPilotOpts::new().with_trace().with_faults(plan);
        let mut cfg = CellPilotConfig::one_rank_per_node(spec, opts);
        let writer = SpeProgram::new("writer", 2048, |spe, _, _| {
            spe.write_slice(CpChannel(0), &[5i32; 64]).unwrap();
        });
        let reader = SpeProgram::new("reader", 2048, |spe, _, _| {
            assert_eq!(spe.read_vec::<i32>(CpChannel(0)).unwrap(), vec![5i32; 64]);
        });
        let doomed = SpeProgram::new("doomed", 2048, |spe, _, _| {
            let _ = spe.write_slice(CpChannel(1), &[0u8]);
            unreachable!("scripted crash");
        });
        let bereft = SpeProgram::new("bereft", 2048, |spe, _, _| {
            assert!(matches!(
                spe.read_vec::<u8>(CpChannel(1)).unwrap_err(),
                CpError::PeerLost { channel: 1, .. }
            ));
        });
        let recv_ppe = cfg
            .create_process("recvFunc", 0, |cp, _| cp.run_and_wait_my_spes())
            .unwrap();
        let w = cfg.create_spe_process(&writer, CP_MAIN, 0).unwrap();
        let r = cfg.create_spe_process(&reader, recv_ppe, 0).unwrap();
        let d = cfg.create_spe_process(&doomed, CP_MAIN, 1).unwrap();
        assert_eq!(d.0, 4, "the fault plan targets process id 4");
        let b = cfg.create_spe_process(&bereft, recv_ppe, 1).unwrap();
        cfg.create_channel(w, r).unwrap();
        cfg.create_channel(d, b).unwrap();
        cfg.run_traced(move |cp| cp.run_and_wait_my_spes()).unwrap()
    };

    let (report_a, trace_a) = run_once();
    let (report_b, trace_b) = run_once();
    assert_eq!(trace_a, trace_b, "fault replay must be deterministic");
    assert_eq!(report_a.incidents, report_b.incidents);
    assert_eq!(report_a.end_time, report_b.end_time);
    assert!(!trace_a.is_empty());
    assert!(report_a.incidents.iter().any(|i| i.category == "spe-crash"));
    assert!(report_a
        .incidents
        .iter()
        .any(|i| i.category == "copilot-stall"));
}
