//! Eager small-message inlining: schedule effect, byte-identical goldens
//! above the threshold, and inline-vs-DMA payload-FIFO equivalence on
//! both execution backends.

use std::sync::{Arc, Mutex};

use cellpilot::{CellPilotConfig, CellPilotOpts, CpChannel, SpeProgram, CP_MAIN};
use cp_des::{Backend, SimTime};
use cp_simnet::ClusterSpec;

/// One rank↔SPE request/response ping carrying `words` payload words each
/// way, with or without eager inlining on both channels. Returns the
/// virtual completion time and the payload the rank read back.
fn ping(eager: bool, words: usize, rounds: usize) -> (SimTime, Vec<i32>) {
    ping_with(eager, words, rounds, cp_trace::Recorder::disabled())
}

fn ping_with(
    eager: bool,
    words: usize,
    rounds: usize,
    rec: cp_trace::Recorder,
) -> (SimTime, Vec<i32>) {
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::new().with_tracing(rec));
    let worker = SpeProgram::new("echo", 2048, move |spe, _, _| {
        for _ in 0..rounds {
            let v = spe.read_vec::<i32>(CpChannel(0)).unwrap();
            let out: Vec<i32> = v.iter().map(|x| x + 1).collect();
            spe.write_slice(CpChannel(1), &out).unwrap();
        }
    });
    let wk = cfg.create_spe_process(&worker, CP_MAIN, 0).unwrap();
    let build = |cfg: &mut CellPilotConfig, from, to| {
        let b = cfg.channel(from, to);
        if eager { b.eager() } else { b }.build().unwrap()
    };
    let req = build(&mut cfg, CP_MAIN, wk);
    let rsp = build(&mut cfg, wk, CP_MAIN);
    assert_eq!((req.0, rsp.0), (0, 1));

    let got: Arc<Mutex<Vec<i32>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = got.clone();
    let report = cfg
        .run(move |cp| {
            let _t = cp.run_my_spes();
            for _ in 0..rounds {
                let payload: Vec<i32> = (0..words as i32).collect();
                cp.write_slice(req, &payload).unwrap();
                *sink.lock().unwrap() = cp.read_vec::<i32>(rsp).unwrap();
            }
        })
        .unwrap();
    let v = got.lock().unwrap().clone();
    (report.end_time, v)
}

#[test]
fn eager_ping_is_faster_and_payload_identical() {
    // One i32 packs to 13 bytes (4-byte segment count, 1-byte dtype,
    // 4-byte length, 4 data bytes) — within the 16-byte mailbox budget.
    let (t_eager, v_eager) = ping(true, 1, 4);
    let (t_dma, v_dma) = ping(false, 1, 4);
    assert_eq!(v_eager, v_dma, "inline delivery must not change payloads");
    assert_eq!(v_eager, vec![1]);
    assert!(
        t_eager < t_dma,
        "a 13-byte ping must finish sooner with eager inlining: {t_eager} vs {t_dma}"
    );
}

/// Blank every value of the given numeric key (`"ts":…`, `"dur":…`) in a
/// Chrome-trace JSON string.
fn strip_times(seg: &str, key: &str) -> String {
    let pat = format!("\"{key}\":");
    let mut out = String::with_capacity(seg.len());
    let mut rest = seg;
    while let Some(i) = rest.find(&pat) {
        let key_end = i + pat.len();
        out.push_str(&rest[..key_end]);
        let tail = &rest[key_end..];
        let stop = tail.find([',', '}']).unwrap_or(tail.len());
        out.push('_');
        rest = &tail[stop..];
    }
    out.push_str(rest);
    out
}

/// A Chrome trace reduced to the byte-exact sequence of channel and
/// Co-Pilot operations — lanes, op names, channels, event order — with
/// timestamps and durations blanked and the DES kernel's scheduler
/// telemetry (queue-depth counters, `"cat":"des"`) dropped. Two runs
/// with equal digests took the same code path for every message.
fn op_digest(trace: &str) -> String {
    let sep = ",{\"args\":";
    trace
        .split(sep)
        .filter(|seg| !seg.contains("\"cat\":\"des\""))
        .map(|seg| strip_times(&strip_times(seg, "ts"), "dur"))
        .collect::<Vec<_>>()
        .join(sep)
}

#[test]
fn above_threshold_payloads_keep_the_dma_golden_digest() {
    // 8 i32s pack to 41 bytes — over the 16-byte inline budget — so even
    // on an eager channel every message takes the rendezvous DMA path.
    // The golden contract: the inline fast path is invisible when not
    // taken — payloads, completion semantics, and the operation sequence
    // (the timestamp-sanitized trace digest) are byte-identical. Virtual
    // end time may only move because posting a read on an eager channel
    // defers the reader-buffer setup to delivery; the data path itself
    // is the same.
    let rec_eager = cp_trace::Recorder::enabled();
    let rec_dma = cp_trace::Recorder::enabled();
    let (t_eager, v_eager) = ping_with(true, 8, 4, rec_eager.clone());
    let (t_dma, v_dma) = ping_with(false, 8, 4, rec_dma.clone());
    assert_eq!(v_eager, v_dma, "DMA fallback must not change payloads");
    assert_eq!(v_eager, (1..9).collect::<Vec<i32>>());
    assert_eq!(
        op_digest(&rec_eager.chrome_trace()),
        op_digest(&rec_dma.chrome_trace()),
        "above-threshold traffic must take the byte-exact DMA op sequence"
    );
    assert!(
        t_eager <= t_dma,
        "deferred reader-buffer setup can only shorten the schedule: {t_eager} vs {t_dma}"
    );
}

/// Seeded splitmix64, as in the bench modules.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// An SPE streams `count` seeded messages to the rank over one channel,
/// randomly mixing single-word payloads (13 bytes packed — inline when
/// eager) with multi-word ones (17+ bytes — always rendezvous DMA). The
/// rank returns every word it read, in arrival order, with each
/// message's length prepended so framing differences can't cancel out.
fn seeded_stream(eager: bool, seed: u64, count: usize, backend: Backend) -> Vec<i32> {
    let spec = ClusterSpec::two_cells_one_xeon();
    let opts = CellPilotOpts::new().with_backend(backend);
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, opts);
    let producer = SpeProgram::new("producer", 2048, move |spe, _, _| {
        let mut rng = SplitMix64(seed);
        for _ in 0..count {
            let words = 1 + (rng.next() % 8) as usize;
            let payload: Vec<i32> = (0..words).map(|_| (rng.next() & 0xFFFF) as i32).collect();
            spe.write_slice(CpChannel(0), &payload).unwrap();
        }
    });
    let wk = cfg.create_spe_process(&producer, CP_MAIN, 0).unwrap();
    let b = cfg.channel(wk, CP_MAIN);
    let chan = if eager { b.eager() } else { b }.build().unwrap();
    assert_eq!(chan.0, 0);

    let got: Arc<Mutex<Vec<i32>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = got.clone();
    cfg.run(move |cp| {
        let _t = cp.run_my_spes();
        let mut all = Vec::new();
        for _ in 0..count {
            let v = cp.read_vec::<i32>(chan).unwrap();
            all.push(v.len() as i32);
            all.extend_from_slice(&v);
        }
        *sink.lock().unwrap() = all;
    })
    .unwrap();
    let v = got.lock().unwrap().clone();
    v
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(6))]

    /// Property: for any seeded mix of inline-sized and DMA-sized
    /// messages on one channel, the reader observes the exact same word
    /// stream whether eager inlining is on (buffered inline sends
    /// interleaved with rendezvous transfers) or off (everything
    /// rendezvous) — on both execution backends.
    #[test]
    fn inline_and_dma_fifos_match_per_seed_on_both_backends(seed in 1u64..=1_000_000) {
        for backend in [Backend::Sim, Backend::Native] {
            let eager = seeded_stream(true, seed, 24, backend);
            let dma = seeded_stream(false, seed, 24, backend);
            proptest::prop_assert_eq!(
                &eager,
                &dma,
                "payload FIFO diverged (seed {}, backend {:?})",
                seed,
                backend
            );
            proptest::prop_assert!(!eager.is_empty());
        }
    }
}
