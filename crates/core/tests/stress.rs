//! Stress and edge-path tests: large messages through the rendezvous
//! protocol and the Co-Pilot, local-store pressure, many channels, and
//! sustained mixed traffic.

use cellpilot::{
    CellPilotConfig, CellPilotOpts, CpChannel, CpError, CpProcess, SpeProgram, CP_MAIN,
};
use cp_pilot::PiValue;
use cp_simnet::ClusterSpec;

#[test]
fn large_message_rendezvous_to_spe() {
    // 24 KB exceeds the 16 KiB MPI eager limit, so the rank->Co-Pilot leg
    // runs the rendezvous handshake; the SPE reads it with an explicit
    // capacity (the C API's `PI_Read(.., "%*b", cap, buf)` form).
    const N: usize = 24 * 1024;
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::default());
    let reader = SpeProgram::new("reader", 2048, |spe, _, _| {
        let vals = spe.read_with_limit(CpChannel(0), "%*b", 32 * 1024).unwrap();
        let PiValue::Byte(v) = &vals[0] else {
            unreachable!()
        };
        assert_eq!(v.len(), N);
        assert!(v.iter().enumerate().all(|(i, &b)| b == i as u8));
    });
    let s = cfg.create_spe_process(&reader, CP_MAIN, 0).unwrap();
    let chan = cfg.channel(CP_MAIN, s).build().unwrap();
    cfg.run(move |cp| {
        let t = cp.run_spe(s, 0, 0).unwrap();
        let data: Vec<u8> = (0..N).map(|i| i as u8).collect();
        cp.write(chan, &format!("%{N}b"), &[PiValue::Byte(data)])
            .unwrap();
        cp.wait_spe(t);
    })
    .unwrap();
}

#[test]
fn large_message_rendezvous_from_spe() {
    // SPE -> rank, 20 KB: the Co-Pilot performs the rendezvous send on the
    // SPE's behalf.
    const N: usize = 20 * 1024;
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::default());
    let writer = SpeProgram::new("writer", 2048, |spe, _, _| {
        let data: Vec<u8> = (0..N).map(|i| (i * 7) as u8).collect();
        spe.write(CpChannel(0), &format!("%{N}b"), &[PiValue::Byte(data)])
            .unwrap();
    });
    let s = cfg.create_spe_process(&writer, CP_MAIN, 0).unwrap();
    let chan = cfg.channel(s, CP_MAIN).build().unwrap();
    cfg.run(move |cp| {
        let t = cp.run_spe(s, 0, 0).unwrap();
        let vals = cp.read(chan, "%*b").unwrap();
        let PiValue::Byte(v) = &vals[0] else {
            unreachable!()
        };
        assert_eq!(v.len(), N);
        assert!(v.iter().enumerate().all(|(i, &b)| b == (i * 7) as u8));
        cp.wait_spe(t);
    })
    .unwrap();
}

#[test]
fn local_store_exhaustion_is_a_clean_error() {
    // A message too large for the free local store fails the SPE-side
    // allocation with OutOfLocalStore, not a crash.
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::default());
    let writer = SpeProgram::new("writer", 200 * 1024, |spe, _, _| {
        // Image + runtime leave well under 100 KB free.
        let data = vec![0u8; 120 * 1024];
        match spe.write(CpChannel(0), "%*b", &[PiValue::Byte(data)]) {
            Err(CpError::LocalStore(e)) => {
                assert!(e.to_string().contains("exhausted"), "{e}");
            }
            other => panic!("expected LocalStore error, got {other:?}"),
        }
        // The runtime stays usable afterwards.
        spe.write(CpChannel(0), "%b", &[PiValue::Byte(vec![1])])
            .unwrap();
    });
    let s = cfg.create_spe_process(&writer, CP_MAIN, 0).unwrap();
    let chan = cfg.channel(s, CP_MAIN).build().unwrap();
    cfg.run(move |cp| {
        let t = cp.run_spe(s, 0, 0).unwrap();
        let v = cp.read(chan, "%b").unwrap();
        assert_eq!(v[0], PiValue::Byte(vec![1]));
        cp.wait_spe(t);
    })
    .unwrap();
}

#[test]
fn sixty_four_channels_interleaved() {
    // 8 SPE workers x 8 channels each, written in a scrambled order;
    // per-channel FIFO and content integrity must hold.
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::default());
    const WORKERS: usize = 8;
    const PER: usize = 8;
    let worker = SpeProgram::new("w", 2048, |spe, _, _| {
        let w = spe.index() as usize;
        for k in 0..PER {
            let chan = CpChannel(w * PER + k);
            let payload = (w * 1000 + k * 10) as i32;
            spe.write(chan, "%d", &[PiValue::Int32(vec![payload])])
                .unwrap();
        }
    });
    for w in 0..WORKERS {
        let s = cfg.create_spe_process(&worker, CP_MAIN, w as i32).unwrap();
        for _ in 0..PER {
            cfg.channel(s, CP_MAIN).build().unwrap();
        }
    }
    cfg.run(move |cp| {
        let mut ts = Vec::new();
        for p in 0..cp.process_count() {
            if let Ok(t) = cp.run_spe(CpProcess(p), 0, 0) {
                ts.push(t);
            }
        }
        // Read in a scrambled (but deterministic) order.
        let mut order: Vec<usize> = (0..WORKERS * PER).collect();
        order.reverse();
        order.rotate_left(13);
        for c in order {
            let vals = cp.read(CpChannel(c), "%d").unwrap();
            let (w, k) = (c / PER, c % PER);
            assert_eq!(vals[0], PiValue::Int32(vec![(w * 1000 + k * 10) as i32]));
        }
        for t in ts {
            cp.wait_spe(t);
        }
    })
    .unwrap();
}

#[test]
fn thousand_messages_sustained_type2() {
    // Sustained one-direction traffic: 1000 messages over one channel.
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::default());
    const N: i32 = 1000;
    let sink = SpeProgram::new("sink", 2048, |spe, _, _| {
        for i in 0..N {
            let vals = spe.read(CpChannel(0), "%d").unwrap();
            assert_eq!(vals[0], PiValue::Int32(vec![i]));
        }
    });
    let s = cfg.create_spe_process(&sink, CP_MAIN, 0).unwrap();
    let chan = cfg.channel(CP_MAIN, s).build().unwrap();
    cfg.run(move |cp| {
        let t = cp.run_spe(s, 0, 0).unwrap();
        for i in 0..N {
            cp.write(chan, "%d", &[PiValue::Int32(vec![i])]).unwrap();
        }
        cp.wait_spe(t);
    })
    .unwrap();
}

#[test]
fn spe_reload_cycles() {
    // "SPEs have limited memory and may need to be loaded and reloaded
    // with codes": run the same SPE process 10 times in sequence, each run
    // exchanging data, with the local store fully recovered in between.
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::default());
    let prog = SpeProgram::new("cycler", 50 * 1024, |spe, run_no, _| {
        spe.write(CpChannel(0), "%d", &[PiValue::Int32(vec![run_no * 11])])
            .unwrap();
    });
    let s = cfg.create_spe_process(&prog, CP_MAIN, 0).unwrap();
    let chan = cfg.channel(s, CP_MAIN).build().unwrap();
    cfg.run(move |cp| {
        for run_no in 0..10 {
            let t = cp.run_spe(s, run_no, 0).unwrap();
            let vals = cp.read(chan, "%d").unwrap();
            assert_eq!(vals[0], PiValue::Int32(vec![run_no * 11]));
            cp.wait_spe(t);
        }
    })
    .unwrap();
}

#[test]
fn contention_models_change_timing_not_results() {
    // Enable both opt-in contention models (NIC + EIB) and rerun a
    // multi-worker farm: all data must still round trip, and the run must
    // take at least as long as the contention-free one.
    fn run_farm(contend: bool) -> (Vec<i64>, u64) {
        let mut spec = ClusterSpec::two_cells_one_xeon();
        spec.net.contention = contend;
        spec.cell_costs.eib_contention = contend;
        let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::default());
        let host = cfg
            .create_process("host", 0, |cp, _| {
                let mut ts = Vec::new();
                for p in 0..cp.process_count() {
                    if let Ok(t) = cp.run_spe(CpProcess(p), 0, 0) {
                        ts.push(t);
                    }
                }
                for t in ts {
                    cp.wait_spe(t);
                }
            })
            .unwrap();
        let echo = SpeProgram::new("echo", 2048, |spe, _, _| {
            let w = spe.index() as usize;
            let vals = spe.read(CpChannel(2 * w), "%*ld").unwrap();
            spe.write(CpChannel(2 * w + 1), "%*ld", &vals).unwrap();
        });
        const W: usize = 6;
        for w in 0..W {
            let parent = if w % 2 == 0 { CP_MAIN } else { host };
            let s = cfg.create_spe_process(&echo, parent, w as i32).unwrap();
            cfg.channel(CP_MAIN, s).build().unwrap();
            cfg.channel(s, CP_MAIN).build().unwrap();
        }
        let out = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let out2 = out.clone();
        let report = cfg
            .run(move |cp| {
                let mut ts = Vec::new();
                for p in 0..cp.process_count() {
                    if let Ok(t) = cp.run_spe(CpProcess(p), 0, 0) {
                        ts.push(t);
                    }
                }
                for w in 0..W {
                    let data: Vec<i64> = (0..256).map(|i| (w * 1000 + i) as i64).collect();
                    cp.write(CpChannel(2 * w), "%256ld", &[PiValue::Int64(data)])
                        .unwrap();
                }
                let mut sums = Vec::new();
                for w in 0..W {
                    let vals = cp.read(CpChannel(2 * w + 1), "%*ld").unwrap();
                    let PiValue::Int64(v) = &vals[0] else {
                        unreachable!()
                    };
                    assert_eq!(v.len(), 256);
                    sums.push(v.iter().sum::<i64>());
                }
                for t in ts {
                    cp.wait_spe(t);
                }
                *out2.lock() = sums;
            })
            .unwrap();
        let v = out.lock().clone();
        (v, report.end_time.as_nanos())
    }
    let (free_sums, free_time) = run_farm(false);
    let (cont_sums, cont_time) = run_farm(true);
    assert_eq!(free_sums, cont_sums, "contention must not corrupt data");
    assert!(
        cont_time >= free_time,
        "contention can only slow things down: {cont_time} vs {free_time}"
    );
}
