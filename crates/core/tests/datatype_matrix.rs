//! The paper's full §V sweep: "Each data type supported by CellPilot was
//! sent across each of the 5 channel types" — here as a correctness matrix
//! (9 datatypes × 5 channel types, both payload shapes), verifying wire
//! integrity through every transport path.

use cellpilot::{CellPilotConfig, CellPilotOpts, CpChannel, CpProcess, SpeProgram, CP_MAIN};
use cp_mpisim::LongDouble;
use cp_pilot::PiValue;
use cp_simnet::ClusterSpec;
use parking_lot::Mutex;
use std::sync::Arc;

/// One representative payload per supported datatype, with its format.
fn payloads() -> Vec<(&'static str, PiValue)> {
    vec![
        ("%4b", PiValue::Byte(vec![0, 1, 254, 255])),
        ("%5c", PiValue::Char(b"cellp".to_vec())),
        ("%3hd", PiValue::Int16(vec![i16::MIN, -1, i16::MAX])),
        ("%3d", PiValue::Int32(vec![i32::MIN, 0, i32::MAX])),
        ("%3u", PiValue::UInt32(vec![0, 7, u32::MAX])),
        ("%3ld", PiValue::Int64(vec![i64::MIN, 42, i64::MAX])),
        ("%3f", PiValue::Float32(vec![-1.5, 0.0, f32::MAX])),
        (
            "%3lf",
            PiValue::Float64(vec![std::f64::consts::E, -0.0, 1e300]),
        ),
        (
            "%3Lf",
            PiValue::LongDouble(vec![LongDouble(1.25), LongDouble(-2.5), LongDouble(0.0)]),
        ),
    ]
}

/// Round trip every datatype over a channel of the given type and assert
/// equality.
fn run_type(chan_type: u8) {
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::default());
    let n = payloads().len();
    let echoed: Arc<Mutex<Vec<PiValue>>> = Arc::new(Mutex::new(Vec::new()));

    // Echo body shared by rank and SPE incarnations: read every payload
    // off channel 0, write it back on channel 1.
    let spe_echo = SpeProgram::new("echo", 4096, move |spe, _, _| {
        for (fmt, _) in payloads() {
            let vals = spe.read(CpChannel(0), fmt).unwrap();
            spe.write(CpChannel(1), fmt, &vals).unwrap();
        }
    });

    let (from, to);
    match chan_type {
        1 => {
            let peer = cfg
                .create_process("echo", 0, move |cp, _| {
                    for (fmt, _) in payloads() {
                        let vals = cp.read(CpChannel(0), fmt).unwrap();
                        cp.write(CpChannel(1), fmt, &vals).unwrap();
                    }
                })
                .unwrap();
            from = peer;
            to = peer;
        }
        2 => {
            let s = cfg.create_spe_process(&spe_echo, CP_MAIN, 0).unwrap();
            from = s;
            to = s;
        }
        3 => {
            let parent = cfg
                .create_process("parent", 0, |cp, _| {
                    let t = cp.run_spe(CpProcess(2), 0, 0).unwrap();
                    cp.wait_spe(t);
                })
                .unwrap();
            let s = cfg.create_spe_process(&spe_echo, parent, 0).unwrap();
            from = s;
            to = s;
        }
        4 | 5 => {
            // Main -> SPE A -> SPE B -> main, so the middle hop is the
            // type-4/5 channel under test.
            let relay_a = SpeProgram::new("relay", 4096, move |spe, _, _| {
                for (fmt, _) in payloads() {
                    let vals = spe.read(CpChannel(0), fmt).unwrap();
                    spe.write(CpChannel(2), fmt, &vals).unwrap();
                }
            });
            let relay_b = SpeProgram::new("relay-b", 4096, move |spe, _, _| {
                for (fmt, _) in payloads() {
                    let vals = spe.read(CpChannel(2), fmt).unwrap();
                    spe.write(CpChannel(1), fmt, &vals).unwrap();
                }
            });
            let parent_b = if chan_type == 5 {
                cfg.create_process("parent", 0, |cp, _| {
                    let t = cp.run_spe(CpProcess(3), 0, 0).unwrap();
                    cp.wait_spe(t);
                })
                .unwrap()
            } else {
                CP_MAIN
            };
            let a = cfg.create_spe_process(&relay_a, CP_MAIN, 0).unwrap();
            let b = cfg.create_spe_process(&relay_b, parent_b, 1).unwrap();
            let c0 = cfg.channel(CP_MAIN, a).build().unwrap();
            let c1 = cfg.channel(b, CP_MAIN).build().unwrap();
            let c2 = cfg.channel(a, b).build().unwrap();
            assert_eq!((c0.0, c1.0, c2.0), (0, 1, 2));
            let want = if chan_type == 4 {
                cellpilot::ChannelKind::Type4
            } else {
                cellpilot::ChannelKind::Type5
            };
            assert_eq!(cfg.channel_kind(c2), Some(want));
            let got = echoed.clone();
            cfg.run(move |cp| {
                let mut ts = Vec::new();
                for p in 0..cp.process_count() {
                    if let Ok(t) = cp.run_spe(CpProcess(p), 0, 0) {
                        ts.push(t);
                    }
                }
                for (fmt, v) in payloads() {
                    cp.write(CpChannel(0), fmt, std::slice::from_ref(&v))
                        .unwrap();
                }
                for (fmt, _) in payloads() {
                    let vals = cp.read(CpChannel(1), fmt).unwrap();
                    got.lock().push(vals[0].clone());
                }
                for t in ts {
                    cp.wait_spe(t);
                }
            })
            .unwrap();
            let got = echoed.lock();
            assert_eq!(got.len(), n);
            for ((_, expect), back) in payloads().iter().zip(got.iter()) {
                assert_eq!(expect, back, "type {chan_type}");
            }
            return;
        }
        other => panic!("no such channel type {other}"),
    }
    let c0 = cfg.channel(CP_MAIN, from).build().unwrap();
    let c1 = cfg.channel(to, CP_MAIN).build().unwrap();
    assert_eq!((c0.0, c1.0), (0, 1));
    let got = echoed.clone();
    cfg.run(move |cp| {
        let mut ts = Vec::new();
        for p in 0..cp.process_count() {
            if let Ok(t) = cp.run_spe(CpProcess(p), 0, 0) {
                ts.push(t);
            }
        }
        for (fmt, v) in payloads() {
            cp.write(CpChannel(0), fmt, std::slice::from_ref(&v))
                .unwrap();
        }
        for (fmt, _) in payloads() {
            let vals = cp.read(CpChannel(1), fmt).unwrap();
            got.lock().push(vals[0].clone());
        }
        for t in ts {
            cp.wait_spe(t);
        }
    })
    .unwrap();
    let got = echoed.lock();
    assert_eq!(got.len(), n);
    for ((_, expect), back) in payloads().iter().zip(got.iter()) {
        assert_eq!(expect, back, "type {chan_type}");
    }
}

#[test]
fn every_datatype_over_type1() {
    run_type(1);
}

#[test]
fn every_datatype_over_type2() {
    run_type(2);
}

#[test]
fn every_datatype_over_type3() {
    run_type(3);
}

#[test]
fn every_datatype_over_type4() {
    run_type(4);
}

#[test]
fn every_datatype_over_type5() {
    run_type(5);
}
