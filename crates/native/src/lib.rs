#![warn(missing_docs)]
#![forbid(unsafe_code)]
//! # cp-native — the CellPilot program on free-running OS threads
//!
//! A second implementation of the [`cp_des::Executor`] seam: where the DES
//! kernel serializes thread-backed processes under a virtual clock, this
//! backend lets every process thread run concurrently under the wall
//! clock. Each rank/SPE process is a spawned thread; the relay channel
//! paths become real shared-memory queues (the same mutex-protected
//! mailboxes, now contended for real) and the one-sided put/get/fence path
//! operates on the same mutex-protected window table — no program body,
//! channel implementation, or Co-Pilot changes between substrates.
//!
//! The mapping of [`cp_des::ProcCtx`] calls:
//!
//! * `now()` — wall-clock nanoseconds since the runner was created;
//! * `advance(d)` — sleep for `d` (capped per call; callers that wait for
//!   a point in time re-check and sleep again, so the cap only bounds the
//!   latency of a single call);
//! * `block`/`unblock`/`block_timeout` — per-process condition variables
//!   with the same pending-wake banking semantics as the sim kernel, so
//!   the channel layers' check-then-block protocols lose no signal;
//! * deadlock — declared when **every** live process sits in an untimed
//!   `block` (a timed block will wake itself, a runnable thread may wake
//!   others; neither counts). Sound because a wake can only come from a
//!   live process.
//!
//! What stays sim-only: fault plans and supervision, schedule-seed
//! exploration, virtual time limits, and the CP101 DMA race detection
//! (its happens-before timestamps are meaningful only under the virtual
//! clock). The config layers guard or document each.

use cp_des::{
    Backend, Executor, Incident, IncidentCategory, Pid, ProcBody, ProcCtx, SimDuration, SimError,
    SimReport, SimTime, Spawner,
};
use cp_trace::Recorder;
use parking_lot::{Condvar, Mutex};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Payload used to unwind a native process when the run is torn down early
/// (deadlock, abort, or another process panicking).
struct NativeUnwind;

/// Longest real sleep a single `advance` call performs. Waiters that target
/// an absolute instant (e.g. a modelled arrival time already stamped on a
/// message) loop on "has the clock passed it yet" and re-advance, so the
/// cap bounds per-call latency without changing semantics.
const ADVANCE_CAP: Duration = Duration::from_millis(5);

#[derive(Debug, Clone, PartialEq, Eq)]
enum Status {
    /// Thread is runnable (executing, sleeping in `advance`, or between
    /// kernel calls).
    Running,
    /// Parked in `block`/`block_timeout`; `timed` blocks wake themselves at
    /// the deadline and therefore never count toward deadlock.
    Blocked { reason: String, timed: bool },
    /// Thread has exited.
    Finished,
    /// Run is tearing down; parked threads must unwind on wake.
    Poisoned,
}

struct ProcSlot {
    name: String,
    status: Status,
    /// Wake permits delivered while the process was runnable; consumed by
    /// the next `block` call without parking (same banking semantics as the
    /// DES kernel — the channel layers rely on it).
    pending_wakes: u32,
    /// Processes blocked in `join` on this process.
    join_waiters: Vec<Pid>,
    cv: Arc<Condvar>,
}

enum Outcome {
    Completed,
    Failed(SimError),
}

struct NState {
    procs: Vec<ProcSlot>,
    /// Number of processes not yet Finished.
    live: usize,
    /// Deadlock detection is armed only once `run` begins: threads start at
    /// spawn time, so before `run` a waiter can be the only live process for
    /// an instant while its peers are still being spawned. All root spawns
    /// precede `run`, and nested spawns register their slot while the
    /// spawning parent is Running, so the gate is only needed pre-run.
    started: bool,
    outcome: Option<Outcome>,
    /// Wake-ups delivered (the native analogue of scheduler dispatches).
    dispatches: u64,
    incidents: Vec<Incident>,
    recorder: Recorder,
}

/// The wall-clock executor: shared state plus the self-reference needed to
/// hand each spawned process an owning [`ProcCtx`].
pub struct NativeKernel {
    state: Mutex<NState>,
    done_cv: Condvar,
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Set once the run fails; checked lock-free on the `advance` fast path
    /// so runaway compute loops still notice teardown promptly.
    poisoned: AtomicBool,
    start: Instant,
    me: Weak<NativeKernel>,
}

impl NativeKernel {
    fn new() -> Arc<NativeKernel> {
        Arc::new_cyclic(|me| NativeKernel {
            state: Mutex::new(NState {
                procs: Vec::new(),
                live: 0,
                started: false,
                outcome: None,
                dispatches: 0,
                incidents: Vec::new(),
                recorder: Recorder::disabled(),
            }),
            done_cv: Condvar::new(),
            handles: Mutex::new(Vec::new()),
            poisoned: AtomicBool::new(false),
            start: Instant::now(),
            me: me.clone(),
        })
    }

    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Declare deadlock if every live process is in an untimed block. A
    /// timed block wakes itself at its deadline and a runnable thread may
    /// yet wake others, so neither counts; wakes only ever originate from
    /// live processes, which makes the all-untimed-blocked state permanent
    /// and the detection sound. Called with the state lock held, at
    /// block-entry and at process exit.
    fn check_deadlock(&self, st: &mut NState) {
        if !st.started || st.outcome.is_some() || st.live == 0 {
            return;
        }
        let stuck = st
            .procs
            .iter()
            .filter(|p| matches!(p.status, Status::Blocked { timed: false, .. }))
            .count();
        if stuck != st.live {
            return;
        }
        let blocked = st
            .procs
            .iter()
            .enumerate()
            .filter_map(|(pid, p)| match &p.status {
                Status::Blocked { reason, .. } => Some((pid, p.name.clone(), reason.clone())),
                _ => None,
            })
            .collect();
        let at = SimTime(self.now_ns());
        self.fail(st, SimError::Deadlock { at, blocked });
    }

    fn fail(&self, st: &mut NState, err: SimError) {
        if st.outcome.is_none() {
            st.outcome = Some(Outcome::Failed(err));
        }
        self.poisoned.store(true, Ordering::Release);
        for p in st.procs.iter_mut() {
            if matches!(p.status, Status::Blocked { .. }) {
                p.status = Status::Poisoned;
                p.cv.notify_one();
            }
        }
        self.done_cv.notify_all();
    }

    fn unwind() -> ! {
        // resume_unwind skips the panic hook: teardown unwinds are expected
        // control flow, not reportable panics.
        panic::resume_unwind(Box::new(NativeUnwind))
    }
}

impl Executor for NativeKernel {
    fn backend(&self) -> Backend {
        Backend::Native
    }

    fn proc_name(&self, pid: Pid) -> String {
        self.state.lock().procs[pid].name.clone()
    }

    fn now(&self) -> SimTime {
        SimTime(self.now_ns())
    }

    fn advance(&self, _pid: Pid, d: SimDuration) {
        if self.poisoned.load(Ordering::Acquire) {
            NativeKernel::unwind();
        }
        if d == SimDuration::ZERO {
            std::thread::yield_now();
        } else {
            std::thread::sleep(Duration::from_nanos(d.as_nanos()).min(ADVANCE_CAP));
        }
    }

    fn block(&self, pid: Pid, reason: &str) {
        let mut st = self.state.lock();
        if st.outcome.is_some() {
            drop(st);
            NativeKernel::unwind();
        }
        if st.procs[pid].pending_wakes > 0 {
            st.procs[pid].pending_wakes -= 1;
            return;
        }
        st.procs[pid].status = Status::Blocked {
            reason: reason.to_string(),
            timed: false,
        };
        self.check_deadlock(&mut st);
        let cv = st.procs[pid].cv.clone();
        loop {
            match &st.procs[pid].status {
                Status::Running => return,
                Status::Poisoned => {
                    drop(st);
                    NativeKernel::unwind();
                }
                _ => cv.wait(&mut st),
            }
        }
    }

    fn block_timeout(&self, pid: Pid, reason: &str, timeout: SimDuration) -> bool {
        let mut st = self.state.lock();
        if st.outcome.is_some() {
            drop(st);
            NativeKernel::unwind();
        }
        if st.procs[pid].pending_wakes > 0 {
            st.procs[pid].pending_wakes -= 1;
            return true;
        }
        st.procs[pid].status = Status::Blocked {
            reason: reason.to_string(),
            timed: true,
        };
        let deadline = Instant::now() + Duration::from_nanos(timeout.as_nanos());
        let cv = st.procs[pid].cv.clone();
        loop {
            match &st.procs[pid].status {
                Status::Running => return true,
                Status::Poisoned => {
                    drop(st);
                    NativeKernel::unwind();
                }
                _ => {
                    let left = deadline.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        st.procs[pid].status = Status::Running;
                        return false;
                    }
                    let _ = cv.wait_for(&mut st, left);
                }
            }
        }
    }

    fn unblock(&self, pid: Pid, _delay: SimDuration) {
        // The waker's latency is real on this backend — it already elapsed
        // on the wall clock — so the modelled delay is dropped.
        let mut st = self.state.lock();
        match st.procs[pid].status {
            Status::Blocked { .. } => {
                st.procs[pid].status = Status::Running;
                st.dispatches += 1;
                let now = self.now_ns();
                st.recorder.record_dispatch(now, 0);
                st.procs[pid].cv.notify_one();
            }
            Status::Finished | Status::Poisoned => {}
            Status::Running => st.procs[pid].pending_wakes += 1,
        }
    }

    fn report_incident(&self, pid: Pid, category: IncidentCategory, detail: &str) {
        let mut st = self.state.lock();
        let at = SimTime(self.now_ns());
        let process = st.procs[pid].name.clone();
        st.recorder
            .record_incident(at.0, &process, category.as_str(), detail);
        st.incidents.push(Incident {
            at,
            process,
            category,
            detail: detail.to_string(),
        });
    }

    fn spawn_boxed(&self, name: &str, body: ProcBody) -> Pid {
        let kernel = self.me.upgrade().expect("kernel alive while spawning");
        spawn_thread(&kernel, name, body)
    }

    fn join(&self, me: Pid, target: Pid) {
        loop {
            {
                let mut st = self.state.lock();
                if st.procs[target].status == Status::Finished {
                    return;
                }
                st.procs[target].join_waiters.push(me);
            }
            self.block(me, &format!("join(pid={target})"));
        }
    }

    fn abort(&self, pid: Pid, message: &str) -> ! {
        {
            let mut st = self.state.lock();
            let err = SimError::Aborted {
                pid,
                name: st.procs[pid].name.clone(),
                message: message.to_string(),
            };
            self.fail(&mut st, err);
        }
        NativeKernel::unwind()
    }
}

fn spawn_thread(kernel: &Arc<NativeKernel>, name: &str, body: ProcBody) -> Pid {
    let pid;
    let lane;
    {
        let mut st = kernel.state.lock();
        pid = st.procs.len();
        st.procs.push(ProcSlot {
            name: name.to_string(),
            status: Status::Running,
            pending_wakes: 0,
            join_waiters: Vec::new(),
            cv: Arc::new(Condvar::new()),
        });
        st.live += 1;
        st.dispatches += 1;
        lane = if st.recorder.is_enabled() {
            Some(st.recorder.lane(name))
        } else {
            None
        };
    }
    let kern = kernel.clone();
    let tname = name.to_string();
    let start_ns = kern.now_ns();
    let handle = std::thread::Builder::new()
        .name(format!("cp-{tname}"))
        .spawn(move || {
            let ctx = ProcCtx::from_executor(kern.clone(), pid);
            let result = panic::catch_unwind(AssertUnwindSafe(|| body(&ctx)));
            let end_ns = kern.now_ns();
            let mut st = kern.state.lock();
            st.procs[pid].status = Status::Finished;
            st.live -= 1;
            if let Some(lane) = lane {
                // A real wall-clock span per process: this is what gives
                // BENCH reports genuine events/sec numbers on this backend.
                st.recorder.span(
                    lane,
                    "process",
                    &tname,
                    start_ns,
                    end_ns.saturating_sub(start_ns),
                );
            }
            let waiters = std::mem::take(&mut st.procs[pid].join_waiters);
            for w in waiters {
                match st.procs[w].status {
                    Status::Blocked { .. } => {
                        st.procs[w].status = Status::Running;
                        st.dispatches += 1;
                        st.procs[w].cv.notify_one();
                    }
                    Status::Finished | Status::Poisoned => {}
                    Status::Running => st.procs[w].pending_wakes += 1,
                }
            }
            if let Err(payload) = result {
                if payload.downcast_ref::<NativeUnwind>().is_none() {
                    // A genuine panic in user/library code: fail the run.
                    let message = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "<non-string panic payload>".into());
                    let name = st.procs[pid].name.clone();
                    kern.fail(&mut st, SimError::ProcessPanicked { pid, name, message });
                }
            }
            if st.outcome.is_none() {
                if st.live == 0 {
                    st.outcome = Some(Outcome::Completed);
                    kern.done_cv.notify_all();
                } else {
                    // This exit may have removed the last runnable thread.
                    kern.check_deadlock(&mut st);
                }
            }
        })
        .expect("failed to spawn native process thread");
    kernel.handles.lock().push(handle);
    pid
}

/// A complete native run: spawn root processes, then [`run`].
///
/// The wall-clock counterpart of [`cp_des::Simulation`] — same spawn/run
/// shape, same [`SimReport`]/[`SimError`] results, so config layers
/// dispatch between the two without restructuring. `end_time` and incident
/// timestamps are wall-clock nanoseconds since the runner was created and
/// vary run to run; payloads, per-channel FIFO orders, and incident
/// *categories* are the observables the conformance suite diffs against
/// the sim oracle.
///
/// [`run`]: NativeRun::run
///
/// # Example
///
/// ```
/// use cp_native::NativeRun;
/// use cp_des::SimDuration;
///
/// let mut run = NativeRun::new();
/// run.spawn("hello", |ctx| {
///     ctx.advance(SimDuration::from_micros(10));
/// });
/// let report = run.run().unwrap();
/// assert_eq!(report.processes, 1);
/// ```
pub struct NativeRun {
    kernel: Arc<NativeKernel>,
}

impl Default for NativeRun {
    fn default() -> Self {
        Self::new()
    }
}

impl NativeRun {
    /// A fresh runner with the wall clock anchored at zero.
    pub fn new() -> NativeRun {
        NativeRun {
            kernel: NativeKernel::new(),
        }
    }

    /// Attach an observability [`Recorder`]. The kernel reports every
    /// wake-up as a dispatch and emits a wall-clock span per process, so a
    /// snapshot yields real events/sec and msgs/sec for BENCH reports.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.kernel.state.lock().recorder = recorder;
    }

    /// Spawn a root process; its thread starts immediately.
    pub fn spawn<F>(&mut self, name: &str, f: F) -> Pid
    where
        F: FnOnce(&ProcCtx) + Send + 'static,
    {
        spawn_thread(&self.kernel, name, Box::new(f))
    }

    /// Wait for every process to finish, returning the report or the first
    /// failure (deadlock, panic, or abort).
    pub fn run(self) -> Result<SimReport, SimError> {
        {
            let mut st = self.kernel.state.lock();
            st.started = true;
            if st.outcome.is_none() && st.live == 0 {
                // Zero processes (or all finished before run was called).
                st.outcome = Some(Outcome::Completed);
            } else {
                // Catch up on any all-blocked state reached while detection
                // was still gated off.
                self.kernel.check_deadlock(&mut st);
            }
            while st.outcome.is_none() {
                self.kernel.done_cv.wait(&mut st);
            }
        }
        // All processes are finished or poisoned; join their threads.
        let handles = std::mem::take(&mut *self.kernel.handles.lock());
        for h in handles {
            let _ = h.join();
        }
        let mut st = self.kernel.state.lock();
        match st.outcome.take().expect("outcome present") {
            Outcome::Completed => {
                let mut incidents = std::mem::take(&mut st.incidents);
                cp_des::sort_incidents(&mut incidents);
                Ok(SimReport {
                    end_time: SimTime(self.kernel.now_ns()),
                    processes: st.procs.len(),
                    dispatches: st.dispatches,
                    trace: None,
                    incidents,
                })
            }
            Outcome::Failed(e) => Err(e),
        }
    }
}

impl Spawner for NativeRun {
    fn spawn_boxed(&mut self, name: &str, body: ProcBody) -> Pid {
        spawn_thread(&self.kernel, name, body)
    }
}

/// A backend-selected runner: the [`Spawner`] the config layers launch
/// onto, dispatching to [`cp_des::Simulation`] or [`NativeRun`] without the
/// launch code knowing which.
pub enum Runner {
    /// The deterministic DES oracle.
    Sim(cp_des::Simulation),
    /// Free-running OS threads.
    Native(NativeRun),
}

impl Runner {
    /// A runner for the requested backend.
    pub fn for_backend(backend: Backend) -> Runner {
        match backend {
            Backend::Sim => Runner::Sim(cp_des::Simulation::new()),
            Backend::Native => Runner::Native(NativeRun::new()),
        }
    }

    /// Which backend this runner drives.
    pub fn backend(&self) -> Backend {
        match self {
            Runner::Sim(_) => Backend::Sim,
            Runner::Native(_) => Backend::Native,
        }
    }

    /// Schedule-exploration seed — meaningful only on the sim backend (the
    /// native thread scheduler is the OS's); ignored on native.
    pub fn set_schedule_seed(&mut self, seed: u64) {
        if let Runner::Sim(sim) = self {
            sim.set_schedule_seed(seed);
        }
    }

    /// Fail the run once virtual time passes `limit` — meaningful only on
    /// the sim backend (native threads have no virtual clock); ignored on
    /// native.
    pub fn set_time_limit(&mut self, limit: cp_des::SimTime) {
        if let Runner::Sim(sim) = self {
            sim.set_time_limit(limit);
        }
    }

    /// Attach an observability [`Recorder`] to whichever backend runs.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        match self {
            Runner::Sim(sim) => sim.set_recorder(recorder),
            Runner::Native(run) => run.set_recorder(recorder),
        }
    }

    /// Drive the run to completion.
    pub fn run(self) -> Result<SimReport, SimError> {
        match self {
            Runner::Sim(sim) => sim.run(),
            Runner::Native(run) => run.run(),
        }
    }
}

impl Spawner for Runner {
    fn spawn_boxed(&mut self, name: &str, body: ProcBody) -> Pid {
        match self {
            Runner::Sim(sim) => sim.spawn_boxed(name, body),
            Runner::Native(run) => run.spawn_boxed(name, body),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex as PMutex;

    #[test]
    fn single_process_completes() {
        let mut run = NativeRun::new();
        run.spawn("p", |ctx| {
            assert_eq!(ctx.backend(), Backend::Native);
            assert_eq!(ctx.name(), "p");
            ctx.advance(SimDuration::from_micros(3));
        });
        let r = run.run().unwrap();
        assert_eq!(r.processes, 1);
        assert!(r.incidents.is_empty());
    }

    #[test]
    fn empty_run_completes() {
        let r = NativeRun::new().run().unwrap();
        assert_eq!(r.processes, 0);
    }

    #[test]
    fn wall_clock_advances() {
        let mut run = NativeRun::new();
        run.spawn("sleeper", |ctx| {
            let t0 = ctx.now();
            ctx.advance(SimDuration::from_micros(500));
            assert!(ctx.now() > t0, "wall clock must move across a sleep");
        });
        run.run().unwrap();
    }

    #[test]
    fn block_unblock_roundtrip() {
        let mut run = NativeRun::new();
        let flag = Arc::new(PMutex::new(false));
        let f2 = flag.clone();
        let waiter = run.spawn("waiter", move |ctx| {
            ctx.block("the signal");
            *f2.lock() = true;
        });
        run.spawn("waker", move |ctx| {
            ctx.advance(SimDuration::from_micros(100));
            ctx.unblock(waiter, SimDuration::ZERO);
        });
        run.run().unwrap();
        assert!(*flag.lock());
    }

    #[test]
    fn pending_wake_prevents_lost_signal() {
        // An unblock delivered while the target is runnable must be banked
        // and consumed by its next block — exactly the sim semantics the
        // channel layers' check-then-register-then-block protocol needs.
        for _ in 0..20 {
            let mut run = NativeRun::new();
            let t = run.spawn("t", |ctx| {
                ctx.advance(SimDuration::from_micros(200));
                ctx.block("should consume the banked wake");
            });
            run.spawn("w", move |ctx| {
                ctx.unblock(t, SimDuration::ZERO);
            });
            run.run().unwrap();
        }
    }

    #[test]
    fn deadlock_is_detected_and_named() {
        let mut run = NativeRun::new();
        run.spawn("stuck-a", |ctx| ctx.block("peer message"));
        run.spawn("stuck-b", |ctx| ctx.block("peer message"));
        match run.run() {
            Err(SimError::Deadlock { blocked, .. }) => {
                assert_eq!(blocked.len(), 2);
                assert!(blocked.iter().any(|(_, n, _)| n == "stuck-a"));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn timed_block_is_not_a_deadlock() {
        // One process in a timed block + one in an untimed block: the timed
        // one wakes itself, so this must resolve, not deadlock.
        let mut run = NativeRun::new();
        let t = run.spawn("stuck", |ctx| ctx.block("peer message"));
        run.spawn("timed", move |ctx| {
            let woken = ctx.block_timeout("poll window", SimDuration::from_micros(500));
            assert!(!woken, "nobody unblocked the timed waiter");
            ctx.unblock(t, SimDuration::ZERO);
        });
        run.run().unwrap();
    }

    #[test]
    fn block_timeout_woken_early() {
        let mut run = NativeRun::new();
        let t = run.spawn("t", |ctx| {
            let woken = ctx.block_timeout("signal", SimDuration::from_millis(30_000));
            assert!(woken, "unblock must win long before the deadline");
        });
        run.spawn("w", move |ctx| {
            ctx.advance(SimDuration::from_micros(100));
            ctx.unblock(t, SimDuration::ZERO);
        });
        run.run().unwrap();
    }

    #[test]
    fn panic_in_process_fails_run() {
        let mut run = NativeRun::new();
        run.spawn("bad", |_ctx| panic!("boom {}", 42));
        run.spawn("innocent", |ctx| ctx.block("never"));
        match run.run() {
            Err(SimError::ProcessPanicked { name, message, .. }) => {
                assert_eq!(name, "bad");
                assert!(message.contains("boom 42"));
            }
            other => panic!("expected panic error, got {other:?}"),
        }
    }

    #[test]
    fn abort_reports_message() {
        let mut run = NativeRun::new();
        run.spawn("aborter", |ctx| {
            ctx.advance(SimDuration::from_micros(1));
            ctx.abort("PI_Write: channel endpoint mismatch");
        });
        run.spawn("bystander", |ctx| ctx.block("never comes"));
        match run.run() {
            Err(SimError::Aborted { message, .. }) => {
                assert!(message.contains("endpoint mismatch"));
            }
            other => panic!("expected abort, got {other:?}"),
        }
    }

    #[test]
    fn spawn_nested_and_join() {
        let mut run = NativeRun::new();
        let done = Arc::new(PMutex::new(false));
        let d2 = done.clone();
        run.spawn("parent", move |ctx| {
            let d3 = d2.clone();
            let child = ctx.spawn("child", move |c| {
                c.advance(SimDuration::from_micros(200));
                *d3.lock() = true;
            });
            ctx.join(child);
            assert!(*d2.lock(), "join returned before the child finished");
        });
        let r = run.run().unwrap();
        assert_eq!(r.processes, 2);
    }

    #[test]
    fn join_already_finished_process_returns_immediately() {
        let mut run = NativeRun::new();
        run.spawn("parent", |ctx| {
            let child = ctx.spawn("quick", |_c| {});
            ctx.advance(SimDuration::from_millis(2));
            ctx.join(child);
        });
        run.run().unwrap();
    }

    #[test]
    fn incidents_are_collected_in_report() {
        let mut run = NativeRun::new();
        run.spawn("survivor", |ctx| {
            ctx.report_incident(
                IncidentCategory::PeerLost,
                "rank 3 died; abandoning channel 7",
            );
        });
        let r = run.run().unwrap();
        assert_eq!(r.incidents.len(), 1);
        assert_eq!(r.incidents[0].category, IncidentCategory::PeerLost);
        assert_eq!(r.incidents[0].process, "survivor");
    }

    #[test]
    fn recorder_sees_dispatches_and_process_spans() {
        let mut run = NativeRun::new();
        let rec = Recorder::enabled();
        run.set_recorder(rec.clone());
        let t = run.spawn("pinger", |ctx| ctx.block("pong"));
        run.spawn("ponger", move |ctx| {
            ctx.advance(SimDuration::from_micros(50));
            ctx.unblock(t, SimDuration::ZERO);
        });
        run.run().unwrap();
        let snap = rec.snapshot();
        assert!(snap.des.dispatches >= 1, "wakes count as dispatches");
        assert!(
            rec.events().iter().any(|e| e.name == "pinger"),
            "each process leaves a wall-clock span"
        );
    }

    #[test]
    fn runner_dispatches_per_backend() {
        for backend in [Backend::Sim, Backend::Native] {
            let mut runner = Runner::for_backend(backend);
            assert_eq!(runner.backend(), backend);
            runner.set_schedule_seed(7); // no-op on native
            let seen = Arc::new(PMutex::new(None));
            let s2 = seen.clone();
            runner.spawn_boxed(
                "probe",
                Box::new(move |ctx| {
                    *s2.lock() = Some(ctx.backend());
                }),
            );
            runner.run().unwrap();
            assert_eq!(*seen.lock(), Some(backend));
        }
    }

    #[test]
    fn many_producers_one_consumer_fifo_per_producer() {
        // A relay-shaped stress: N producers bank wakes into one consumer
        // via a shared queue; per-producer FIFO order must hold.
        let queue: Arc<PMutex<Vec<(usize, u32)>>> = Arc::new(PMutex::new(Vec::new()));
        let mut run = NativeRun::new();
        let total = 4 * 50;
        let q = queue.clone();
        let consumer = run.spawn("consumer", move |ctx| {
            while q.lock().len() < total {
                ctx.block("items");
            }
        });
        for p in 0..4usize {
            let q = queue.clone();
            run.spawn(&format!("producer{p}"), move |ctx| {
                for i in 0..50u32 {
                    q.lock().push((p, i));
                    ctx.unblock(consumer, SimDuration::ZERO);
                    if i % 16 == 0 {
                        ctx.advance(SimDuration::from_micros(10));
                    }
                }
            });
        }
        run.run().unwrap();
        let items = queue.lock().clone();
        assert_eq!(items.len(), total);
        for p in 0..4usize {
            let seq: Vec<u32> = items
                .iter()
                .filter(|(o, _)| *o == p)
                .map(|(_, i)| *i)
                .collect();
            assert_eq!(
                seq,
                (0..50).collect::<Vec<_>>(),
                "producer {p} out of order"
            );
        }
    }
}
