//! The discrete-event kernel: virtual clock, event queue, and cooperative
//! scheduling of thread-backed simulated processes.
//!
//! # Execution model
//!
//! Every simulated process runs on its own OS thread, but the kernel grants
//! the CPU to **exactly one** process at a time, always the one owning the
//! earliest `(virtual_time, sequence)` event in the queue. A process gives up
//! the CPU only inside kernel calls ([`ProcCtx::advance`], [`ProcCtx::block`],
//! [`ProcCtx::join`], or process exit), so between kernel calls a process may
//! freely mutate shared state without data races *or* lost determinism: the
//! interleaving is a pure function of the event timestamps and spawn order.
//!
//! If the event queue drains while unfinished processes remain, every one of
//! them is blocked with no possible waker: the kernel reports a
//! [`SimError::Deadlock`] naming each process and its blocking reason.
//!
//! The kernel is one implementation of the [`Executor`] seam; `cp-native`
//! provides a wall-clock thread implementation of the same trait, and
//! [`ProcCtx`] dispatches to whichever substrate spawned the process.

use crate::backend::{Backend, Executor, ProcBody, Spawner};
use crate::error::{Incident, IncidentCategory, Pid, SimError, SimReport};
use crate::time::{SimDuration, SimTime};
use cp_trace::Recorder;
use parking_lot::{Condvar, Mutex};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;

/// Payload used to unwind a simulated process when the simulation is torn
/// down early (deadlock, abort, or another process panicking).
struct SimUnwind;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Status {
    /// Has an event in the queue; parked until that event is dispatched.
    Waiting,
    /// Currently owns the virtual CPU.
    Running,
    /// Parked with no queued event; needs an `unblock` to become Waiting.
    Blocked(String),
    /// Thread has exited.
    Finished,
    /// Simulation is tearing down; parked threads must unwind on wake.
    Poisoned,
}

struct ProcSlot {
    name: String,
    status: Status,
    /// Wake permits delivered while the process was not blocked; consumed by
    /// the next `block` call without yielding.
    pending_wakes: u32,
    /// Sequence number of the most recent event pushed for this process.
    /// Dispatch honours a popped event only if its sequence matches, which
    /// invalidates stale timeout events left behind when a timed block is
    /// woken early by `unblock`.
    expected_seq: Option<u64>,
    /// Set by dispatch when the wake came from a `block_timeout` deadline
    /// rather than an `unblock`; consumed by `block_timeout` on resume.
    timed_out: bool,
    /// Processes blocked in `join` on this process.
    join_waiters: Vec<Pid>,
    cv: Arc<Condvar>,
}

enum Outcome {
    Completed,
    Failed(SimError),
}

struct KState {
    now: SimTime,
    limit: Option<SimTime>,
    next_seq: u64,
    /// Schedule-exploration seed. Zero (the default) orders same-timestamp
    /// events FIFO by sequence number; any other value permutes the
    /// tie-break deterministically (see [`Kernel::push_event`]), yielding a
    /// different — but equally legal and fully reproducible — interleaving.
    sched_seed: u64,
    /// Entries are `(time, tie_key, seq, pid)`: time first, then the seeded
    /// tie key for same-timestamp events, with the raw sequence number as
    /// the final total-order tiebreaker.
    queue: BinaryHeap<Reverse<(u64, u64, u64, Pid)>>,
    procs: Vec<ProcSlot>,
    /// Number of processes not yet Finished.
    live: usize,
    /// True while some process owns the virtual CPU.
    cpu_busy: bool,
    outcome: Option<Outcome>,
    dispatches: u64,
    trace: Option<Vec<(SimTime, Pid)>>,
    incidents: Vec<Incident>,
    /// Observability hook; disabled by default, so recording costs one
    /// branch per dispatch unless [`Simulation::set_recorder`] arms it.
    recorder: Recorder,
}

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixing function used to
/// derive schedule tie-break keys from `(seed, seq)` pairs.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub(crate) struct Kernel {
    state: Mutex<KState>,
    done_cv: Condvar,
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Self-reference so `Executor::spawn_boxed` can hand each new process a
    /// `ProcCtx` holding an owning handle on this kernel.
    me: Weak<Kernel>,
}

impl Kernel {
    fn new(trace: bool) -> Arc<Kernel> {
        Arc::new_cyclic(|me| Kernel {
            state: Mutex::new(KState {
                now: SimTime::ZERO,
                limit: None,
                next_seq: 0,
                sched_seed: 0,
                queue: BinaryHeap::new(),
                procs: Vec::new(),
                live: 0,
                cpu_busy: false,
                outcome: None,
                dispatches: 0,
                trace: if trace { Some(Vec::new()) } else { None },
                incidents: Vec::new(),
                recorder: Recorder::disabled(),
            }),
            done_cv: Condvar::new(),
            handles: Mutex::new(Vec::new()),
            me: me.clone(),
        })
    }

    /// Push an event waking `pid` at time `at`. The new event supersedes any
    /// earlier one still queued for `pid` (see [`ProcSlot::expected_seq`]).
    ///
    /// With a zero schedule seed the tie key equals the sequence number, so
    /// same-timestamp events dispatch FIFO. A nonzero seed hashes the seed
    /// with the sequence number instead, permuting only the order of
    /// same-timestamp events across processes — every schedule it produces is
    /// still a legal interleaving, and the same seed always reproduces the
    /// same schedule.
    fn push_event(st: &mut KState, at: SimTime, pid: Pid) {
        let seq = st.next_seq;
        st.next_seq += 1;
        st.procs[pid].expected_seq = Some(seq);
        let tie = if st.sched_seed == 0 {
            seq
        } else {
            splitmix64(st.sched_seed ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        };
        st.queue.push(Reverse((at.0, tie, seq, pid)));
    }

    /// Hand the virtual CPU to the owner of the earliest event, or end the
    /// simulation (completion or deadlock). Caller must have already released
    /// the CPU (`cpu_busy == false`).
    fn dispatch(&self, st: &mut KState) {
        debug_assert!(!st.cpu_busy);
        if st.outcome.is_some() {
            return;
        }
        while let Some(Reverse((t, _tie, seq, pid))) = st.queue.pop() {
            // A popped event is live only if it is the most recent one pushed
            // for its process; superseded events (e.g. a timeout whose block
            // was already woken by `unblock`) are skipped, as are events for
            // processes that finished or were torn down meanwhile.
            if st.procs[pid].expected_seq != Some(seq) {
                continue;
            }
            // A live event for a Blocked process can only be a pending
            // `block_timeout` deadline: plain `block` queues nothing.
            let timed_wake = match st.procs[pid].status {
                Status::Waiting => false,
                Status::Blocked(_) => true,
                _ => continue,
            };
            debug_assert!(t >= st.now.0, "event queue went backwards");
            if let Some(limit) = st.limit {
                if SimTime(t) > limit {
                    let err = SimError::TimeLimitExceeded { limit };
                    self.fail(st, err);
                    return;
                }
            }
            st.now = SimTime(t);
            st.procs[pid].status = Status::Running;
            st.procs[pid].timed_out = timed_wake;
            st.cpu_busy = true;
            st.dispatches += 1;
            st.recorder.record_dispatch(st.now.0, st.queue.len());
            if let Some(trace) = st.trace.as_mut() {
                trace.push((st.now, pid));
            }
            st.procs[pid].cv.notify_one();
            return;
        }
        // No runnable event. Either everything finished or we are deadlocked.
        if st.live == 0 {
            st.outcome = Some(Outcome::Completed);
        } else {
            let blocked = st
                .procs
                .iter()
                .enumerate()
                .filter_map(|(pid, p)| match &p.status {
                    Status::Blocked(reason) => Some((pid, p.name.clone(), reason.clone())),
                    _ => None,
                })
                .collect();
            st.outcome = Some(Outcome::Failed(SimError::Deadlock {
                at: st.now,
                blocked,
            }));
            self.poison(st);
        }
        self.done_cv.notify_all();
    }

    /// Mark all parked processes poisoned and wake them so their threads can
    /// unwind and exit.
    fn poison(&self, st: &mut KState) {
        for p in st.procs.iter_mut() {
            match p.status {
                Status::Waiting | Status::Blocked(_) => {
                    p.status = Status::Poisoned;
                    p.cv.notify_one();
                }
                _ => {}
            }
        }
    }

    /// Park the calling process until it is granted the CPU. Must be called
    /// with `pid`'s status already set to Waiting/Blocked and the CPU
    /// released. Unwinds if the simulation is tearing down.
    fn park(&self, pid: Pid) {
        let cv = {
            let st = self.state.lock();
            st.procs[pid].cv.clone()
        };
        let mut st = self.state.lock();
        loop {
            match &st.procs[pid].status {
                Status::Running => return,
                Status::Poisoned => {
                    drop(st);
                    // resume_unwind skips the panic hook: teardown unwinds are
                    // expected control flow, not reportable panics.
                    panic::resume_unwind(Box::new(SimUnwind));
                }
                _ => cv.wait(&mut st),
            }
        }
    }

    fn fail(&self, st: &mut KState, err: SimError) {
        if st.outcome.is_none() {
            st.outcome = Some(Outcome::Failed(err));
        }
        self.poison(st);
        self.done_cv.notify_all();
    }
}

impl Executor for Kernel {
    fn backend(&self) -> Backend {
        Backend::Sim
    }

    fn proc_name(&self, pid: Pid) -> String {
        self.state.lock().procs[pid].name.clone()
    }

    fn now(&self) -> SimTime {
        self.state.lock().now
    }

    fn advance(&self, pid: Pid, d: SimDuration) {
        {
            let mut st = self.state.lock();
            debug_assert_eq!(st.procs[pid].status, Status::Running);
            let at = st.now + d;
            Kernel::push_event(&mut st, at, pid);
            st.procs[pid].status = Status::Waiting;
            st.cpu_busy = false;
            self.dispatch(&mut st);
        }
        self.park(pid);
    }

    fn block(&self, pid: Pid, reason: &str) {
        {
            let mut st = self.state.lock();
            debug_assert_eq!(st.procs[pid].status, Status::Running);
            if st.procs[pid].pending_wakes > 0 {
                st.procs[pid].pending_wakes -= 1;
                return;
            }
            st.procs[pid].status = Status::Blocked(reason.to_string());
            st.cpu_busy = false;
            self.dispatch(&mut st);
        }
        self.park(pid);
    }

    fn block_timeout(&self, pid: Pid, reason: &str, timeout: SimDuration) -> bool {
        {
            let mut st = self.state.lock();
            debug_assert_eq!(st.procs[pid].status, Status::Running);
            if st.procs[pid].pending_wakes > 0 {
                st.procs[pid].pending_wakes -= 1;
                return true;
            }
            let at = st.now + timeout;
            st.procs[pid].status = Status::Blocked(reason.to_string());
            st.procs[pid].timed_out = false;
            Kernel::push_event(&mut st, at, pid);
            st.cpu_busy = false;
            self.dispatch(&mut st);
        }
        self.park(pid);
        let mut st = self.state.lock();
        let timed_out = st.procs[pid].timed_out;
        st.procs[pid].timed_out = false;
        !timed_out
    }

    fn unblock(&self, pid: Pid, delay: SimDuration) {
        let mut st = self.state.lock();
        let at = st.now + delay;
        match st.procs[pid].status {
            Status::Blocked(_) => {
                st.procs[pid].status = Status::Waiting;
                Kernel::push_event(&mut st, at, pid);
            }
            Status::Finished | Status::Poisoned => {}
            _ => st.procs[pid].pending_wakes += 1,
        }
    }

    fn report_incident(&self, pid: Pid, category: IncidentCategory, detail: &str) {
        let mut st = self.state.lock();
        let at = st.now;
        let process = st.procs[pid].name.clone();
        st.recorder
            .record_incident(at.0, &process, category.as_str(), detail);
        st.incidents.push(Incident {
            at,
            process,
            category,
            detail: detail.to_string(),
        });
    }

    fn spawn_boxed(&self, name: &str, body: ProcBody) -> Pid {
        let kernel = self.me.upgrade().expect("kernel alive while spawning");
        spawn_process(&kernel, name, body)
    }

    fn join(&self, me: Pid, target: Pid) {
        loop {
            {
                let mut st = self.state.lock();
                if st.procs[target].status == Status::Finished {
                    return;
                }
                st.procs[target].join_waiters.push(me);
            }
            self.block(me, &format!("join(pid={target})"));
        }
    }

    fn abort(&self, pid: Pid, message: &str) -> ! {
        {
            let mut st = self.state.lock();
            let err = SimError::Aborted {
                pid,
                name: st.procs[pid].name.clone(),
                message: message.to_string(),
            };
            self.fail(&mut st, err);
        }
        panic::resume_unwind(Box::new(SimUnwind));
    }
}

/// Handle a simulated process uses to interact with the virtual world.
///
/// A `ProcCtx` is passed by reference into every process closure. It is also
/// `Clone` so library layers can stash copies inside connection objects.
/// All calls dispatch through the [`Executor`] that spawned the process, so
/// the same program body runs unchanged on the DES kernel and on
/// `cp-native`'s wall-clock threads.
#[derive(Clone)]
pub struct ProcCtx {
    exec: Arc<dyn Executor>,
    pid: Pid,
}

impl std::fmt::Debug for ProcCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ProcCtx(pid={})", self.pid)
    }
}

impl ProcCtx {
    /// Build the context handed to process `pid` of `exec`. Only backend
    /// implementations ([`Simulation`], `cp-native`) need this.
    pub fn from_executor(exec: Arc<dyn Executor>, pid: Pid) -> ProcCtx {
        ProcCtx { exec, pid }
    }

    /// Which execution substrate this process runs on.
    pub fn backend(&self) -> Backend {
        self.exec.backend()
    }

    /// This process's identifier.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// This process's registered name.
    pub fn name(&self) -> String {
        self.exec.proc_name(self.pid)
    }

    /// Current time: virtual on the DES backend, wall-clock nanoseconds
    /// since launch on the native backend.
    pub fn now(&self) -> SimTime {
        self.exec.now()
    }

    /// Spend `d` of virtual time (the process "computes" for that long).
    /// Other processes with earlier events run meanwhile.
    pub fn advance(&self, d: SimDuration) {
        self.exec.advance(self.pid, d);
    }

    /// Yield the CPU without consuming virtual time. Any same-time events
    /// queued earlier run first.
    pub fn yield_now(&self) {
        self.advance(SimDuration::ZERO);
    }

    /// Park this process until another process calls [`ProcCtx::unblock`] on
    /// it. `reason` appears in deadlock diagnostics.
    ///
    /// If an unblock was already delivered while this process was running
    /// (a "pending wake"), the call consumes it and returns immediately.
    pub fn block(&self, reason: &str) {
        self.exec.block(self.pid, reason);
    }

    /// Park this process until another process calls [`ProcCtx::unblock`] on
    /// it **or** `timeout` of virtual time elapses, whichever happens first.
    ///
    /// Returns `true` if the process was woken by an `unblock` (or consumed a
    /// pending wake without parking) and `false` if the deadline fired. On a
    /// timeout the clock reads exactly `block-time + timeout`. A stale
    /// deadline left behind by an early wake is discarded, never delivered.
    pub fn block_timeout(&self, reason: &str, timeout: SimDuration) -> bool {
        self.exec.block_timeout(self.pid, reason, timeout)
    }

    /// Record a non-fatal degradation [`Incident`] (e.g. "peer rank died,
    /// abandoning channel 3"). Incidents are collected in
    /// [`SimReport::incidents`] so fault-injection harnesses can assert on
    /// exactly what degraded.
    pub fn report_incident(&self, category: IncidentCategory, detail: &str) {
        self.exec.report_incident(self.pid, category, detail);
    }

    /// Wake `pid` no earlier than `delay` from now. If `pid` is not currently
    /// blocked, a pending wake is recorded instead (and the delay is dropped:
    /// the target was busy, so the waker's latency has already been absorbed
    /// by whatever the target was doing).
    pub fn unblock(&self, pid: Pid, delay: SimDuration) {
        self.exec.unblock(pid, delay);
    }

    /// Spawn a new simulated process. It becomes runnable at the current
    /// virtual time (after the caller next yields).
    pub fn spawn<F>(&self, name: &str, f: F) -> Pid
    where
        F: FnOnce(&ProcCtx) + Send + 'static,
    {
        self.exec.spawn_boxed(name, Box::new(f))
    }

    /// Block until process `pid` finishes.
    pub fn join(&self, pid: Pid) {
        self.exec.join(self.pid, pid);
    }

    /// Abort the whole simulation with a diagnostic (used for fatal API
    /// misuse, mirroring Pilot's abort-with-message behaviour). Unwinds the
    /// calling process and never returns.
    pub fn abort(&self, message: &str) -> ! {
        self.exec.abort(self.pid, message)
    }
}

fn spawn_process(kernel: &Arc<Kernel>, name: &str, f: ProcBody) -> Pid {
    let pid;
    {
        let mut st = kernel.state.lock();
        pid = st.procs.len();
        st.procs.push(ProcSlot {
            name: name.to_string(),
            status: Status::Waiting,
            pending_wakes: 0,
            expected_seq: None,
            timed_out: false,
            join_waiters: Vec::new(),
            cv: Arc::new(Condvar::new()),
        });
        st.live += 1;
        let now = st.now;
        Kernel::push_event(&mut st, now, pid);
    }
    let kern = kernel.clone();
    let tname = name.to_string();
    let handle = std::thread::Builder::new()
        .name(format!("sim-{tname}"))
        .spawn(move || {
            let ctx = ProcCtx::from_executor(kern.clone(), pid);
            let result = panic::catch_unwind(AssertUnwindSafe(|| {
                kern.park(pid);
                f(&ctx)
            }));
            let mut st = kern.state.lock();
            st.procs[pid].status = Status::Finished;
            st.live -= 1;
            let waiters = std::mem::take(&mut st.procs[pid].join_waiters);
            let now = st.now;
            for w in waiters {
                match st.procs[w].status {
                    Status::Blocked(_) => {
                        st.procs[w].status = Status::Waiting;
                        Kernel::push_event(&mut st, now, w);
                    }
                    Status::Finished | Status::Poisoned => {}
                    _ => st.procs[w].pending_wakes += 1,
                }
            }
            if let Err(payload) = result {
                if payload.downcast_ref::<SimUnwind>().is_none() {
                    // A genuine panic in user/library code: fail the run.
                    let message = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "<non-string panic payload>".into());
                    let name = st.procs[pid].name.clone();
                    kern.fail(&mut st, SimError::ProcessPanicked { pid, name, message });
                }
            }
            st.cpu_busy = false;
            kern.dispatch(&mut st);
        })
        .expect("failed to spawn simulation thread");
    kernel.handles.lock().push(handle);
    pid
}

/// A complete simulation: build it, spawn root processes, then [`run`].
///
/// [`run`]: Simulation::run
///
/// # Example
///
/// ```
/// use cp_des::{Simulation, SimDuration};
///
/// let mut sim = Simulation::new();
/// sim.spawn("hello", |ctx| {
///     ctx.advance(SimDuration::from_micros(10));
/// });
/// let report = sim.run().unwrap();
/// assert_eq!(report.end_time.as_micros_f64(), 10.0);
/// ```
pub struct Simulation {
    kernel: Arc<Kernel>,
}

impl Default for Simulation {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulation {
    /// A fresh simulation with the clock at zero.
    pub fn new() -> Simulation {
        Simulation {
            kernel: Kernel::new(false),
        }
    }

    /// A fresh simulation that records a `(time, pid)` dispatch trace, for
    /// determinism checks.
    pub fn with_trace() -> Simulation {
        Simulation {
            kernel: Kernel::new(true),
        }
    }

    /// Fail the run with [`SimError::TimeLimitExceeded`] if virtual time
    /// would pass `limit` — a guard against runaway or livelocked
    /// simulations (e.g. a service process polling forever).
    pub fn set_time_limit(&mut self, limit: SimTime) {
        self.kernel.state.lock().limit = Some(limit);
    }

    /// Select a schedule-exploration seed. Seed `0` (the default) keeps the
    /// canonical FIFO ordering of same-timestamp events; any nonzero seed
    /// deterministically permutes those ties, producing an alternative legal
    /// interleaving. Call before spawning processes so the whole run is
    /// scheduled under the same seed.
    pub fn set_schedule_seed(&mut self, seed: u64) {
        self.kernel.state.lock().sched_seed = seed;
    }

    /// Attach an observability [`Recorder`]. The kernel reports every
    /// scheduler dispatch (with the pending-queue depth) and forwards each
    /// [`Incident`] to it. The default recorder is disabled and costs one
    /// branch per dispatch; recording never consumes virtual time, so the
    /// schedule is identical with and without it.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.kernel.state.lock().recorder = recorder;
    }

    /// Spawn a root process, runnable at t = 0.
    pub fn spawn<F>(&mut self, name: &str, f: F) -> Pid
    where
        F: FnOnce(&ProcCtx) + Send + 'static,
    {
        spawn_process(&self.kernel, name, Box::new(f))
    }

    /// Drive the simulation to completion, returning the report or the first
    /// failure (deadlock, panic, or abort).
    pub fn run(self) -> Result<SimReport, SimError> {
        {
            let mut st = self.kernel.state.lock();
            self.kernel.dispatch(&mut st);
            while st.outcome.is_none() {
                self.kernel.done_cv.wait(&mut st);
            }
        }
        // All processes are finished or poisoned; join their threads.
        let handles = std::mem::take(&mut *self.kernel.handles.lock());
        for h in handles {
            let _ = h.join();
        }
        let mut st = self.kernel.state.lock();
        match st.outcome.take().expect("outcome present") {
            Outcome::Completed => {
                let mut incidents = std::mem::take(&mut st.incidents);
                crate::error::sort_incidents(&mut incidents);
                Ok(SimReport {
                    end_time: st.now,
                    processes: st.procs.len(),
                    dispatches: st.dispatches,
                    trace: st.trace.take(),
                    incidents,
                })
            }
            Outcome::Failed(e) => Err(e),
        }
    }
}

impl Spawner for Simulation {
    fn spawn_boxed(&mut self, name: &str, body: ProcBody) -> Pid {
        spawn_process(&self.kernel, name, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex as PMutex;
    use std::sync::Arc;

    #[test]
    fn single_process_advances_clock() {
        let mut sim = Simulation::new();
        sim.spawn("p", |ctx| {
            assert_eq!(ctx.now(), SimTime::ZERO);
            ctx.advance(SimDuration::from_micros(3));
            assert_eq!(ctx.now().as_nanos(), 3_000);
        });
        let r = sim.run().unwrap();
        assert_eq!(r.end_time.as_nanos(), 3_000);
        assert_eq!(r.processes, 1);
    }

    #[test]
    fn sim_backend_identifies_itself() {
        let mut sim = Simulation::new();
        sim.spawn("p", |ctx| {
            assert_eq!(ctx.backend(), Backend::Sim);
        });
        sim.run().unwrap();
    }

    #[test]
    fn processes_interleave_in_time_order() {
        let log: Arc<PMutex<Vec<(&'static str, u64)>>> = Arc::new(PMutex::new(Vec::new()));
        let mut sim = Simulation::new();
        for (name, step) in [("a", 10u64), ("b", 15u64)] {
            let log = log.clone();
            sim.spawn(name, move |ctx| {
                for _ in 0..3 {
                    ctx.advance(SimDuration::from_micros(step));
                    log.lock().push((name, ctx.now().as_nanos() / 1000));
                }
            });
        }
        sim.run().unwrap();
        let got = log.lock().clone();
        assert_eq!(
            got,
            vec![
                ("a", 10),
                ("b", 15),
                ("a", 20),
                // At the t=30 tie, b enqueued its event first (at t=15, vs
                // a's at t=20), so b's lower sequence number wins.
                ("b", 30),
                ("a", 30),
                ("b", 45)
            ]
        );
    }

    /// Run the two-process interleave scenario under a schedule seed and
    /// return the observed `(name, time_us)` log.
    fn tie_scenario(seed: u64) -> Vec<(&'static str, u64)> {
        let log: Arc<PMutex<Vec<(&'static str, u64)>>> = Arc::new(PMutex::new(Vec::new()));
        let mut sim = Simulation::new();
        sim.set_schedule_seed(seed);
        for name in ["a", "b", "c", "d"] {
            let log = log.clone();
            sim.spawn(name, move |ctx| {
                for _ in 0..4 {
                    ctx.advance(SimDuration::from_micros(10));
                    log.lock().push((name, ctx.now().as_nanos() / 1000));
                }
            });
        }
        sim.run().unwrap();
        let got = log.lock().clone();
        got
    }

    #[test]
    fn schedule_seed_zero_keeps_fifo_ties() {
        // Seed 0 must be byte-identical to the default FIFO schedule: every
        // golden trace in the repo depends on this.
        assert_eq!(tie_scenario(0), tie_scenario(0));
        let got = tie_scenario(0);
        // FIFO tie-break: at each 10us step all four wake in spawn order.
        let spawn_order: Vec<&str> = got.iter().take(4).map(|(n, _)| *n).collect();
        assert_eq!(spawn_order, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn schedule_seed_is_deterministic_and_permutes_ties() {
        // Same seed -> same schedule, every time.
        for seed in 1..=5u64 {
            assert_eq!(tie_scenario(seed), tie_scenario(seed));
        }
        // Some nonzero seed must reorder at least one same-time tie; the
        // multiset of (name, time) pairs is schedule-invariant either way.
        let baseline = tie_scenario(0);
        let mut permuted = false;
        for seed in 1..=20u64 {
            let alt = tie_scenario(seed);
            let mut a = baseline.clone();
            let mut b = alt.clone();
            a.sort();
            b.sort();
            assert_eq!(a, b, "seed {seed} changed outcomes, not just order");
            if alt != baseline {
                permuted = true;
            }
        }
        assert!(permuted, "no seed in 1..=20 permuted any tie");
    }

    #[test]
    fn block_unblock_roundtrip() {
        let mut sim = Simulation::new();
        let mut ids = Vec::new();
        let flag = Arc::new(PMutex::new(false));
        let f2 = flag.clone();
        ids.push(0); // placeholder, replaced below
        let waiter = sim.spawn("waiter", move |ctx| {
            ctx.block("the signal");
            *f2.lock() = true;
            assert_eq!(ctx.now().as_nanos(), 7_000);
        });
        ids[0] = waiter;
        sim.spawn("waker", move |ctx| {
            ctx.advance(SimDuration::from_micros(2));
            ctx.unblock(waiter, SimDuration::from_micros(5));
        });
        sim.run().unwrap();
        assert!(*flag.lock());
    }

    #[test]
    fn pending_wake_prevents_lost_signal() {
        // Unblock delivered while target is running must not be lost.
        let mut sim = Simulation::new();
        let t = sim.spawn("t", |ctx| {
            ctx.advance(SimDuration::from_micros(10));
            // Wake was delivered at t=1us while we were "computing".
            ctx.block("should not actually block");
            ctx.advance(SimDuration::from_micros(1));
        });
        sim.spawn("w", move |ctx| {
            ctx.advance(SimDuration::from_micros(1));
            ctx.unblock(t, SimDuration::ZERO);
        });
        let r = sim.run().unwrap();
        assert_eq!(r.end_time.as_nanos(), 11_000);
    }

    #[test]
    fn deadlock_is_detected_and_named() {
        let mut sim = Simulation::new();
        sim.spawn("stuck-a", |ctx| ctx.block("peer message"));
        sim.spawn("stuck-b", |ctx| ctx.block("peer message"));
        match sim.run() {
            Err(SimError::Deadlock { blocked, .. }) => {
                assert_eq!(blocked.len(), 2);
                assert!(blocked.iter().any(|(_, n, _)| n == "stuck-a"));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn panic_in_process_fails_run() {
        let mut sim = Simulation::new();
        sim.spawn("bad", |_ctx| panic!("boom {}", 42));
        sim.spawn("innocent", |ctx| ctx.block("never"));
        match sim.run() {
            Err(SimError::ProcessPanicked { name, message, .. }) => {
                assert_eq!(name, "bad");
                assert!(message.contains("boom 42"));
            }
            other => panic!("expected panic error, got {other:?}"),
        }
    }

    #[test]
    fn abort_reports_message() {
        let mut sim = Simulation::new();
        sim.spawn("aborter", |ctx| {
            ctx.advance(SimDuration::from_micros(1));
            ctx.abort("PI_Write: channel endpoint mismatch");
        });
        match sim.run() {
            Err(SimError::Aborted { message, .. }) => {
                assert!(message.contains("endpoint mismatch"));
            }
            other => panic!("expected abort, got {other:?}"),
        }
    }

    #[test]
    fn spawn_nested_and_join() {
        let mut sim = Simulation::new();
        sim.spawn("parent", |ctx| {
            let child = ctx.spawn("child", |c| {
                c.advance(SimDuration::from_micros(100));
            });
            ctx.join(child);
            assert_eq!(ctx.now().as_nanos(), 100_000);
        });
        let r = sim.run().unwrap();
        assert_eq!(r.processes, 2);
    }

    #[test]
    fn join_already_finished_process_returns_immediately() {
        let mut sim = Simulation::new();
        sim.spawn("parent", |ctx| {
            let child = ctx.spawn("quick", |_c| {});
            ctx.advance(SimDuration::from_micros(50));
            ctx.join(child);
            assert_eq!(ctx.now().as_nanos(), 50_000);
        });
        sim.run().unwrap();
    }

    #[test]
    fn report_counts_and_names() {
        let mut sim = Simulation::new();
        sim.spawn("alpha", |ctx| {
            assert_eq!(ctx.name(), "alpha");
            let child = ctx.spawn("beta", |c| {
                assert_eq!(c.name(), "beta");
                c.advance(SimDuration::from_nanos(5));
            });
            ctx.join(child);
        });
        let r = sim.run().unwrap();
        assert_eq!(r.processes, 2);
        assert!(r.dispatches >= 3, "at least spawn/advance/join dispatches");
        assert!(r.trace.is_none(), "tracing off by default");
    }

    #[test]
    fn determinism_same_trace_twice() {
        fn build() -> Simulation {
            let mut sim = Simulation::with_trace();
            for i in 0..5u64 {
                sim.spawn(&format!("p{i}"), move |ctx| {
                    for k in 0..4u64 {
                        ctx.advance(SimDuration::from_nanos(100 + i * 37 + k));
                    }
                });
            }
            sim
        }
        let t1 = build().run().unwrap().trace.unwrap();
        let t2 = build().run().unwrap().trace.unwrap();
        assert_eq!(t1, t2);
        assert!(!t1.is_empty());
    }

    #[test]
    fn time_limit_stops_runaway_simulations() {
        let mut sim = Simulation::new();
        sim.set_time_limit(SimTime(1_000_000));
        sim.spawn("spinner", |ctx| loop {
            ctx.advance(SimDuration::from_micros(10));
        });
        match sim.run() {
            Err(SimError::TimeLimitExceeded { limit }) => {
                assert_eq!(limit, SimTime(1_000_000));
            }
            other => panic!("expected time limit, got {other:?}"),
        }
    }

    #[test]
    fn time_limit_not_hit_is_harmless() {
        let mut sim = Simulation::new();
        sim.set_time_limit(SimTime(1_000_000));
        sim.spawn("quick", |ctx| ctx.advance(SimDuration::from_micros(5)));
        sim.run().unwrap();
    }

    #[test]
    fn block_timeout_fires_at_deadline() {
        let mut sim = Simulation::new();
        sim.spawn("t", |ctx| {
            let woken = ctx.block_timeout("data that never comes", SimDuration::from_micros(25));
            assert!(!woken, "nobody unblocked us");
            assert_eq!(ctx.now().as_nanos(), 25_000);
        });
        sim.run().unwrap();
    }

    #[test]
    fn block_timeout_woken_early_discards_stale_deadline() {
        let mut sim = Simulation::new();
        let t = sim.spawn("t", |ctx| {
            let woken = ctx.block_timeout("signal", SimDuration::from_micros(100));
            assert!(woken, "unblock arrived before the deadline");
            assert_eq!(ctx.now().as_nanos(), 10_000);
            // If the stale deadline event at t=100us were still live it
            // would wake this follow-up block early (at 100us, not 300us).
            let woken2 = ctx.block_timeout("second wait", SimDuration::from_micros(290));
            assert!(!woken2);
            assert_eq!(ctx.now().as_nanos(), 300_000);
        });
        sim.spawn("w", move |ctx| {
            ctx.advance(SimDuration::from_micros(10));
            ctx.unblock(t, SimDuration::ZERO);
        });
        sim.run().unwrap();
    }

    #[test]
    fn block_timeout_consumes_pending_wake_without_parking() {
        let mut sim = Simulation::new();
        let t = sim.spawn("t", |ctx| {
            ctx.advance(SimDuration::from_micros(10));
            // The wake arrived at t=1us while we were computing.
            let woken = ctx.block_timeout("already satisfied", SimDuration::from_micros(5));
            assert!(woken);
            assert_eq!(ctx.now().as_nanos(), 10_000, "no virtual time consumed");
        });
        sim.spawn("w", move |ctx| {
            ctx.advance(SimDuration::from_micros(1));
            ctx.unblock(t, SimDuration::ZERO);
        });
        sim.run().unwrap();
    }

    #[test]
    fn block_timeout_then_plain_block_still_deadlocks() {
        // A consumed deadline must not leave a live event behind that could
        // mask a genuine deadlock later.
        let mut sim = Simulation::new();
        sim.spawn("t", |ctx| {
            let woken = ctx.block_timeout("first", SimDuration::from_micros(5));
            assert!(!woken);
            ctx.block("forever");
        });
        match sim.run() {
            Err(SimError::Deadlock { at, blocked }) => {
                assert_eq!(at.as_nanos(), 5_000);
                assert_eq!(blocked.len(), 1);
                assert_eq!(blocked[0].2, "forever");
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn incidents_are_collected_in_report() {
        let mut sim = Simulation::new();
        sim.spawn("survivor", |ctx| {
            ctx.advance(SimDuration::from_micros(2));
            ctx.report_incident(
                IncidentCategory::PeerLost,
                "rank 3 died; abandoning channel 7",
            );
        });
        let r = sim.run().unwrap();
        assert_eq!(r.incidents.len(), 1);
        let inc = &r.incidents[0];
        assert_eq!(inc.process, "survivor");
        assert_eq!(inc.category, IncidentCategory::PeerLost);
        assert_eq!(inc.category.to_string(), "peer-lost");
        assert_eq!(inc.at.as_nanos(), 2_000);
        assert!(inc.detail.contains("channel 7"));
    }

    #[test]
    fn yield_now_costs_no_time() {
        let mut sim = Simulation::new();
        sim.spawn("y", |ctx| {
            ctx.yield_now();
            ctx.yield_now();
            assert_eq!(ctx.now(), SimTime::ZERO);
        });
        sim.run().unwrap();
    }

    #[test]
    fn spawner_trait_matches_inherent_spawn() {
        fn generic_spawn<S: Spawner>(s: &mut S) -> Pid {
            s.spawn_boxed(
                "via-trait",
                Box::new(|ctx| ctx.advance(SimDuration::from_micros(1))),
            )
        }
        let mut sim = Simulation::new();
        let pid = generic_spawn(&mut sim);
        assert_eq!(pid, 0);
        let r = sim.run().unwrap();
        assert_eq!(r.end_time.as_nanos(), 1_000);
    }
}
