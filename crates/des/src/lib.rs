#![warn(missing_docs)]
#![forbid(unsafe_code)]
//! # cp-des — deterministic discrete-event simulation kernel
//!
//! The foundation of the CellPilot reproduction: a virtual-time kernel in
//! which every simulated process (a PPE thread, an SPE program, an MPI rank,
//! a Co-Pilot service) runs as a real OS thread, yet execution is serialized
//! in strict `(virtual_time, sequence)` order, so every run is deterministic
//! and every latency is an explicit, modelled quantity.
//!
//! Layers above this crate:
//!
//! * `cp-cellsim` — Cell BE node model (local stores, DMA, mailboxes) built
//!   from [`sync::MsgQueue`] and friends;
//! * `cp-simnet` / `cp-mpisim` — cluster fabric and MPI-like ranks;
//! * `cp-pilot` / `cellpilot` — the process/channel libraries under study.
//!
//! ## Quick example
//!
//! ```
//! use cp_des::{Simulation, SimDuration, sync::MsgQueue};
//!
//! let queue: MsgQueue<&'static str> = MsgQueue::new("wire", None);
//! let (tx, rx) = (queue.clone(), queue);
//!
//! let mut sim = Simulation::new();
//! sim.spawn("sender", move |ctx| {
//!     ctx.advance(SimDuration::from_micros(5));     // compute for 5 us
//!     tx.push(ctx, "hello", SimDuration::from_micros(98)); // 98 us wire
//! });
//! sim.spawn("receiver", move |ctx| {
//!     let msg = rx.pop(ctx);                         // resumes at t = 103 us
//!     assert_eq!(msg, "hello");
//!     assert_eq!(ctx.now().as_micros_f64(), 103.0);
//! });
//! sim.run().unwrap();
//! ```

mod backend;
mod error;
mod kernel;
pub mod sync;
mod time;

pub use backend::{Backend, Executor, ProcBody, Spawner};
pub use error::{sort_incidents, Incident, IncidentCategory, Pid, SimError, SimReport};
pub use kernel::{ProcCtx, Simulation};
pub use time::{SimDuration, SimTime};
