//! Simulation outcomes and error reporting.

use crate::time::SimTime;
use std::fmt;

/// Identifier of a simulated process within one [`crate::Simulation`].
pub type Pid = usize;

/// Why a simulation ended unsuccessfully.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Every runnable process is blocked and no future event can wake one.
    ///
    /// This is the simulation-level analogue of the circular-wait hangs that
    /// Pilot's deadlock-detection service diagnoses on a real cluster.
    Deadlock {
        /// Virtual time at which progress stopped.
        at: SimTime,
        /// `(pid, process name, blocking reason)` for every blocked process.
        blocked: Vec<(Pid, String, String)>,
    },
    /// A simulated process panicked (a bug in user code or the library).
    ProcessPanicked {
        /// The panicking process.
        pid: Pid,
        /// Its registered name.
        name: String,
        /// The panic payload, stringified.
        message: String,
    },
    /// A process requested an abort (e.g. a Pilot API-misuse diagnostic).
    Aborted {
        /// The aborting process.
        pid: Pid,
        /// Its registered name.
        name: String,
        /// The abort diagnostic.
        message: String,
    },
    /// Virtual time passed the limit set with
    /// [`crate::Simulation::set_time_limit`].
    TimeLimitExceeded {
        /// The configured limit.
        limit: SimTime,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { at, blocked } => {
                writeln!(f, "simulation deadlock at {at}: all processes blocked")?;
                for (pid, name, reason) in blocked {
                    writeln!(f, "  [{pid}] {name}: blocked on {reason}")?;
                }
                Ok(())
            }
            SimError::ProcessPanicked { pid, name, message } => {
                write!(f, "process [{pid}] {name} panicked: {message}")
            }
            SimError::Aborted { pid, name, message } => {
                write!(f, "process [{pid}] {name} aborted: {message}")
            }
            SimError::TimeLimitExceeded { limit } => {
                write!(f, "simulation exceeded the virtual time limit ({limit})")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Machine-matchable classification of an [`Incident`].
///
/// Closed enum rather than a free-form string so harnesses that filter
/// incidents (blast-radius tests, the chaos campaign driver) cannot drift
/// out of sync with the reporters. The [`fmt::Display`] renderings are the
/// exact kebab-case strings the categories were before they were typed
/// (`"spe-crash"`, `"rank-death"`, ...), so golden traces and log scrapes
/// stay stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IncidentCategory {
    /// A scripted SPE crash fired (fail-stop of one SPE process).
    SpeCrash,
    /// A supervised SPE process was restarted after a crash.
    SpeRestart,
    /// A supervised SPE process exhausted its restart budget and was
    /// abandoned; its channels degrade to the peer-lost path.
    SpeAbandoned,
    /// An MPI rank was killed by the fault plan.
    RankDeath,
    /// A channel operation failed because its peer process is gone.
    PeerLost,
    /// A channel operation's virtual-time deadline elapsed.
    ChannelTimeout,
    /// A Co-Pilot service loop was unresponsive for a scripted duration.
    CopilotStall,
    /// A Co-Pilot process was killed by the fault plan.
    CopilotDeath,
    /// A standby Co-Pilot adopted a dead primary's node after missed
    /// heartbeats.
    CopilotFailover,
    /// The configure-time wiring verifier (`cp-check`) flagged an
    /// ill-formed process/channel/bundle graph in non-strict mode.
    WiringLint,
    /// The happens-before race detector (`cp-check`) flagged overlapping
    /// local-store accesses without an ordering edge.
    DmaRace,
    /// A bounded channel hit its configured capacity and its overload
    /// policy engaged (a sender was shed or deadline-dropped).
    Overload,
    /// A message was dropped by a `Shed` or `DeadlineDrop` overload policy
    /// instead of being queued past the channel's capacity.
    MessageShed,
}

impl IncidentCategory {
    /// The stable kebab-case rendering (what [`fmt::Display`] prints).
    pub fn as_str(&self) -> &'static str {
        match self {
            IncidentCategory::SpeCrash => "spe-crash",
            IncidentCategory::SpeRestart => "spe-restart",
            IncidentCategory::SpeAbandoned => "spe-abandoned",
            IncidentCategory::RankDeath => "rank-death",
            IncidentCategory::PeerLost => "peer-lost",
            IncidentCategory::ChannelTimeout => "channel-timeout",
            IncidentCategory::CopilotStall => "copilot-stall",
            IncidentCategory::CopilotDeath => "copilot-death",
            IncidentCategory::CopilotFailover => "copilot-failover",
            IncidentCategory::WiringLint => "wiring-lint",
            IncidentCategory::DmaRace => "dma-race",
            IncidentCategory::Overload => "overload",
            IncidentCategory::MessageShed => "message-shed",
        }
    }
}

impl fmt::Display for IncidentCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A non-fatal degradation event recorded during a run.
///
/// Fault-injection experiments (see `cp-simnet`'s fault plans) deliberately
/// break parts of the simulated cluster; the parts that keep working report
/// what they lost here instead of tearing the simulation down. The collected
/// incidents come back in [`SimReport::incidents`] so a harness can assert on
/// the exact blast radius of an injected fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Incident {
    /// Virtual time at which the incident was reported.
    pub at: SimTime,
    /// Name of the reporting process.
    pub process: String,
    /// Machine-matchable category.
    pub category: IncidentCategory,
    /// Human-readable description of what degraded.
    pub detail: String,
}

impl fmt::Display for Incident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} {}: {}",
            self.at, self.process, self.category, self.detail
        )
    }
}

/// Summary of a completed simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Virtual time when the last process finished.
    pub end_time: SimTime,
    /// Total number of processes that ran.
    pub processes: usize,
    /// Total number of scheduler dispatches (context switches).
    pub dispatches: u64,
    /// Dispatch trace `(time, pid)` if tracing was enabled.
    pub trace: Option<Vec<(SimTime, Pid)>>,
    /// Degradation incidents reported via
    /// [`crate::ProcCtx::report_incident`], sorted deterministically by
    /// virtual time, then category, then reporting process, then detail —
    /// so golden incident digests are stable regardless of the order in
    /// which detectors happened to report (see [`sort_incidents`]).
    pub incidents: Vec<Incident>,
}

/// Sort `incidents` into the canonical deterministic order golden digests
/// rely on: virtual time first, then category (by its stable kebab-case
/// string), then reporting process, then detail text. Both the DES kernel
/// and the native backend apply this before returning a [`SimReport`], so
/// detector arrival order never leaks into the report.
pub fn sort_incidents(incidents: &mut [Incident]) {
    incidents.sort_by(|a, b| {
        a.at.cmp(&b.at)
            .then_with(|| a.category.as_str().cmp(b.category.as_str()))
            .then_with(|| a.process.cmp(&b.process))
            .then_with(|| a.detail.cmp(&b.detail))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadlock_display_lists_processes() {
        let e = SimError::Deadlock {
            at: SimTime(2_000),
            blocked: vec![(1, "reader".into(), "channel c0 read".into())],
        };
        let s = e.to_string();
        assert!(s.contains("deadlock"));
        assert!(s.contains("reader"));
        assert!(s.contains("channel c0 read"));
    }

    #[test]
    fn abort_display() {
        let e = SimError::Aborted {
            pid: 3,
            name: "main".into(),
            message: "PI_Write: not an endpoint".into(),
        };
        assert!(e.to_string().contains("not an endpoint"));
    }
}
