//! Blocking synchronization primitives for simulated processes.
//!
//! These are the building blocks the higher layers (mailboxes, MPI matching
//! engines, Pilot channels) are made of. All of them integrate with the
//! kernel's virtual clock: a message can carry an *availability time* so a
//! receiver resumes exactly when the modelled transfer completes, and all
//! blocking operations park the calling process with a descriptive reason
//! that shows up in deadlock diagnostics.

use crate::error::Pid;
use crate::kernel::ProcCtx;
use crate::time::{SimDuration, SimTime};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

struct QueueState<T> {
    items: VecDeque<(SimTime, T)>,
    pop_waiters: VecDeque<Pid>,
    push_waiters: VecDeque<Pid>,
    label: String,
}

/// A FIFO message queue between simulated processes.
///
/// `capacity = None` gives an unbounded queue; `Some(n)` blocks pushers while
/// `n` messages are enqueued (like the Cell's 4-deep inbound mailbox).
/// Each pushed message carries a delivery latency: the receiver cannot
/// consume it before `push_time + latency`.
pub struct MsgQueue<T> {
    state: Arc<Mutex<QueueState<T>>>,
    capacity: Option<usize>,
}

impl<T> Clone for MsgQueue<T> {
    fn clone(&self) -> Self {
        MsgQueue {
            state: self.state.clone(),
            capacity: self.capacity,
        }
    }
}

impl<T> MsgQueue<T> {
    /// Create a queue. `label` appears in blocking/deadlock diagnostics.
    pub fn new(label: &str, capacity: Option<usize>) -> MsgQueue<T> {
        MsgQueue {
            state: Arc::new(Mutex::new(QueueState {
                items: VecDeque::new(),
                pop_waiters: VecDeque::new(),
                push_waiters: VecDeque::new(),
                label: label.to_string(),
            })),
            capacity,
        }
    }

    /// Number of enqueued messages (including not-yet-available ones).
    pub fn len(&self) -> usize {
        self.state.lock().items.len()
    }

    /// True if no messages are enqueued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueue `item`, blocking while the queue is full. The item becomes
    /// available to receivers at `now + latency`.
    pub fn push(&self, ctx: &ProcCtx, item: T, latency: SimDuration) {
        let mut item = Some(item);
        loop {
            let label;
            {
                let mut st = self.state.lock();
                if self.capacity.is_none_or(|c| st.items.len() < c) {
                    let avail = ctx.now() + latency;
                    st.items.push_back((avail, item.take().unwrap()));
                    if let Some(w) = st.pop_waiters.pop_front() {
                        ctx.unblock(w, latency);
                    }
                    return;
                }
                let me = ctx.pid();
                st.push_waiters.push_back(me);
                label = st.label.clone();
            }
            ctx.block(&format!("{label}: push (queue full)"));
        }
    }

    /// Enqueue without blocking; returns the item back if the queue is full.
    pub fn try_push(&self, ctx: &ProcCtx, item: T, latency: SimDuration) -> Result<(), T> {
        let mut st = self.state.lock();
        if self.capacity.is_none_or(|c| st.items.len() < c) {
            let avail = ctx.now() + latency;
            st.items.push_back((avail, item));
            if let Some(w) = st.pop_waiters.pop_front() {
                ctx.unblock(w, latency);
            }
            Ok(())
        } else {
            Err(item)
        }
    }

    /// Dequeue the front message, blocking while the queue is empty and
    /// advancing virtual time to the message's availability instant.
    pub fn pop(&self, ctx: &ProcCtx) -> T {
        loop {
            let label;
            {
                let mut st = self.state.lock();
                if let Some(&(avail, _)) = st.items.front() {
                    if avail <= ctx.now() {
                        let (_, item) = st.items.pop_front().unwrap();
                        if let Some(w) = st.push_waiters.pop_front() {
                            ctx.unblock(w, SimDuration::ZERO);
                        }
                        return item;
                    }
                    // Front message still in flight: wait for it.
                    let wait = avail - ctx.now();
                    drop(st);
                    ctx.advance(wait);
                    continue;
                }
                let me = ctx.pid();
                st.pop_waiters.push_back(me);
                label = st.label.clone();
            }
            ctx.block(&format!("{label}: pop (queue empty)"));
        }
    }

    /// Dequeue the front message if one is available *now*; never blocks and
    /// never advances time.
    pub fn try_pop(&self, ctx: &ProcCtx) -> Option<T> {
        let mut st = self.state.lock();
        match st.items.front() {
            Some(&(avail, _)) if avail <= ctx.now() => {
                let (_, item) = st.items.pop_front().unwrap();
                if let Some(w) = st.push_waiters.pop_front() {
                    ctx.unblock(w, SimDuration::ZERO);
                }
                Some(item)
            }
            _ => None,
        }
    }

    /// True if a message is available for `try_pop` at the current time.
    pub fn has_available(&self, ctx: &ProcCtx) -> bool {
        let st = self.state.lock();
        matches!(st.items.front(), Some(&(avail, _)) if avail <= ctx.now())
    }
}

/// A counting semaphore for simulated processes.
pub struct SimSemaphore {
    state: Arc<Mutex<SemState>>,
}

struct SemState {
    permits: u64,
    waiters: VecDeque<Pid>,
    label: String,
}

impl Clone for SimSemaphore {
    fn clone(&self) -> Self {
        SimSemaphore {
            state: self.state.clone(),
        }
    }
}

impl SimSemaphore {
    /// A semaphore with `permits` initial permits.
    pub fn new(label: &str, permits: u64) -> SimSemaphore {
        SimSemaphore {
            state: Arc::new(Mutex::new(SemState {
                permits,
                waiters: VecDeque::new(),
                label: label.to_string(),
            })),
        }
    }

    /// Take one permit, blocking until one is available.
    pub fn acquire(&self, ctx: &ProcCtx) {
        loop {
            let label;
            {
                let mut st = self.state.lock();
                if st.permits > 0 {
                    st.permits -= 1;
                    return;
                }
                let me = ctx.pid();
                st.waiters.push_back(me);
                label = st.label.clone();
            }
            ctx.block(&format!("{label}: acquire"));
        }
    }

    /// Release one permit, waking a waiter if any.
    pub fn release(&self, ctx: &ProcCtx) {
        let mut st = self.state.lock();
        st.permits += 1;
        if let Some(w) = st.waiters.pop_front() {
            ctx.unblock(w, SimDuration::ZERO);
        }
    }

    /// Current permit count (diagnostics only).
    pub fn permits(&self) -> u64 {
        self.state.lock().permits
    }
}

/// A reusable barrier for a fixed party count.
pub struct SimBarrier {
    state: Arc<Mutex<BarrierState>>,
    parties: usize,
}

struct BarrierState {
    arrived: usize,
    generation: u64,
    waiters: Vec<Pid>,
    label: String,
}

impl Clone for SimBarrier {
    fn clone(&self) -> Self {
        SimBarrier {
            state: self.state.clone(),
            parties: self.parties,
        }
    }
}

impl SimBarrier {
    /// A barrier that releases once `parties` processes have arrived.
    pub fn new(label: &str, parties: usize) -> SimBarrier {
        assert!(parties > 0, "barrier needs at least one party");
        SimBarrier {
            state: Arc::new(Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
                waiters: Vec::new(),
                label: label.to_string(),
            })),
            parties,
        }
    }

    /// Arrive and wait for all parties. Returns true for exactly one caller
    /// per generation (the "leader", the last to arrive).
    pub fn wait(&self, ctx: &ProcCtx) -> bool {
        let my_gen;
        let label;
        {
            let mut st = self.state.lock();
            st.arrived += 1;
            my_gen = st.generation;
            if st.arrived == self.parties {
                st.arrived = 0;
                st.generation += 1;
                let waiters = std::mem::take(&mut st.waiters);
                for w in waiters {
                    ctx.unblock(w, SimDuration::ZERO);
                }
                return true;
            }
            let me = ctx.pid();
            st.waiters.push(me);
            label = st.label.clone();
        }
        loop {
            ctx.block(&format!("{label}: barrier wait"));
            let st = self.state.lock();
            if st.generation != my_gen {
                return false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Simulation;
    use parking_lot::Mutex as PMutex;
    use std::sync::Arc;

    #[test]
    fn queue_delivers_in_fifo_order_with_latency() {
        let q: MsgQueue<u32> = MsgQueue::new("q", None);
        let got = Arc::new(PMutex::new(Vec::new()));
        let mut sim = Simulation::new();
        let (qp, qc, g) = (q.clone(), q, got.clone());
        sim.spawn("producer", move |ctx| {
            qp.push(ctx, 1, SimDuration::from_micros(10));
            ctx.advance(SimDuration::from_micros(1));
            qp.push(ctx, 2, SimDuration::from_micros(10));
        });
        sim.spawn("consumer", move |ctx| {
            let a = qc.pop(ctx);
            g.lock().push((a, ctx.now().as_nanos()));
            let b = qc.pop(ctx);
            g.lock().push((b, ctx.now().as_nanos()));
        });
        sim.run().unwrap();
        let v = got.lock().clone();
        assert_eq!(v, vec![(1, 10_000), (2, 11_000)]);
    }

    #[test]
    fn bounded_queue_blocks_pusher() {
        let q: MsgQueue<u8> = MsgQueue::new("mb", Some(1));
        let mut sim = Simulation::new();
        let (qp, qc) = (q.clone(), q);
        sim.spawn("producer", move |ctx| {
            qp.push(ctx, 1, SimDuration::ZERO);
            qp.push(ctx, 2, SimDuration::ZERO); // must block until consumer pops
            assert_eq!(ctx.now().as_nanos(), 5_000);
        });
        sim.spawn("consumer", move |ctx| {
            ctx.advance(SimDuration::from_micros(5));
            assert_eq!(qc.pop(ctx), 1);
            assert_eq!(qc.pop(ctx), 2);
        });
        sim.run().unwrap();
    }

    #[test]
    fn try_pop_respects_availability_time() {
        let q: MsgQueue<u8> = MsgQueue::new("q", None);
        let mut sim = Simulation::new();
        let (qp, qc) = (q.clone(), q);
        sim.spawn("producer", move |ctx| {
            qp.push(ctx, 9, SimDuration::from_micros(100));
        });
        sim.spawn("poller", move |ctx| {
            ctx.advance(SimDuration::from_micros(1));
            assert!(qc.try_pop(ctx).is_none(), "message still in flight");
            assert!(!qc.has_available(ctx));
            ctx.advance(SimDuration::from_micros(100));
            assert!(qc.has_available(ctx));
            assert_eq!(qc.try_pop(ctx), Some(9));
        });
        sim.run().unwrap();
    }

    #[test]
    fn try_push_full_returns_item() {
        let q: MsgQueue<u8> = MsgQueue::new("mb1", Some(1));
        let mut sim = Simulation::new();
        sim.spawn("p", move |ctx| {
            assert!(q.try_push(ctx, 1, SimDuration::ZERO).is_ok());
            assert_eq!(q.try_push(ctx, 2, SimDuration::ZERO), Err(2));
            assert_eq!(q.pop(ctx), 1);
        });
        sim.run().unwrap();
    }

    #[test]
    fn semaphore_serializes() {
        let sem = SimSemaphore::new("s", 1);
        let order = Arc::new(PMutex::new(Vec::new()));
        let mut sim = Simulation::new();
        for i in 0..3u32 {
            let sem = sem.clone();
            let order = order.clone();
            sim.spawn(&format!("w{i}"), move |ctx| {
                sem.acquire(ctx);
                order.lock().push((i, ctx.now().as_nanos()));
                ctx.advance(SimDuration::from_micros(10));
                sem.release(ctx);
            });
        }
        sim.run().unwrap();
        let v = order.lock().clone();
        assert_eq!(v.len(), 3);
        // Entries are 10us apart: mutual exclusion held.
        assert_eq!(v[1].1 - v[0].1, 10_000);
        assert_eq!(v[2].1 - v[1].1, 10_000);
    }

    #[test]
    fn barrier_releases_all_at_latest_arrival() {
        let bar = SimBarrier::new("b", 3);
        let times = Arc::new(PMutex::new(Vec::new()));
        let mut sim = Simulation::new();
        for i in 0..3u64 {
            let bar = bar.clone();
            let times = times.clone();
            sim.spawn(&format!("p{i}"), move |ctx| {
                ctx.advance(SimDuration::from_micros(10 * (i + 1)));
                bar.wait(ctx);
                times.lock().push(ctx.now().as_nanos());
            });
        }
        sim.run().unwrap();
        let v = times.lock().clone();
        assert_eq!(v, vec![30_000, 30_000, 30_000]);
    }

    #[test]
    fn barrier_is_reusable() {
        let bar = SimBarrier::new("b", 2);
        let mut sim = Simulation::new();
        let mut leaders = Vec::new();
        for i in 0..2u64 {
            let bar = bar.clone();
            let counter = Arc::new(PMutex::new(0u32));
            leaders.push(counter.clone());
            sim.spawn(&format!("p{i}"), move |ctx| {
                for _ in 0..4 {
                    ctx.advance(SimDuration::from_micros(1 + i));
                    if bar.wait(ctx) {
                        *counter.lock() += 1;
                    }
                }
            });
        }
        sim.run().unwrap();
        let total: u32 = leaders.iter().map(|c| *c.lock()).sum();
        assert_eq!(total, 4, "exactly one leader per generation");
    }

    #[test]
    fn queue_empty_deadlock_reports_label() {
        let q: MsgQueue<u8> = MsgQueue::new("orphan-queue", None);
        let mut sim = Simulation::new();
        sim.spawn("reader", move |ctx| {
            q.pop(ctx);
        });
        match sim.run() {
            Err(crate::SimError::Deadlock { blocked, .. }) => {
                assert!(blocked[0].2.contains("orphan-queue"));
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }
}
