//! Virtual time: instants and durations measured in integer nanoseconds.
//!
//! All latencies in the simulation are expressed as [`SimDuration`]s and all
//! clock readings as [`SimTime`]s. Nanosecond integer resolution keeps the
//! event queue ordering exact (no float comparison hazards) while still
//! resolving the sub-microsecond costs of the Cell's on-chip operations.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since simulation start.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start, as a float (for reporting).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from integer nanoseconds.
    pub fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Construct from integer microseconds.
    pub fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Construct from fractional microseconds, rounding to nanoseconds.
    ///
    /// Negative inputs clamp to zero; cost models occasionally produce tiny
    /// negative values from calibration arithmetic.
    pub fn from_micros_f64(us: f64) -> SimDuration {
        if us <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((us * 1_000.0).round() as u64)
        }
    }

    /// Construct from integer milliseconds.
    pub fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Duration in nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration in microseconds, as a float (for reporting).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}ns", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_micros(5);
        assert_eq!(t.as_nanos(), 5_000);
        let t2 = t + SimDuration::from_nanos(250);
        assert_eq!((t2 - t).as_nanos(), 250);
        assert_eq!(t.since(t2), SimDuration::ZERO);
    }

    #[test]
    fn fractional_micros_round() {
        assert_eq!(SimDuration::from_micros_f64(1.5).as_nanos(), 1_500);
        assert_eq!(SimDuration::from_micros_f64(0.0004).as_nanos(), 0);
        assert_eq!(SimDuration::from_micros_f64(-3.0).as_nanos(), 0);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimTime(1_500)), "1.500us");
    }

    #[test]
    fn ordering() {
        assert!(SimTime(3) < SimTime(4));
        assert!(SimDuration::from_micros(1) > SimDuration::from_nanos(999));
    }
}
