//! The execution-backend seam: [`Backend`] selection, the [`Executor`]
//! trait a scheduling substrate implements, and the [`Spawner`] trait
//! launch helpers are generic over.
//!
//! The DES kernel ([`crate::Simulation`]) is one implementation: processes
//! run under a virtual clock, serialized in `(time, sequence)` order, fully
//! deterministic. A second implementation (`cp-native`) runs the identical
//! process/channel program on free-running OS threads under the wall
//! clock. Everything above this seam — mailboxes, the window fabric,
//! Co-Pilots, channels — talks only to [`crate::ProcCtx`], so a program
//! body never knows which substrate it is on.

use crate::error::{IncidentCategory, Pid};
use crate::kernel::ProcCtx;
use crate::time::{SimDuration, SimTime};

/// Which execution substrate runs the process/channel program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Backend {
    /// The deterministic discrete-event simulator (the oracle).
    #[default]
    Sim,
    /// Free-running OS threads under the wall clock (`cp-native`).
    Native,
}

impl Backend {
    /// Read the backend from the `CP_BACKEND` environment variable:
    /// `native` selects [`Backend::Native`], anything else (including an
    /// unset variable) selects [`Backend::Sim`]. Lets examples and
    /// conformance drivers switch substrate without touching program
    /// bodies.
    pub fn from_env() -> Backend {
        match std::env::var("CP_BACKEND") {
            Ok(v) if v.eq_ignore_ascii_case("native") => Backend::Native,
            _ => Backend::Sim,
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Backend::Sim => "sim",
            Backend::Native => "native",
        })
    }
}

/// A process body as handed to an executor: the type-erased form of the
/// closures passed to [`crate::Simulation::spawn`].
pub type ProcBody = Box<dyn FnOnce(&ProcCtx) + Send + 'static>;

/// The substrate beneath [`ProcCtx`]: everything a simulated (or native)
/// process can ask of its scheduler.
///
/// Implementations must uphold the `ProcCtx` contract exactly — in
/// particular the pending-wake semantics of [`Executor::block`] /
/// [`Executor::unblock`] (a wake delivered while the target is not blocked
/// is banked and consumed by its next block without parking), because the
/// channel layers' check-then-block protocols rely on it to never lose a
/// signal.
pub trait Executor: Send + Sync {
    /// Which substrate this is.
    fn backend(&self) -> Backend;
    /// Registered name of process `pid`.
    fn proc_name(&self, pid: Pid) -> String;
    /// Current time (virtual on [`Backend::Sim`], wall-clock nanoseconds
    /// since launch on [`Backend::Native`]).
    fn now(&self) -> SimTime;
    /// Let `pid` spend `d` of time computing.
    fn advance(&self, pid: Pid, d: SimDuration);
    /// Park `pid` until somebody unblocks it (or consume a pending wake).
    fn block(&self, pid: Pid, reason: &str);
    /// Park `pid` until an unblock or the deadline, whichever first;
    /// `true` means woken (or pending wake consumed), `false` timed out.
    fn block_timeout(&self, pid: Pid, reason: &str, timeout: SimDuration) -> bool;
    /// Wake `pid` no earlier than `delay` from now (banked if not blocked).
    fn unblock(&self, pid: Pid, delay: SimDuration);
    /// Record a non-fatal degradation incident on behalf of `pid`.
    fn report_incident(&self, pid: Pid, category: IncidentCategory, detail: &str);
    /// Spawn a new process runnable now; returns its pid.
    fn spawn_boxed(&self, name: &str, body: ProcBody) -> Pid;
    /// Block `me` until `target` finishes.
    fn join(&self, me: Pid, target: Pid);
    /// Abort the whole run with a diagnostic; unwinds the calling process.
    fn abort(&self, pid: Pid, message: &str) -> !;
}

/// Anything root processes can be launched onto: the DES [`Simulation`],
/// `cp-native`'s thread runner, or the backend-selected wrapper around
/// either. `MpiWorld::launch` and the config layers are generic over this,
/// which is what lets one configuration run on every backend.
///
/// [`Simulation`]: crate::Simulation
pub trait Spawner {
    /// Spawn a root process.
    fn spawn_boxed(&mut self, name: &str, body: ProcBody) -> Pid;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_default_and_display() {
        assert_eq!(Backend::default(), Backend::Sim);
        assert_eq!(Backend::Sim.to_string(), "sim");
        assert_eq!(Backend::Native.to_string(), "native");
    }

    #[test]
    fn executor_is_object_safe() {
        fn _takes(_: &dyn Executor) {}
        fn _takes_spawner(_: &mut dyn Spawner) {}
    }
}
