//! Scalability guards for the kernel: many processes, deep spawning, and
//! heavy queue traffic must stay correct (and complete promptly in wall
//! time thanks to the one-at-a-time handoff).

use cp_des::sync::MsgQueue;
use cp_des::{SimDuration, Simulation};
use parking_lot::Mutex;
use std::sync::Arc;

#[test]
fn five_hundred_processes_interleave_correctly() {
    let counter = Arc::new(Mutex::new(0u64));
    let mut sim = Simulation::new();
    for i in 0..500u64 {
        let counter = counter.clone();
        sim.spawn(&format!("p{i}"), move |ctx| {
            for _ in 0..20 {
                ctx.advance(SimDuration::from_nanos(1 + i % 7));
                *counter.lock() += 1;
            }
        });
    }
    let r = sim.run().unwrap();
    assert_eq!(*counter.lock(), 500 * 20);
    assert_eq!(r.processes, 500);
    // End time = slowest process: 20 * max(1 + i%7) = 20 * 7.
    assert_eq!(r.end_time.as_nanos(), 140);
}

#[test]
fn deep_spawn_chain() {
    // Each process spawns the next, 200 deep, then the chain unwinds
    // through joins.
    fn link(ctx: &cp_des::ProcCtx, depth: u32) {
        if depth == 0 {
            return;
        }
        let child = ctx.spawn(&format!("d{depth}"), move |c| {
            c.advance(SimDuration::from_nanos(1));
            link(c, depth - 1);
        });
        ctx.join(child);
    }
    let mut sim = Simulation::new();
    sim.spawn("root", |ctx| link(ctx, 200));
    let r = sim.run().unwrap();
    assert_eq!(r.processes, 201);
    assert_eq!(r.end_time.as_nanos(), 200);
}

#[test]
fn many_producers_one_consumer_under_pressure() {
    let q: MsgQueue<u64> = MsgQueue::new("funnel", Some(4));
    let total: u64 = 40 * 25;
    let sum = Arc::new(Mutex::new(0u64));
    let mut sim = Simulation::new();
    for p in 0..40u64 {
        let q = q.clone();
        sim.spawn(&format!("prod{p}"), move |ctx| {
            for k in 0..25u64 {
                q.push(ctx, p * 1000 + k, SimDuration::from_nanos(10));
            }
        });
    }
    let (qc, s2) = (q, sum.clone());
    sim.spawn("consumer", move |ctx| {
        for _ in 0..total {
            let v = qc.pop(ctx);
            *s2.lock() += v;
        }
    });
    sim.run().unwrap();
    let expect: u64 = (0..40u64)
        .map(|p| (0..25u64).map(|k| p * 1000 + k).sum::<u64>())
        .sum();
    assert_eq!(*sum.lock(), expect);
}
