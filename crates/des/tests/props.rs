//! Property tests for the DES kernel: determinism under arbitrary
//! schedules, and queue/semaphore invariants.

use cp_des::sync::{MsgQueue, SimSemaphore};
use cp_des::{SimDuration, Simulation};
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any mix of processes doing arbitrary advance sequences dispatches
    /// identically on every run.
    #[test]
    fn arbitrary_schedules_are_deterministic(
        steps in proptest::collection::vec(
            proptest::collection::vec(1u64..10_000, 1..20), 1..8)
    ) {
        let run = |steps: &[Vec<u64>]| {
            let mut sim = Simulation::with_trace();
            for (i, proc_steps) in steps.iter().enumerate() {
                let proc_steps = proc_steps.clone();
                sim.spawn(&format!("p{i}"), move |ctx| {
                    for &ns in &proc_steps {
                        ctx.advance(SimDuration::from_nanos(ns));
                    }
                });
            }
            let r = sim.run().unwrap();
            (r.end_time, r.dispatches, r.trace.unwrap())
        };
        let a = run(&steps);
        let b = run(&steps);
        prop_assert_eq!(a, b);
    }

    /// The end time equals the max total advance across processes.
    #[test]
    fn end_time_is_max_process_time(
        steps in proptest::collection::vec(
            proptest::collection::vec(1u64..10_000, 1..20), 1..8)
    ) {
        let expected: u64 = steps.iter().map(|v| v.iter().sum::<u64>()).max().unwrap();
        let mut sim = Simulation::new();
        for (i, proc_steps) in steps.iter().enumerate() {
            let proc_steps = proc_steps.clone();
            sim.spawn(&format!("p{i}"), move |ctx| {
                for &ns in &proc_steps {
                    ctx.advance(SimDuration::from_nanos(ns));
                }
            });
        }
        let r = sim.run().unwrap();
        prop_assert_eq!(r.end_time.as_nanos(), expected);
    }

    /// A queue delivers every message exactly once, in order, regardless of
    /// latencies.
    #[test]
    fn queue_delivers_all_in_fifo_order(
        latencies in proptest::collection::vec(0u64..50_000, 1..50)
    ) {
        let q: MsgQueue<usize> = MsgQueue::new("pq", None);
        let got = Arc::new(Mutex::new(Vec::new()));
        let n = latencies.len();
        let mut sim = Simulation::new();
        let (qp, qc, g) = (q.clone(), q, got.clone());
        sim.spawn("producer", move |ctx| {
            for (i, &lat) in latencies.iter().enumerate() {
                qp.push(ctx, i, SimDuration::from_nanos(lat));
                ctx.advance(SimDuration::from_nanos(1));
            }
        });
        sim.spawn("consumer", move |ctx| {
            for _ in 0..n {
                let v = qc.pop(ctx);
                g.lock().push(v);
            }
        });
        sim.run().unwrap();
        let v = got.lock().clone();
        // FIFO per push order is only guaranteed for non-decreasing
        // availability; the queue pops in *push* order by construction.
        prop_assert_eq!(v, (0..n).collect::<Vec<_>>());
    }

    /// A semaphore with k permits never admits more than k holders.
    #[test]
    fn semaphore_bounds_concurrency(
        permits in 1u64..4,
        workers in 1usize..10,
        hold_ns in 1u64..1000,
    ) {
        let sem = SimSemaphore::new("s", permits);
        let active = Arc::new(Mutex::new((0i64, 0i64))); // (current, max)
        let mut sim = Simulation::new();
        for w in 0..workers {
            let sem = sem.clone();
            let active = active.clone();
            sim.spawn(&format!("w{w}"), move |ctx| {
                sem.acquire(ctx);
                {
                    let mut a = active.lock();
                    a.0 += 1;
                    a.1 = a.1.max(a.0);
                }
                ctx.advance(SimDuration::from_nanos(hold_ns));
                active.lock().0 -= 1;
                sem.release(ctx);
            });
        }
        sim.run().unwrap();
        let (_cur, max) = *active.lock();
        prop_assert!(max <= permits as i64, "max concurrent {max} > permits {permits}");
    }
}
