//! Diagnostics: stable machine-readable codes, severities and rendering.

use std::fmt;

/// Stable machine-readable code of one lint or race finding.
///
/// Codes are a contract: tools (CI filters, golden tests, log scrapes)
/// match on them, so a code is never renumbered or reused. New checks
/// append new codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CheckCode {
    /// Channel has no writer endpoint: nothing can ever write it.
    Cp001,
    /// Channel has no reader endpoint: nothing can ever read it.
    Cp002,
    /// Bundle member's direction contradicts the bundle's common
    /// endpoint (e.g. a broadcast member not written by the common
    /// process).
    Cp003,
    /// Process placed on a nonexistent MPI rank (or a channel endpoint
    /// referencing a nonexistent process).
    Cp004,
    /// SPE process placed on a node that is not a configured Cell node.
    Cp005,
    /// More SPE slots used on a Cell node than the node has SPEs.
    Cp006,
    /// Channel with an SPE endpoint routed through a node with no
    /// Co-Pilot.
    Cp007,
    /// Bundle mixes channel types from incompatible rendezvous classes.
    Cp008,
    /// Channel whose writer and reader are the same process.
    Cp009,
    /// Two SPE processes bound to the same `spe(node,slot)`.
    Cp010,
    /// Overlapping or duplicate one-sided window registration: two
    /// windows claim the same local-store bytes of one SPE, or one
    /// channel registers two windows.
    Cp011,
    /// One-sided put/get targeting an unregistered or wrong-direction
    /// window: a one-sided channel with no window, a window for a
    /// channel that is not one-sided, or a window that is not in the
    /// reading SPE's local store.
    Cp012,
    /// Flow-control misconfiguration: a non-Block overload policy on a
    /// channel with no capacity (the policy is inert), or — in strict
    /// mode, once any channel is bounded — a channel left unbounded.
    Cp013,
    /// Eager/coalescing misconfiguration: an eager threshold larger than
    /// the mailbox-word capacity (the excess can never go inline), or
    /// coalescing on a bundle whose member channel's capacity is smaller
    /// than the batch size (a full batch can never accumulate).
    Cp014,
    /// Race detector: overlapping local-store byte ranges accessed
    /// without a happens-before edge.
    Cp101,
    /// Progress analyzer: credit-deadlock cycle — a cycle in the channel
    /// dependency graph on which every edge is a `Block`-policy bounded
    /// channel, so a full round of in-flight messages wedges every
    /// writer.
    Cp201,
    /// Progress analyzer: Co-Pilot relay saturation — the static fan-in
    /// dispatch cost of the channels a Co-Pilot proxies exceeds its
    /// service budget.
    Cp202,
    /// Progress analyzer (advice): a channel whose declared payloads
    /// always fit the mailbox inline capacity is left non-eager, paying
    /// a DMA round trip per message for nothing.
    Cp203,
    /// Progress analyzer: one-sided window whose channel config makes
    /// fence placement unsatisfiable (coalesced bundles or eager
    /// inlining over a fenced window).
    Cp204,
}

impl CheckCode {
    /// The stable rendering (`"CP001"`, ...).
    pub fn as_str(&self) -> &'static str {
        match self {
            CheckCode::Cp001 => "CP001",
            CheckCode::Cp002 => "CP002",
            CheckCode::Cp003 => "CP003",
            CheckCode::Cp004 => "CP004",
            CheckCode::Cp005 => "CP005",
            CheckCode::Cp006 => "CP006",
            CheckCode::Cp007 => "CP007",
            CheckCode::Cp008 => "CP008",
            CheckCode::Cp009 => "CP009",
            CheckCode::Cp010 => "CP010",
            CheckCode::Cp011 => "CP011",
            CheckCode::Cp012 => "CP012",
            CheckCode::Cp013 => "CP013",
            CheckCode::Cp014 => "CP014",
            CheckCode::Cp101 => "CP101",
            CheckCode::Cp201 => "CP201",
            CheckCode::Cp202 => "CP202",
            CheckCode::Cp203 => "CP203",
            CheckCode::Cp204 => "CP204",
        }
    }

    /// One-line rule summary (the SARIF `shortDescription` text).
    pub fn summary(&self) -> &'static str {
        match self {
            CheckCode::Cp001 => "channel has no writer endpoint",
            CheckCode::Cp002 => "channel has no reader endpoint",
            CheckCode::Cp003 => "bundle member contradicts the collective direction",
            CheckCode::Cp004 => "process placed on a nonexistent rank",
            CheckCode::Cp005 => "SPE process placed on a non-Cell node",
            CheckCode::Cp006 => "SPE slots oversubscribed",
            CheckCode::Cp007 => "SPE channel routed through a node with no Co-Pilot",
            CheckCode::Cp008 => "bundle mixes incompatible rendezvous classes",
            CheckCode::Cp009 => "channel connects a process to itself",
            CheckCode::Cp010 => "two SPE processes bound to the same slot",
            CheckCode::Cp011 => "overlapping or duplicate one-sided window registration",
            CheckCode::Cp012 => "one-sided traffic without a usable window",
            CheckCode::Cp013 => "inert or inconsistent flow-control declaration",
            CheckCode::Cp014 => "eager/coalescing declaration can never take effect",
            CheckCode::Cp101 => "unordered overlapping local-store DMA accesses",
            CheckCode::Cp201 => "credit-deadlock cycle of Block-bounded channels",
            CheckCode::Cp202 => "Co-Pilot relay saturated by static channel fan-in",
            CheckCode::Cp203 => "always-small channel left non-eager",
            CheckCode::Cp204 => "one-sided window fence placement unsatisfiable",
        }
    }
}

impl fmt::Display for CheckCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// A missed optimization, not a defect: the wiring works, a cheaper
    /// configuration exists. Never aborts a run.
    Advice,
    /// Suspicious but possibly intentional; never aborts a run.
    Warning,
    /// Ill-formed; strict mode turns any error into a pre-run abort.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Advice => "advice",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding from the wiring verifier or the race detector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-readable code.
    pub code: CheckCode,
    /// Severity (strict mode aborts on any [`Severity::Error`]).
    pub severity: Severity,
    /// Human-readable description of the defect.
    pub message: String,
    /// Offending endpoints, rendered in the deadlock detector's notation
    /// (`rank N`, `spe(node,slot)`).
    pub endpoints: Vec<String>,
}

impl Diagnostic {
    pub(crate) fn new(
        code: CheckCode,
        severity: Severity,
        message: impl Into<String>,
        endpoints: Vec<String>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            message: message.into(),
            endpoints,
        }
    }

    /// Whether strict mode must abort on this finding.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }

    /// The finding's identity for baselines and suppressions: the
    /// rendered form minus the severity prefix, so remapping a code's
    /// lint level never invalidates a committed baseline.
    pub fn fingerprint(&self) -> String {
        let mut s = format!("{} {}", self.code, self.message);
        if !self.endpoints.is_empty() {
            s.push_str(&format!(" ({})", self.endpoints.join(", ")));
        }
        s
    }
}

impl fmt::Display for Diagnostic {
    /// `error[CP006] message (endpoint, endpoint)` — pinned by the golden
    /// diagnostics file; change it only with a bless.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}] {}", self.severity, self.code, self.message)?;
        if !self.endpoints.is_empty() {
            write!(f, " ({})", self.endpoints.join(", "))?;
        }
        Ok(())
    }
}

/// Render a batch of diagnostics, one per line (the strict-mode abort
/// message and the `repro_check` report body). The lines are sorted by
/// (code, endpoints, message) and deduplicated, so a report assembled
/// from several passes is deterministic regardless of pass order and
/// never repeats a finding two passes both draw.
pub fn render(diags: &[Diagnostic]) -> String {
    let mut sorted: Vec<&Diagnostic> = diags.iter().collect();
    sorted.sort_by(|a, b| {
        (a.code, &a.endpoints, &a.message).cmp(&(b.code, &b.endpoints, &b.message))
    });
    let mut lines: Vec<String> = sorted.iter().map(|d| d.to_string()).collect();
    lines.dedup();
    lines.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_stable() {
        let d = Diagnostic::new(
            CheckCode::Cp009,
            Severity::Error,
            "channel 3 connects process 'a' to itself",
            vec!["rank 1".into()],
        );
        assert_eq!(
            d.to_string(),
            "error[CP009] channel 3 connects process 'a' to itself (rank 1)"
        );
        let w = Diagnostic::new(CheckCode::Cp008, Severity::Warning, "m", vec![]);
        assert_eq!(w.to_string(), "warning[CP008] m");
        assert!(!w.is_error());
        let a = Diagnostic::new(CheckCode::Cp203, Severity::Advice, "m", vec![]);
        assert_eq!(a.to_string(), "advice[CP203] m");
        assert!(!a.is_error());
    }

    #[test]
    fn render_sorts_by_code_endpoints_message_and_dedups() {
        let d = |code, msg: &str, eps: &[&str]| {
            Diagnostic::new(
                code,
                Severity::Warning,
                msg,
                eps.iter().map(|e| e.to_string()).collect(),
            )
        };
        let batch = vec![
            d(CheckCode::Cp014, "b", &["rank 1"]),
            d(CheckCode::Cp008, "z", &["rank 0"]),
            d(CheckCode::Cp014, "a", &["rank 1"]),
            d(CheckCode::Cp014, "b", &["rank 0"]),
            d(CheckCode::Cp008, "z", &["rank 0"]),
        ];
        assert_eq!(
            render(&batch),
            "warning[CP008] z (rank 0)\n\
             warning[CP014] b (rank 0)\n\
             warning[CP014] a (rank 1)\n\
             warning[CP014] b (rank 1)"
        );
    }

    #[test]
    fn fingerprint_drops_the_severity() {
        let d = Diagnostic::new(
            CheckCode::Cp201,
            Severity::Warning,
            "cycle",
            vec!["rank 0".into(), "rank 1".into()],
        );
        assert_eq!(d.fingerprint(), "CP201 cycle (rank 0, rank 1)");
    }
}
