//! Diagnostics: stable machine-readable codes, severities and rendering.

use std::fmt;

/// Stable machine-readable code of one lint or race finding.
///
/// Codes are a contract: tools (CI filters, golden tests, log scrapes)
/// match on them, so a code is never renumbered or reused. New checks
/// append new codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CheckCode {
    /// Channel has no writer endpoint: nothing can ever write it.
    Cp001,
    /// Channel has no reader endpoint: nothing can ever read it.
    Cp002,
    /// Bundle member's direction contradicts the bundle's common
    /// endpoint (e.g. a broadcast member not written by the common
    /// process).
    Cp003,
    /// Process placed on a nonexistent MPI rank (or a channel endpoint
    /// referencing a nonexistent process).
    Cp004,
    /// SPE process placed on a node that is not a configured Cell node.
    Cp005,
    /// More SPE slots used on a Cell node than the node has SPEs.
    Cp006,
    /// Channel with an SPE endpoint routed through a node with no
    /// Co-Pilot.
    Cp007,
    /// Bundle mixes channel types from incompatible rendezvous classes.
    Cp008,
    /// Channel whose writer and reader are the same process.
    Cp009,
    /// Two SPE processes bound to the same `spe(node,slot)`.
    Cp010,
    /// Overlapping or duplicate one-sided window registration: two
    /// windows claim the same local-store bytes of one SPE, or one
    /// channel registers two windows.
    Cp011,
    /// One-sided put/get targeting an unregistered or wrong-direction
    /// window: a one-sided channel with no window, a window for a
    /// channel that is not one-sided, or a window that is not in the
    /// reading SPE's local store.
    Cp012,
    /// Flow-control misconfiguration: a non-Block overload policy on a
    /// channel with no capacity (the policy is inert), or — in strict
    /// mode, once any channel is bounded — a channel left unbounded.
    Cp013,
    /// Eager/coalescing misconfiguration: an eager threshold larger than
    /// the mailbox-word capacity (the excess can never go inline), or
    /// coalescing on a bundle whose member channel's capacity is smaller
    /// than the batch size (a full batch can never accumulate).
    Cp014,
    /// Race detector: overlapping local-store byte ranges accessed
    /// without a happens-before edge.
    Cp101,
}

impl CheckCode {
    /// The stable rendering (`"CP001"`, ...).
    pub fn as_str(&self) -> &'static str {
        match self {
            CheckCode::Cp001 => "CP001",
            CheckCode::Cp002 => "CP002",
            CheckCode::Cp003 => "CP003",
            CheckCode::Cp004 => "CP004",
            CheckCode::Cp005 => "CP005",
            CheckCode::Cp006 => "CP006",
            CheckCode::Cp007 => "CP007",
            CheckCode::Cp008 => "CP008",
            CheckCode::Cp009 => "CP009",
            CheckCode::Cp010 => "CP010",
            CheckCode::Cp011 => "CP011",
            CheckCode::Cp012 => "CP012",
            CheckCode::Cp013 => "CP013",
            CheckCode::Cp014 => "CP014",
            CheckCode::Cp101 => "CP101",
        }
    }
}

impl fmt::Display for CheckCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but possibly intentional; never aborts a run.
    Warning,
    /// Ill-formed; strict mode turns any error into a pre-run abort.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding from the wiring verifier or the race detector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-readable code.
    pub code: CheckCode,
    /// Severity (strict mode aborts on any [`Severity::Error`]).
    pub severity: Severity,
    /// Human-readable description of the defect.
    pub message: String,
    /// Offending endpoints, rendered in the deadlock detector's notation
    /// (`rank N`, `spe(node,slot)`).
    pub endpoints: Vec<String>,
}

impl Diagnostic {
    pub(crate) fn new(
        code: CheckCode,
        severity: Severity,
        message: impl Into<String>,
        endpoints: Vec<String>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            message: message.into(),
            endpoints,
        }
    }

    /// Whether strict mode must abort on this finding.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    /// `error[CP006] message (endpoint, endpoint)` — pinned by the golden
    /// diagnostics file; change it only with a bless.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}] {}", self.severity, self.code, self.message)?;
        if !self.endpoints.is_empty() {
            write!(f, " ({})", self.endpoints.join(", "))?;
        }
        Ok(())
    }
}

/// Render a batch of diagnostics, one per line (the strict-mode abort
/// message and the `repro_check` report body).
pub fn render(diags: &[Diagnostic]) -> String {
    diags
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_stable() {
        let d = Diagnostic::new(
            CheckCode::Cp009,
            Severity::Error,
            "channel 3 connects process 'a' to itself",
            vec!["rank 1".into()],
        );
        assert_eq!(
            d.to_string(),
            "error[CP009] channel 3 connects process 'a' to itself (rank 1)"
        );
        let w = Diagnostic::new(CheckCode::Cp008, Severity::Warning, "m", vec![]);
        assert_eq!(w.to_string(), "warning[CP008] m");
        assert!(!w.is_error());
    }
}
