//! SARIF 2.1.0 export of `cp-check` findings.
//!
//! SARIF (Static Analysis Results Interchange Format) is what GitHub
//! code scanning ingests: uploading the log produced here renders each
//! finding as an annotation. The export is deliberately minimal — one
//! run, logical locations only (a wiring graph has endpoints, not
//! files) — but schema-valid: `$schema`/`version` at the top, a tool
//! driver with one rule per distinct code, and one result per
//! diagnostic carrying the code, the mapped level, the message, the
//! endpoints as logical locations, and the baseline fingerprint under
//! `partialFingerprints`.

use crate::diag::{Diagnostic, Severity};
use cp_trace::Json;
use std::collections::BTreeSet;

/// The SARIF `level` for a severity: `Advice` maps to `note`.
fn level(sev: Severity) -> &'static str {
    match sev {
        Severity::Advice => "note",
        Severity::Warning => "warning",
        Severity::Error => "error",
    }
}

/// Serialize `diags` as a pretty-printed SARIF 2.1.0 log with a single
/// `cp-check` run. Keys are canonically sorted, so the output is
/// deterministic for a given finding set.
pub fn to_sarif(diags: &[Diagnostic]) -> String {
    let codes: BTreeSet<_> = diags.iter().map(|d| d.code).collect();
    let rules: Vec<Json> = codes
        .into_iter()
        .map(|code| {
            let mut rule = Json::obj();
            rule.set("id", code.as_str());
            let mut short = Json::obj();
            short.set("text", code.summary());
            rule.set("shortDescription", short);
            rule
        })
        .collect();

    let mut driver = Json::obj();
    driver.set("name", "cp-check");
    driver.set("informationUri", "https://example.invalid/cp-check");
    driver.set("rules", rules);
    let mut tool = Json::obj();
    tool.set("driver", driver);

    let results: Vec<Json> = diags
        .iter()
        .map(|d| {
            let mut result = Json::obj();
            result.set("ruleId", d.code.as_str());
            result.set("level", level(d.severity));
            let mut message = Json::obj();
            message.set("text", d.message.as_str());
            result.set("message", message);
            let locations: Vec<Json> = d
                .endpoints
                .iter()
                .map(|e| {
                    let mut logical = Json::obj();
                    logical.set("name", e.as_str());
                    logical.set("kind", "resource");
                    let mut loc = Json::obj();
                    loc.set("logicalLocations", vec![logical]);
                    loc
                })
                .collect();
            result.set("locations", locations);
            let mut fp = Json::obj();
            fp.set("cpCheck/v1", d.fingerprint());
            result.set("partialFingerprints", fp);
            result
        })
        .collect();

    let mut run = Json::obj();
    run.set("tool", tool);
    run.set("results", results);

    let mut log = Json::obj();
    log.set("$schema", "https://json.schemastore.org/sarif-2.1.0.json");
    log.set("version", "2.1.0");
    log.set("runs", vec![run]);
    let mut out = log.to_pretty();
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::CheckCode;

    #[test]
    fn export_is_schema_shaped_and_round_trips() {
        let diags = vec![
            Diagnostic::new(
                CheckCode::Cp201,
                Severity::Warning,
                "cycle",
                vec!["rank 0".into(), "rank 1".into()],
            ),
            Diagnostic::new(CheckCode::Cp203, Severity::Advice, "inline it", vec![]),
        ];
        let text = to_sarif(&diags);
        let log = Json::parse(&text).expect("export parses back");
        assert_eq!(
            log.get("version").and_then(|v| v.as_str()),
            Some("2.1.0"),
            "{text}"
        );
        let runs = match log.get("runs") {
            Some(Json::Arr(r)) => r,
            other => panic!("runs must be an array: {other:?}"),
        };
        assert_eq!(runs.len(), 1);
        let results = match runs[0].get("results") {
            Some(Json::Arr(r)) => r,
            other => panic!("results must be an array: {other:?}"),
        };
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0].get("ruleId").and_then(|v| v.as_str()),
            Some("CP201")
        );
        assert_eq!(
            results[1].get("level").and_then(|v| v.as_str()),
            Some("note")
        );
        let rules = runs[0]
            .get("tool")
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("rules"));
        match rules {
            Some(Json::Arr(r)) => assert_eq!(r.len(), 2),
            other => panic!("rules must be an array: {other:?}"),
        }
    }
}
