//! Lint-engine configuration: per-code levels, endpoint-scoped
//! suppressions and committed baselines.
//!
//! The passes themselves ([`fn@crate::verify`], [`fn@crate::analyze`],
//! [`crate::detect_races`]) always report everything they find; policy
//! about what to *do* with a finding lives here, applied as a filter
//! over the raw diagnostics:
//!
//! 1. **Suppressions** ([`LintConfig::suppress`]) drop a specific code
//!    at a specific endpoint — the surgical "yes, this one is
//!    intentional" knob.
//! 2. **Baselines** ([`LintConfig::with_baseline`]) drop findings whose
//!    [`Diagnostic::fingerprint`] appears in a committed baseline file,
//!    so adopting a new analyzer version on a brownfield codebase does
//!    not fail CI on day one. Fingerprints omit the severity, so
//!    remapping levels never invalidates a baseline.
//! 3. **Levels** ([`LintConfig::level`]) remap what survives:
//!    [`LintLevel::Allow`] drops the code entirely,
//!    [`LintLevel::Warn`] caps it at [`Severity::Warning`] (strict mode
//!    will not abort), [`LintLevel::Deny`] promotes it to
//!    [`Severity::Error`] (strict mode aborts).

use crate::diag::{CheckCode, Diagnostic, Severity};
use std::collections::{BTreeMap, BTreeSet};

/// What to do with findings of one code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintLevel {
    /// Drop the finding entirely.
    Allow,
    /// Keep it, capped at [`Severity::Warning`]: reported, never aborts.
    Warn,
    /// Keep it, promoted to [`Severity::Error`]: strict mode aborts.
    Deny,
}

/// Policy filter over the raw diagnostics: levels, suppressions and a
/// baseline. The default config is the identity — everything the passes
/// find is reported at its natural severity.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    levels: BTreeMap<CheckCode, LintLevel>,
    suppressions: BTreeSet<(CheckCode, String)>,
    baseline: BTreeSet<String>,
}

impl LintConfig {
    /// The identity config: natural severities, nothing suppressed.
    pub fn new() -> LintConfig {
        LintConfig::default()
    }

    /// Set the level for one code.
    pub fn level(mut self, code: CheckCode, level: LintLevel) -> LintConfig {
        self.levels.insert(code, level);
        self
    }

    /// Suppress `code` at `endpoint` (the deadlock detector's notation:
    /// `"rank 1"`, `"spe(0,3)"`, `"copilot(1)"`). A finding is dropped
    /// when *any* of its endpoints matches a suppression for its code.
    pub fn suppress(mut self, code: CheckCode, endpoint: &str) -> LintConfig {
        self.suppressions.insert((code, endpoint.to_string()));
        self
    }

    /// Load a baseline: one [`Diagnostic::fingerprint`] per line, blank
    /// lines and `#` comments ignored (the format
    /// [`LintConfig::baseline_text`] writes). Findings already in the
    /// baseline are dropped by [`LintConfig::apply`].
    pub fn with_baseline(mut self, text: &str) -> LintConfig {
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            self.baseline.insert(line.to_string());
        }
        self
    }

    /// Render `diags` as baseline text: a header comment plus one
    /// fingerprint per line, sorted and deduplicated. Commit the output
    /// (conventionally `cp-check.baseline`) and load it with
    /// [`LintConfig::with_baseline`].
    pub fn baseline_text(diags: &[Diagnostic]) -> String {
        let mut lines: BTreeSet<String> = diags.iter().map(|d| d.fingerprint()).collect();
        let mut out = String::from(
            "# cp-check baseline: pre-existing findings exempted from the lint gate.\n\
             # One fingerprint per line (rendered diagnostic minus the severity).\n\
             # Regenerate with `repro_check --write-baseline <path>`.\n",
        );
        while let Some(line) = lines.pop_first() {
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Whether `code` is mapped to [`LintLevel::Deny`].
    pub fn denies(&self, code: CheckCode) -> bool {
        self.levels.get(&code) == Some(&LintLevel::Deny)
    }

    /// Apply the policy: drop suppressed, baselined and `Allow`ed
    /// findings, remap severities for `Warn`/`Deny` codes, pass the rest
    /// through untouched.
    pub fn apply(&self, diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
        diags
            .into_iter()
            .filter(|d| {
                !d.endpoints
                    .iter()
                    .any(|e| self.suppressions.contains(&(d.code, e.clone())))
            })
            .filter(|d| !self.baseline.contains(&d.fingerprint()))
            .filter_map(|mut d| match self.levels.get(&d.code) {
                Some(LintLevel::Allow) => None,
                Some(LintLevel::Warn) => {
                    d.severity = d.severity.min(Severity::Warning);
                    Some(d)
                }
                Some(LintLevel::Deny) => {
                    d.severity = Severity::Error;
                    Some(d)
                }
                None => Some(d),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic::new(
                CheckCode::Cp008,
                Severity::Warning,
                "mixed bundle",
                vec!["spe(0,0)".into()],
            ),
            Diagnostic::new(
                CheckCode::Cp203,
                Severity::Advice,
                "inline it",
                vec!["rank 0".into(), "spe(0,1)".into()],
            ),
            Diagnostic::new(
                CheckCode::Cp009,
                Severity::Error,
                "self channel",
                vec!["rank 1".into()],
            ),
        ]
    }

    #[test]
    fn default_config_is_identity() {
        assert_eq!(LintConfig::new().apply(sample()), sample());
    }

    #[test]
    fn levels_remap_severity() {
        let cfg = LintConfig::new()
            .level(CheckCode::Cp008, LintLevel::Allow)
            .level(CheckCode::Cp203, LintLevel::Deny)
            .level(CheckCode::Cp009, LintLevel::Warn);
        let out = cfg.apply(sample());
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].code, CheckCode::Cp203);
        assert_eq!(out[0].severity, Severity::Error);
        assert!(cfg.denies(CheckCode::Cp203));
        assert_eq!(out[1].code, CheckCode::Cp009);
        assert_eq!(out[1].severity, Severity::Warning);
    }

    #[test]
    fn warn_does_not_raise_advice() {
        let cfg = LintConfig::new().level(CheckCode::Cp203, LintLevel::Warn);
        let out = cfg.apply(sample());
        assert_eq!(out[1].severity, Severity::Advice);
    }

    #[test]
    fn suppression_is_code_and_endpoint_scoped() {
        let cfg = LintConfig::new()
            .suppress(CheckCode::Cp203, "spe(0,1)")
            .suppress(CheckCode::Cp008, "spe(9,9)");
        let out = cfg.apply(sample());
        // CP203 matched on its second endpoint; CP008's suppression is
        // for a different endpoint so it stays.
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|d| d.code != CheckCode::Cp203));
    }

    #[test]
    fn baseline_round_trips_and_filters() {
        let text = LintConfig::baseline_text(&sample());
        assert!(text.starts_with('#'));
        assert!(text.contains("CP009 self channel (rank 1)\n"));
        let cfg = LintConfig::new().with_baseline(&text);
        assert_eq!(cfg.apply(sample()), Vec::new());
        // A fresh finding still gets through.
        let fresh = vec![Diagnostic::new(
            CheckCode::Cp001,
            Severity::Error,
            "orphan",
            vec![],
        )];
        assert_eq!(cfg.apply(fresh.clone()), fresh);
    }
}
