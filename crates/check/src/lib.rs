//! `cp-check` — static analysis for CellPilot/Pilot applications.
//!
//! Pilot's headline safety feature was catching API misuse before a run;
//! the CellPilot paper leaves SPE-side checking as future work. This
//! crate closes that gap with two passes:
//!
//! 1. **Configure-time wiring verifier** ([`fn@verify`]) — lints the full
//!    typed process/channel/bundle graph ([`WiringGraph`]) for defects
//!    the type system cannot rule out: orphan channels (CP001/CP002),
//!    collective direction mismatches (CP003), endpoints on nonexistent
//!    ranks or Cell nodes (CP004/CP005), SPE slot oversubscription
//!    (CP006), SPE channels with no Co-Pilot route (CP007), bundles
//!    mixing incompatible rendezvous classes (CP008), self-channels
//!    (CP009) and slot collisions (CP010).
//! 2. **Configure-time progress analyzer** ([`fn@analyze`]) — asks
//!    whether a well-formed graph will actually make progress: credit-
//!    deadlock cycles of `Block`-bounded channels (CP201), Co-Pilot
//!    relay saturation against the cost model's service budget (CP202),
//!    eager-inlining opportunities on always-small channels (CP203,
//!    advice), and one-sided windows whose channel config makes fence
//!    placement unsatisfiable (CP204).
//! 3. **Happens-before DMA race detector** ([`detect_races`]) — a
//!    vector-clock analysis over the [`cp_trace::hb`] event stream that
//!    flags overlapping local-store byte ranges accessed without an
//!    ordering edge (CP101), the silent-corruption class the Co-Pilot
//!    address-translation design makes easy to write.
//!
//! Every [`Diagnostic`] carries a stable machine-readable [`CheckCode`],
//! a [`Severity`], and the offending endpoints in the same
//! `spe(node,slot)` notation the deadlock detector uses. The runtimes
//! enable the passes with `with_strict_checks()` (errors abort before
//! the run) or `with_checks()` (findings become `wiring-lint` /
//! `dma-race` incidents in the `SimReport`). Policy over the raw
//! findings — per-code [`LintLevel`]s, endpoint-scoped suppressions,
//! committed baselines — lives in [`LintConfig`]; [`to_sarif`] exports a
//! finding set as a SARIF 2.1.0 log for code-scanning upload.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analyze;
pub mod config;
pub mod diag;
pub mod graph;
pub mod race;
pub mod sarif;
pub mod verify;

pub use analyze::analyze;
pub use config::{LintConfig, LintLevel};
pub use diag::{render, CheckCode, Diagnostic, Severity};
pub use graph::{
    GraphBundle, GraphBundleUsage, GraphChannel, GraphChannelFlow, GraphEndpoint, GraphProcess,
    GraphWindow, RelayCostModel, WiringGraph,
};
pub use race::detect_races;
pub use sarif::to_sarif;
pub use verify::verify;
