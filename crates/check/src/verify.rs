//! The configure-time wiring verifier: CP001–CP014 over a
//! [`WiringGraph`].

use crate::diag::{CheckCode, Diagnostic, Severity};
use crate::graph::{GraphBundleUsage, GraphEndpoint, WiringGraph, MAILBOX_INLINE_CAPACITY};
use std::collections::BTreeMap;

fn ep(g: &WiringGraph, p: usize) -> Vec<String> {
    match g.processes.get(p) {
        Some(proc_) => vec![proc_.at.to_string()],
        None => Vec::new(),
    }
}

fn pname(g: &WiringGraph, p: usize) -> String {
    match g.processes.get(p) {
        Some(proc_) => format!("'{}'", proc_.name),
        None => format!("#{p}"),
    }
}

/// Which rendezvous machinery serves a channel type: MPI rank↔rank (1),
/// Co-Pilot proxying to one SPE side (2, 3), or SPE↔SPE pairing (4, 5).
/// Bundles whose members span the SPE-pairing class and any other class
/// have no single completion order and draw [`CheckCode::Cp008`].
fn rendezvous_class(chan_type: u8) -> u8 {
    match chan_type {
        1 => 0,
        2 | 3 => 1,
        _ => 2,
    }
}

/// Lint the full process/channel/bundle graph. Diagnostics come out in a
/// deterministic order: per-process checks first, then per-channel,
/// per-node, and per-bundle checks, each in index order.
pub fn verify(g: &WiringGraph) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // Per-process placement checks: CP004 (nonexistent rank), CP005
    // (nonexistent Cell node), CP010 (slot collision).
    let mut slot_owner: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for (i, p) in g.processes.iter().enumerate() {
        match p.at {
            GraphEndpoint::Rank { rank, .. } => {
                if rank >= g.ranks {
                    out.push(Diagnostic::new(
                        CheckCode::Cp004,
                        Severity::Error,
                        format!(
                            "process {} placed on nonexistent rank {rank} ({} ranks configured)",
                            pname(g, i),
                            g.ranks
                        ),
                        vec![p.at.to_string()],
                    ));
                }
            }
            GraphEndpoint::Spe { node, slot } => {
                if !g.cell_nodes.contains_key(&node) {
                    out.push(Diagnostic::new(
                        CheckCode::Cp005,
                        Severity::Error,
                        format!(
                            "SPE process {} placed on node {node}, which is not a Cell node",
                            pname(g, i)
                        ),
                        vec![p.at.to_string()],
                    ));
                }
                if let Some(&prev) = slot_owner.get(&(node, slot)) {
                    out.push(Diagnostic::new(
                        CheckCode::Cp010,
                        Severity::Error,
                        format!(
                            "SPE processes {} and {} are both bound to the same slot",
                            pname(g, prev),
                            pname(g, i)
                        ),
                        vec![p.at.to_string()],
                    ));
                } else {
                    slot_owner.insert((node, slot), i);
                }
            }
        }
    }

    // Per-channel checks: CP001/CP002 (orphan ends), CP004 (endpoint on a
    // nonexistent process), CP009 (self-channel), CP007 (SPE endpoint on
    // a node without a Co-Pilot).
    for (c, ch) in g.channels.iter().enumerate() {
        for (end, label) in [(ch.writer, "writer"), (ch.reader, "reader")] {
            if let Some(p) = end {
                if p >= g.processes.len() {
                    out.push(Diagnostic::new(
                        CheckCode::Cp004,
                        Severity::Error,
                        format!("channel {c} {label} references nonexistent process #{p}"),
                        Vec::new(),
                    ));
                }
            }
        }
        match ch.writer {
            None => out.push(Diagnostic::new(
                CheckCode::Cp001,
                Severity::Error,
                format!("channel {c} is never written: it has no writer endpoint"),
                ch.reader.map(|p| ep(g, p)).unwrap_or_default(),
            )),
            Some(w) => {
                if ch.reader == Some(w) {
                    out.push(Diagnostic::new(
                        CheckCode::Cp009,
                        Severity::Error,
                        format!("channel {c} connects process {} to itself", pname(g, w)),
                        ep(g, w),
                    ));
                }
            }
        }
        if ch.reader.is_none() {
            out.push(Diagnostic::new(
                CheckCode::Cp002,
                Severity::Error,
                format!("channel {c} is never read: it has no reader endpoint"),
                ch.writer.map(|p| ep(g, p)).unwrap_or_default(),
            ));
        }
        if let Some(t) = g.channel_type(c) {
            if t >= 2 {
                for p in [ch.writer, ch.reader].into_iter().flatten() {
                    if let Some(GraphEndpoint::Spe { node, slot }) =
                        g.processes.get(p).map(|pr| pr.at)
                    {
                        if !g.copilot_nodes.contains(&node) {
                            out.push(Diagnostic::new(
                                CheckCode::Cp007,
                                Severity::Error,
                                format!(
                                    "type-{t} channel {c} routes through node {node}, \
                                     which has no Co-Pilot to proxy SPE traffic",
                                    t = t,
                                ),
                                vec![GraphEndpoint::Spe { node, slot }.to_string()],
                            ));
                        }
                    }
                }
            }
        }
    }

    // Per-node occupancy: CP006 (slot oversubscription).
    for (&node, &capacity) in &g.cell_nodes {
        let slots: Vec<usize> = g
            .processes
            .iter()
            .filter_map(|p| match p.at {
                GraphEndpoint::Spe { node: n, slot } if n == node => Some(slot),
                _ => None,
            })
            .collect();
        let mut distinct = slots.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let max_slot = distinct.last().copied();
        if distinct.len() > capacity || max_slot.is_some_and(|s| s >= capacity) {
            let worst = max_slot.unwrap_or(0);
            out.push(Diagnostic::new(
                CheckCode::Cp006,
                Severity::Error,
                format!(
                    "node {node} oversubscribed: {} SPE slots used (highest slot {worst}), \
                     {capacity} SPEs available",
                    distinct.len()
                ),
                vec![GraphEndpoint::Spe { node, slot: worst }.to_string()],
            ));
        }
    }

    // Per-bundle checks: CP003 (direction mismatch vs the common
    // endpoint), CP008 (incompatible rendezvous classes).
    for (b, bundle) in g.bundles.iter().enumerate() {
        let mut classes: Vec<u8> = Vec::new();
        let mut types: Vec<u8> = Vec::new();
        for &c in &bundle.channels {
            let Some(ch) = g.channels.get(c) else {
                continue;
            };
            let held = match bundle.usage {
                GraphBundleUsage::Broadcast => ch.writer,
                GraphBundleUsage::Gather => ch.reader,
            };
            if held != Some(bundle.common) {
                let side = match bundle.usage {
                    GraphBundleUsage::Broadcast => "written",
                    GraphBundleUsage::Gather => "read",
                };
                let mut endpoints = ep(g, bundle.common);
                if let Some(h) = held {
                    endpoints.extend(ep(g, h));
                }
                out.push(Diagnostic::new(
                    CheckCode::Cp003,
                    Severity::Error,
                    format!(
                        "{} bundle {b}: member channel {c} is not {side} by the \
                         common endpoint {}",
                        bundle.usage,
                        pname(g, bundle.common)
                    ),
                    endpoints,
                ));
            }
            if let Some(t) = g.channel_type(c) {
                types.push(t);
                classes.push(rendezvous_class(t));
            }
        }
        classes.sort_unstable();
        classes.dedup();
        if classes.contains(&2) && classes.len() > 1 {
            types.sort_unstable();
            types.dedup();
            out.push(Diagnostic::new(
                CheckCode::Cp008,
                Severity::Warning,
                format!(
                    "{} bundle {b} mixes incompatible channel types {{{}}}: \
                     SPE↔SPE pairing and rank-side rendezvous have no common \
                     completion order",
                    bundle.usage,
                    types
                        .iter()
                        .map(|t| t.to_string())
                        .collect::<Vec<_>>()
                        .join(","),
                ),
                ep(g, bundle.common),
            ));
        }
    }

    // One-sided checks, appended after the classic groups so existing
    // diagnostic orderings are unchanged: per-channel CP012 (one-sided
    // channel without a usable window), then per-window CP011
    // (duplicate/overlapping registration) and CP012 (stray or
    // wrong-direction window), each in index order.
    for (c, ch) in g.channels.iter().enumerate() {
        if !ch.one_sided {
            continue;
        }
        let reader_at = ch.reader.and_then(|p| g.processes.get(p)).map(|p| p.at);
        match reader_at {
            Some(GraphEndpoint::Spe { node, slot }) => {
                let has_window = g
                    .windows
                    .iter()
                    .any(|w| w.chan == c && w.node == node && w.slot == slot);
                if !has_window {
                    out.push(Diagnostic::new(
                        CheckCode::Cp012,
                        Severity::Error,
                        format!(
                            "one-sided channel {c} has no window registered in its \
                             reader's local store: puts would target unregistered memory"
                        ),
                        vec![GraphEndpoint::Spe { node, slot }.to_string()],
                    ));
                }
            }
            Some(at @ GraphEndpoint::Rank { .. }) => {
                out.push(Diagnostic::new(
                    CheckCode::Cp012,
                    Severity::Error,
                    format!(
                        "one-sided channel {c} is read at {at}: windows live in SPE \
                         local stores, so the reader must be an SPE process"
                    ),
                    vec![at.to_string()],
                ));
            }
            // No reader at all: CP002 already covers the orphan.
            None => {}
        }
    }
    for (i, w) in g.windows.iter().enumerate() {
        for prev in &g.windows[..i] {
            if prev.chan == w.chan
                || (prev.node == w.node
                    && prev.slot == w.slot
                    && u64::from(prev.start) < u64::from(w.start) + u64::from(w.len)
                    && u64::from(w.start) < u64::from(prev.start) + u64::from(prev.len))
            {
                let how = if prev.chan == w.chan {
                    format!("duplicates channel {}'s window", w.chan)
                } else {
                    format!("overlaps channel {}'s window", prev.chan)
                };
                out.push(Diagnostic::new(
                    CheckCode::Cp011,
                    Severity::Error,
                    format!(
                        "window [{:#x}..{:#x}) for channel {} {how}",
                        w.start,
                        u64::from(w.start) + u64::from(w.len),
                        w.chan
                    ),
                    vec![GraphEndpoint::Spe {
                        node: w.node,
                        slot: w.slot,
                    }
                    .to_string()],
                ));
                break;
            }
        }
        let one_sided = g.channels.get(w.chan).is_some_and(|ch| ch.one_sided);
        if !one_sided {
            out.push(Diagnostic::new(
                CheckCode::Cp012,
                Severity::Error,
                format!(
                    "window [{:#x}..{:#x}) registered for channel {}, which is not \
                     a one-sided channel: nothing will ever put into it",
                    w.start,
                    u64::from(w.start) + u64::from(w.len),
                    w.chan
                ),
                vec![GraphEndpoint::Spe {
                    node: w.node,
                    slot: w.slot,
                }
                .to_string()],
            ));
        }
    }

    // Flow-control checks (CP013), appended after every other group so
    // existing diagnostic orderings are unchanged. Both halves are
    // warnings — backpressure configuration is advice, never an abort.
    // An inert policy (non-Block with no capacity) is always flagged; the
    // unbounded-channel advisory only fires in strict mode and only once
    // the application has opted into flow control by bounding at least
    // one channel, so capacity-free configurations stay silent.
    let any_bounded = g.channel_flow.values().any(|f| f.capacity.is_some());
    for (c, ch) in g.channels.iter().enumerate() {
        let flow = g.channel_flow.get(&c);
        let capacity = flow.and_then(|f| f.capacity);
        let blocks = flow.map(|f| f.blocks).unwrap_or(true);
        let endpoints = ch.writer.map(|p| ep(g, p)).unwrap_or_default();
        if !blocks && capacity.is_none() {
            out.push(Diagnostic::new(
                CheckCode::Cp013,
                Severity::Warning,
                format!(
                    "channel {c} declares a non-blocking overload policy but no \
                     capacity: the policy is inert (an unbounded channel never sheds)"
                ),
                endpoints.clone(),
            ));
        }
        if g.flow_strict && any_bounded && capacity.is_none() {
            out.push(Diagnostic::new(
                CheckCode::Cp013,
                Severity::Warning,
                format!(
                    "channel {c} is unbounded while other channels declare a \
                     capacity: an overloaded writer can grow its queue without limit"
                ),
                endpoints,
            ));
        }
    }

    // Eager/coalescing checks (CP014), appended after the CP013 group so
    // existing diagnostic orderings are unchanged. Both halves are
    // warnings: the configurations are inert or contradictory, never
    // unsafe. First per-channel (an eager threshold the mailbox exchange
    // cannot honor), then per-bundle (a coalescing batch that the member
    // channel's capacity can never accumulate), each in index order.
    for (&c, &threshold) in &g.channel_eager {
        if threshold > MAILBOX_INLINE_CAPACITY {
            let endpoints = g
                .channels
                .get(c)
                .and_then(|ch| ch.writer)
                .map(|p| ep(g, p))
                .unwrap_or_default();
            out.push(Diagnostic::new(
                CheckCode::Cp014,
                Severity::Warning,
                format!(
                    "channel {c} declares an eager threshold of {threshold} bytes, but one \
                     mailbox exchange carries at most {MAILBOX_INLINE_CAPACITY}: payloads \
                     above {MAILBOX_INLINE_CAPACITY} bytes always take the DMA path"
                ),
                endpoints,
            ));
        }
    }
    for (&b, &batch) in &g.bundle_coalesce {
        let Some(bundle) = g.bundles.get(b) else {
            continue;
        };
        for &c in &bundle.channels {
            let capacity = g.channel_flow.get(&c).and_then(|f| f.capacity);
            if let Some(cap) = capacity {
                if cap < batch {
                    out.push(Diagnostic::new(
                        CheckCode::Cp014,
                        Severity::Warning,
                        format!(
                            "bundle {b} coalesces in batches of {batch}, but member \
                             channel {c} is bounded at capacity {cap}: a full batch \
                             can never accumulate (the writer backpressures first)"
                        ),
                        ep(g, bundle.common),
                    ));
                }
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> WiringGraph {
        let mut g = WiringGraph::new(3);
        g.add_cell_node(0, 8);
        g.add_cell_node(1, 8);
        g.add_copilot(0);
        g.add_copilot(1);
        g
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn clean_graph_has_no_diagnostics() {
        let mut g = base();
        let main = g.add_rank_process("main", 0, 0);
        let xeon = g.add_rank_process("xeon", 1, 2);
        let s0a = g.add_spe_process("s0a", 0, 0);
        let s1a = g.add_spe_process("s1a", 1, 0);
        let c1 = g.add_channel(main, xeon);
        let c2 = g.add_channel(main, s0a);
        let c3 = g.add_channel(main, s1a);
        g.add_channel(xeon, s1a);
        g.add_channel(s1a, s0a);
        g.add_bundle(GraphBundleUsage::Broadcast, &[c1, c2, c3], main);
        assert_eq!(verify(&g), Vec::new());
    }

    #[test]
    fn orphan_channel_draws_cp001_and_cp002() {
        let mut g = base();
        let main = g.add_rank_process("main", 0, 0);
        g.add_half_channel(None, Some(main));
        g.add_half_channel(Some(main), None);
        g.add_half_channel(None, None);
        assert_eq!(codes(&verify(&g)), vec!["CP001", "CP002", "CP001", "CP002"]);
    }

    #[test]
    fn misplaced_processes_draw_cp004_and_cp005() {
        let mut g = base();
        g.add_rank_process("ghost", 7, 0);
        g.add_spe_process("lost", 9, 0);
        let d = verify(&g);
        assert_eq!(codes(&d), vec!["CP004", "CP005"]);
        assert_eq!(d[0].endpoints, vec!["rank 7"]);
        assert_eq!(d[1].endpoints, vec!["spe(9,0)"]);
    }

    #[test]
    fn oversubscription_draws_cp006() {
        let mut g = base();
        for slot in 0..9 {
            g.add_spe_process(&format!("w{slot}"), 0, slot);
        }
        let d = verify(&g);
        assert_eq!(codes(&d), vec!["CP006"]);
        assert_eq!(d[0].endpoints, vec!["spe(0,8)"]);
    }

    #[test]
    fn missing_copilot_route_draws_cp007() {
        let mut g = WiringGraph::new(2);
        g.add_cell_node(0, 8);
        g.add_cell_node(1, 8);
        g.add_copilot(0); // node 1 has no Co-Pilot
        let xeon = g.add_rank_process("xeon", 1, 2);
        let s1a = g.add_spe_process("s1a", 1, 0);
        let s0a = g.add_spe_process("s0a", 0, 0);
        g.add_channel(xeon, s1a); // type 3, node 1 unrouted
        g.add_channel(s0a, s1a); // type 5, node 1 unrouted
        let d = verify(&g);
        assert_eq!(codes(&d), vec!["CP007", "CP007"]);
        assert!(d[0].message.contains("type-3"));
        assert!(d[1].message.contains("type-5"));
        assert_eq!(d[1].endpoints, vec!["spe(1,0)"]);
    }

    #[test]
    fn direction_mismatch_and_self_channel() {
        let mut g = base();
        let main = g.add_rank_process("main", 0, 0);
        let xeon = g.add_rank_process("xeon", 1, 2);
        let good = g.add_channel(main, xeon);
        let backwards = g.add_channel(xeon, main);
        g.add_bundle(GraphBundleUsage::Broadcast, &[good, backwards], main);
        g.add_half_channel(Some(main), Some(main));
        assert_eq!(codes(&verify(&g)), vec!["CP009", "CP003"]);
    }

    #[test]
    fn slot_collision_draws_cp010() {
        let mut g = base();
        g.add_spe_process("a", 0, 0);
        g.add_spe_process("b", 0, 0);
        assert_eq!(codes(&verify(&g)), vec!["CP010"]);
    }

    #[test]
    fn one_sided_channel_with_window_is_clean() {
        let mut g = base();
        let main = g.add_rank_process("main", 0, 0);
        let s1a = g.add_spe_process("s1a", 1, 0);
        let c = g.add_channel(main, s1a); // type 3
        g.mark_one_sided(c);
        g.add_window(c, 1, 0, 0x400, 2048);
        assert_eq!(verify(&g), Vec::new());
    }

    #[test]
    fn overlapping_and_duplicate_windows_draw_cp011() {
        let mut g = base();
        let main = g.add_rank_process("main", 0, 0);
        let s1a = g.add_spe_process("s1a", 1, 0);
        let s1b = g.add_spe_process("s1b", 1, 1);
        let c0 = g.add_channel(main, s1a);
        let c1 = g.add_channel(main, s1b);
        g.mark_one_sided(c0);
        g.mark_one_sided(c1);
        g.add_window(c0, 1, 0, 0x400, 2048);
        g.add_window(c1, 1, 1, 0x400, 2048); // other SPE: fine
        g.add_window(c1, 1, 1, 0x800, 64); // same channel again: duplicate
        let d = verify(&g);
        assert_eq!(codes(&d), vec!["CP011"]);
        assert!(d[0].message.contains("duplicates"), "{}", d[0].message);
        // Overlap on the same SPE (distinct channels) is also CP011.
        let mut g = base();
        let main = g.add_rank_process("main", 0, 0);
        let s1a = g.add_spe_process("s1a", 1, 0);
        let s1b = g.add_spe_process("s1b", 1, 1);
        let c0 = g.add_channel(main, s1a);
        let c1 = g.add_channel(main, s1b);
        g.mark_one_sided(c0);
        g.mark_one_sided(c1);
        g.add_window(c0, 1, 0, 0x400, 2048);
        g.add_window(c1, 1, 0, 0xbff, 64); // last byte of c0's window
        let d = verify(&g);
        // The misplaced window also leaves c1 without one in its own
        // reader's store, so CP012 precedes the CP011 overlap.
        assert_eq!(codes(&d), vec!["CP012", "CP011"]);
        assert!(d[1].message.contains("overlaps"), "{}", d[1].message);
        assert_eq!(d[1].endpoints, vec!["spe(1,0)"]);
    }

    #[test]
    fn unregistered_or_wrong_direction_window_draws_cp012() {
        // One-sided channel with no window at all.
        let mut g = base();
        let main = g.add_rank_process("main", 0, 0);
        let s1a = g.add_spe_process("s1a", 1, 0);
        let c = g.add_channel(main, s1a);
        g.mark_one_sided(c);
        let d = verify(&g);
        assert_eq!(codes(&d), vec!["CP012"]);
        assert!(d[0].message.contains("no window"), "{}", d[0].message);
        // One-sided channel read by a rank: wrong direction.
        let mut g = base();
        let main = g.add_rank_process("main", 0, 0);
        let s1a = g.add_spe_process("s1a", 1, 0);
        let c = g.add_channel(s1a, main);
        g.mark_one_sided(c);
        let d = verify(&g);
        assert_eq!(codes(&d), vec!["CP012"]);
        assert!(d[0].message.contains("rank 0"), "{}", d[0].message);
        // Window registered for a channel that never puts one-sided.
        let mut g = base();
        let main = g.add_rank_process("main", 0, 0);
        let s1a = g.add_spe_process("s1a", 1, 0);
        let c = g.add_channel(main, s1a);
        g.add_window(c, 1, 0, 0x400, 2048);
        let d = verify(&g);
        assert_eq!(codes(&d), vec!["CP012"]);
        assert!(d[0].message.contains("not"), "{}", d[0].message);
    }

    #[test]
    fn inert_overload_policy_draws_cp013() {
        let mut g = base();
        let main = g.add_rank_process("main", 0, 0);
        let xeon = g.add_rank_process("xeon", 1, 2);
        let c = g.add_channel(main, xeon);
        g.set_channel_flow(c, None, false); // Shed policy, no capacity
        let d = verify(&g);
        assert_eq!(codes(&d), vec!["CP013"]);
        assert!(!d[0].is_error(), "CP013 is a warning");
        assert!(d[0].message.contains("inert"), "{}", d[0].message);
        assert_eq!(d[0].endpoints, vec!["rank 0"]);
    }

    #[test]
    fn unbounded_channel_advisory_needs_strict_and_a_bounded_peer() {
        let mut g = base();
        let main = g.add_rank_process("main", 0, 0);
        let xeon = g.add_rank_process("xeon", 1, 2);
        let bounded = g.add_channel(main, xeon);
        let unbounded = g.add_channel(xeon, main);
        g.set_channel_flow(bounded, Some(8), true);
        g.set_channel_flow(unbounded, None, true);
        // Not strict: silent.
        assert_eq!(verify(&g), Vec::new());
        // Strict with a bounded peer: the unbounded channel is flagged.
        g.set_flow_strict(true);
        let d = verify(&g);
        assert_eq!(codes(&d), vec!["CP013"]);
        assert!(d[0].message.contains("unbounded"), "{}", d[0].message);
        assert_eq!(d[0].endpoints, vec!["rank 1"]);
        // Strict but nothing bounded anywhere: still silent — an
        // application that never opted into flow control is untouched.
        let mut g = base();
        let main = g.add_rank_process("main", 0, 0);
        let xeon = g.add_rank_process("xeon", 1, 2);
        let c = g.add_channel(main, xeon);
        g.set_channel_flow(c, None, true);
        g.set_flow_strict(true);
        assert_eq!(verify(&g), Vec::new());
    }

    #[test]
    fn oversized_eager_threshold_draws_cp014() {
        let mut g = base();
        let main = g.add_rank_process("main", 0, 0);
        let s0a = g.add_spe_process("s0a", 0, 0);
        let c = g.add_channel(main, s0a);
        g.set_channel_eager(c, MAILBOX_INLINE_CAPACITY); // at the limit: fine
        assert_eq!(verify(&g), Vec::new());
        g.set_channel_eager(c, 64);
        let d = verify(&g);
        assert_eq!(codes(&d), vec!["CP014"]);
        assert!(!d[0].is_error(), "CP014 is a warning");
        assert!(d[0].message.contains("64 bytes"), "{}", d[0].message);
        assert_eq!(d[0].endpoints, vec!["rank 0"]);
    }

    #[test]
    fn coalesce_batch_above_member_capacity_draws_cp014() {
        let mut g = base();
        let main = g.add_rank_process("main", 0, 0);
        let s0a = g.add_spe_process("s0a", 0, 0);
        let s0b = g.add_spe_process("s0b", 0, 1);
        let c0 = g.add_channel(main, s0a);
        let c1 = g.add_channel(main, s0b);
        g.set_channel_flow(c0, Some(4), true);
        g.set_channel_flow(c1, Some(64), true);
        let b = g.add_bundle(GraphBundleUsage::Broadcast, &[c0, c1], main);
        g.set_bundle_coalesce(b, 4); // batch == capacity: fine
        assert_eq!(verify(&g), Vec::new());
        g.set_bundle_coalesce(b, 16); // c0 can never hold a full batch
        let d = verify(&g);
        assert_eq!(codes(&d), vec!["CP014"]);
        assert!(!d[0].is_error(), "CP014 is a warning");
        assert!(d[0].message.contains("channel 0"), "{}", d[0].message);
        // Unbounded members never warn.
        g.set_channel_flow(c0, None, true);
        g.set_channel_flow(c1, None, true);
        assert_eq!(verify(&g), Vec::new());
    }

    #[test]
    fn cp014_orders_after_cp013_group() {
        let mut g = base();
        let main = g.add_rank_process("main", 0, 0);
        let xeon = g.add_rank_process("xeon", 1, 2);
        let c = g.add_channel(main, xeon);
        g.set_channel_flow(c, None, false); // inert policy: CP013
        g.set_channel_eager(c, 64); // oversized threshold: CP014
        assert_eq!(codes(&verify(&g)), vec!["CP013", "CP014"]);
    }

    #[test]
    fn mixed_bundle_draws_cp008_warning() {
        let mut g = base();
        let s0a = g.add_spe_process("s0a", 0, 0);
        let s0b = g.add_spe_process("s0b", 0, 1);
        let xeon = g.add_rank_process("xeon", 1, 2);
        let pair = g.add_channel(s0a, s0b); // type 4
        let remote = g.add_channel(s0a, xeon); // type 3
        g.add_bundle(GraphBundleUsage::Broadcast, &[pair, remote], s0a);
        let d = verify(&g);
        assert_eq!(codes(&d), vec!["CP008"]);
        assert!(!d[0].is_error(), "CP008 is a warning");
        assert!(d[0].message.contains("{3,4}"));
    }
}
