//! Happens-before DMA race detection over the [`cp_trace::hb`] stream.
//!
//! ## The model
//!
//! Every DES process (`actor`) advances a component of a vector clock in
//! program order. Three kinds of ordering edges join clocks:
//!
//! * **queue edges** — a [`HbOp::MsgRecv`] joins the clock its matching
//!   [`HbOp::MsgSend`] was recorded with (mailbox words, Co-Pilot event
//!   queues, channel rendezvous);
//! * **DMA completion edges** — a [`HbOp::DmaWait`] joins the clocks of
//!   every transfer issued so far on that SPE under a tag in the mask;
//! * **one-sided fabric edges** — a [`HbOp::OneSidedGet`] joins the clock
//!   of the matching [`HbOp::OneSidedPut`] (same channel and sequence
//!   number), exactly like a queue edge; a put is also a remote *write*
//!   of the window's local-store bytes and a get a *read* of them, so an
//!   SPE program touching its own window region without the fabric
//!   handshake in between races with the remote writer;
//! * **program order** — an actor's own clock only grows.
//!
//! An MFC transfer is *not* part of its issuer's program order: it gets
//! the issuer's clock at issue time plus one private component nobody
//! else holds, so two back-to-back transfers — or a transfer and the
//! issuing program's own subsequent local-store accesses — stay
//! concurrent until a covering `dma_wait` joins the transfer back in.
//! That is exactly the MFC's contract: tag groups order nothing until
//! waited on.
//!
//! A **race** is two accesses to overlapping byte ranges of the same
//! physical local store, at least one a write, whose clocks are
//! incomparable.

use crate::diag::{CheckCode, Diagnostic, Severity};
use cp_trace::{HbEvent, HbOp};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A sparse vector clock: component id → count.
type Vc = BTreeMap<u32, u64>;

/// `a ≤ b` in the component-wise partial order.
fn vc_leq(a: &Vc, b: &Vc) -> bool {
    a.iter()
        .all(|(k, va)| b.get(k).copied().unwrap_or(0) >= *va)
}

fn vc_join(into: &mut Vc, other: &Vc) {
    for (&k, &v) in other {
        let e = into.entry(k).or_insert(0);
        *e = (*e).max(v);
    }
}

/// One local-store access with its clock.
struct Access {
    node: usize,
    spe: usize,
    start: u32,
    len: u32,
    write: bool,
    vc: Vc,
    /// Who touched the bytes, for the diagnostic.
    who: String,
    ts_ns: u64,
}

fn overlaps(a: &Access, b: &Access) -> bool {
    a.node == b.node
        && a.spe == b.spe
        && a.start < b.start.saturating_add(b.len)
        && b.start < a.start.saturating_add(a.len)
}

/// An issued MFC transfer awaiting (or never receiving) a wait.
struct Transfer {
    tag: u32,
    vc: Vc,
}

/// Replay the happens-before stream and report every pair of unordered
/// overlapping local-store accesses as a [`CheckCode::Cp101`] diagnostic.
/// Deterministic: the stream is replayed in record order and findings
/// come out in first-access order, deduplicated per accessor pair.
pub fn detect_races(events: &[HbEvent]) -> Vec<Diagnostic> {
    let mut next_component: u32 = 0;
    let mut actor_ids: HashMap<String, u32> = HashMap::new();
    let mut clocks: HashMap<u32, Vc> = HashMap::new();
    let mut sends: HashMap<(String, u64), Vc> = HashMap::new();
    let mut transfers: HashMap<(usize, usize), Vec<Transfer>> = HashMap::new();
    let mut accesses: Vec<Access> = Vec::new();

    for ev in events {
        let id = *actor_ids.entry(ev.actor.clone()).or_insert_with(|| {
            let id = next_component;
            next_component += 1;
            id
        });
        let clock = clocks.entry(id).or_default();
        *clock.entry(id).or_insert(0) += 1;
        match &ev.op {
            HbOp::MsgSend { queue, seq } => {
                sends.insert((queue.clone(), *seq), clock.clone());
            }
            HbOp::MsgRecv { queue, seq } => {
                if let Some(sv) = sends.get(&(queue.clone(), *seq)) {
                    vc_join(clock, sv);
                }
            }
            HbOp::DmaIssue {
                node,
                spe,
                put,
                tag,
                ls_start,
                len,
            } => {
                let t = next_component;
                next_component += 1;
                let mut tvc = clock.clone();
                tvc.insert(t, 1);
                accesses.push(Access {
                    node: *node,
                    spe: *spe,
                    start: *ls_start,
                    len: *len,
                    // A get writes local store; a put reads it.
                    write: !*put,
                    vc: tvc.clone(),
                    who: format!(
                        "{} dma-{} tag {tag}",
                        ev.actor,
                        if *put { "put" } else { "get" }
                    ),
                    ts_ns: ev.ts_ns,
                });
                transfers
                    .entry((*node, *spe))
                    .or_default()
                    .push(Transfer { tag: *tag, vc: tvc });
            }
            HbOp::DmaWait { node, spe, mask } => {
                if let Some(ts) = transfers.get(&(*node, *spe)) {
                    for t in ts.iter().filter(|t| t.tag < 32 && mask & (1 << t.tag) != 0) {
                        vc_join(clock, &t.vc);
                    }
                }
            }
            HbOp::LsRead {
                node,
                spe,
                start,
                len,
            }
            | HbOp::LsWrite {
                node,
                spe,
                start,
                len,
            } => {
                accesses.push(Access {
                    node: *node,
                    spe: *spe,
                    start: *start,
                    len: *len,
                    write: matches!(ev.op, HbOp::LsWrite { .. }),
                    vc: clock.clone(),
                    who: ev.actor.clone(),
                    ts_ns: ev.ts_ns,
                });
            }
            HbOp::OneSidedPut {
                chan,
                node,
                spe,
                start,
                len,
                seq,
            } => {
                // The put is the send half of a fabric edge keyed on
                // (channel, seq) — the "one-sided:" prefix keeps the key
                // space disjoint from real queue labels — and a remote
                // write of the window bytes.
                sends.insert((format!("one-sided:{chan}"), *seq), clock.clone());
                accesses.push(Access {
                    node: *node,
                    spe: *spe,
                    start: *start,
                    len: *len,
                    write: true,
                    vc: clock.clone(),
                    who: format!("{} put c{chan} seq {seq}", ev.actor),
                    ts_ns: ev.ts_ns,
                });
            }
            HbOp::OneSidedGet {
                chan,
                node,
                spe,
                start,
                len,
                seq,
            } => {
                if let Some(sv) = sends.get(&(format!("one-sided:{chan}"), *seq)) {
                    vc_join(clock, sv);
                }
                accesses.push(Access {
                    node: *node,
                    spe: *spe,
                    start: *start,
                    len: *len,
                    write: false,
                    vc: clock.clone(),
                    who: format!("{} get c{chan} seq {seq}", ev.actor),
                    ts_ns: ev.ts_ns,
                });
            }
        }
    }

    let mut out = Vec::new();
    let mut seen: BTreeSet<(usize, usize, String, String)> = BTreeSet::new();
    for i in 0..accesses.len() {
        for j in (i + 1)..accesses.len() {
            let (a, b) = (&accesses[i], &accesses[j]);
            if !(a.write || b.write) || !overlaps(a, b) {
                continue;
            }
            if vc_leq(&a.vc, &b.vc) || vc_leq(&b.vc, &a.vc) {
                continue;
            }
            let key = (a.node, a.spe, a.who.clone(), b.who.clone());
            if !seen.insert(key) {
                continue;
            }
            out.push(Diagnostic::new(
                CheckCode::Cp101,
                Severity::Error,
                format!(
                    "unordered overlapping local-store accesses: \
                     {} {}s [{:#x}..{:#x}) at t={}ns vs {} {}s [{:#x}..{:#x}) at t={}ns",
                    a.who,
                    if a.write { "write" } else { "read" },
                    a.start,
                    a.start.saturating_add(a.len),
                    a.ts_ns,
                    b.who,
                    if b.write { "write" } else { "read" },
                    b.start,
                    b.start.saturating_add(b.len),
                    b.ts_ns,
                ),
                vec![format!("spe({},{})", a.node, a.spe)],
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn issue(actor: &str, ts: u64, put: bool, tag: u32, ls: u32, len: u32) -> HbEvent {
        HbEvent {
            actor: actor.into(),
            ts_ns: ts,
            op: HbOp::DmaIssue {
                node: 0,
                spe: 0,
                put,
                tag,
                ls_start: ls,
                len,
            },
        }
    }

    fn wait(actor: &str, ts: u64, mask: u32) -> HbEvent {
        HbEvent {
            actor: actor.into(),
            ts_ns: ts,
            op: HbOp::DmaWait {
                node: 0,
                spe: 0,
                mask,
            },
        }
    }

    #[test]
    fn unfenced_get_then_put_races() {
        let d = detect_races(&[
            issue("spe", 0, false, 0, 0x100, 128), // get: writes LS
            issue("spe", 10, true, 1, 0x100, 128), // put: reads LS, no wait between
            wait("spe", 20, 0b11),
        ]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].code, CheckCode::Cp101);
        assert_eq!(d[0].endpoints, vec!["spe(0,0)"]);
        assert!(d[0].message.contains("dma-get tag 0"));
        assert!(d[0].message.contains("dma-put tag 1"));
    }

    #[test]
    fn fenced_get_then_put_is_clean() {
        let d = detect_races(&[
            issue("spe", 0, false, 0, 0x100, 128),
            wait("spe", 10, 0b1),
            issue("spe", 20, true, 1, 0x100, 128),
            wait("spe", 30, 0b10),
        ]);
        assert_eq!(d, Vec::new());
    }

    #[test]
    fn disjoint_ranges_do_not_race() {
        let d = detect_races(&[
            issue("spe", 0, false, 0, 0x100, 128),
            issue("spe", 10, true, 1, 0x180, 128),
            wait("spe", 20, 0b11),
        ]);
        assert_eq!(d, Vec::new());
    }

    #[test]
    fn two_reads_do_not_race() {
        let d = detect_races(&[
            issue("spe", 0, true, 0, 0x100, 128),
            issue("spe", 10, true, 1, 0x100, 128),
            wait("spe", 20, 0b11),
        ]);
        assert_eq!(d, Vec::new());
    }

    #[test]
    fn transfer_races_with_program_store_until_waited() {
        // The program stores into the buffer while an unwaited get is
        // still landing into it.
        let racy = detect_races(&[
            issue("spe", 0, false, 0, 0x100, 128),
            HbEvent {
                actor: "spe".into(),
                ts_ns: 5,
                op: HbOp::LsWrite {
                    node: 0,
                    spe: 0,
                    start: 0x100,
                    len: 16,
                },
            },
        ]);
        assert_eq!(racy.len(), 1);
        let fenced = detect_races(&[
            issue("spe", 0, false, 0, 0x100, 128),
            wait("spe", 3, 0b1),
            HbEvent {
                actor: "spe".into(),
                ts_ns: 5,
                op: HbOp::LsWrite {
                    node: 0,
                    spe: 0,
                    start: 0x100,
                    len: 16,
                },
            },
        ]);
        assert_eq!(fenced, Vec::new());
    }

    #[test]
    fn queue_edge_orders_cross_actor_accesses() {
        let store = |actor: &str, ts: u64| HbEvent {
            actor: actor.into(),
            ts_ns: ts,
            op: HbOp::LsWrite {
                node: 0,
                spe: 1,
                start: 0x200,
                len: 64,
            },
        };
        let send = |actor: &str, ts: u64, seq: u64| HbEvent {
            actor: actor.into(),
            ts_ns: ts,
            op: HbOp::MsgSend {
                queue: "node0.spe1".into(),
                seq,
            },
        };
        let recv = |actor: &str, ts: u64, seq: u64| HbEvent {
            actor: actor.into(),
            ts_ns: ts,
            op: HbOp::MsgRecv {
                queue: "node0.spe1".into(),
                seq,
            },
        };
        // PPE writes, signals the SPE through the mailbox, SPE writes:
        // ordered.
        let clean = detect_races(&[
            store("ppe", 0),
            send("ppe", 1, 0),
            recv("spe1", 2, 0),
            store("spe1", 3),
        ]);
        assert_eq!(clean, Vec::new());
        // Without the mailbox handshake the same two writes race.
        let racy = detect_races(&[store("ppe", 0), store("spe1", 3)]);
        assert_eq!(racy.len(), 1);
        assert_eq!(racy[0].endpoints, vec!["spe(0,1)"]);
    }

    #[test]
    fn one_sided_put_get_edge_orders_window_accesses() {
        let put = |ts: u64, seq: u64| HbEvent {
            actor: "copilot0".into(),
            ts_ns: ts,
            op: HbOp::OneSidedPut {
                chan: 2,
                node: 1,
                spe: 0,
                start: 0x400,
                len: 256,
                seq,
            },
        };
        let get = |ts: u64, seq: u64| HbEvent {
            actor: "copilot1".into(),
            ts_ns: ts,
            op: HbOp::OneSidedGet {
                chan: 2,
                node: 1,
                spe: 0,
                start: 0x400,
                len: 256,
                seq,
            },
        };
        let touch = |ts: u64| HbEvent {
            actor: "node1.spe0".into(),
            ts_ns: ts,
            op: HbOp::LsWrite {
                node: 1,
                spe: 0,
                start: 0x410,
                len: 16,
            },
        };
        // put -> get -> (queue edge to the SPE) -> program store: ordered.
        let handoff_send = HbEvent {
            actor: "copilot1".into(),
            ts_ns: 25,
            op: HbOp::MsgSend {
                queue: "node1.spe0".into(),
                seq: 0,
            },
        };
        let handoff_recv = HbEvent {
            actor: "node1.spe0".into(),
            ts_ns: 26,
            op: HbOp::MsgRecv {
                queue: "node1.spe0".into(),
                seq: 0,
            },
        };
        let clean = detect_races(&[put(0, 0), get(20, 0), handoff_send, handoff_recv, touch(30)]);
        assert_eq!(clean, Vec::new());
        // The SPE scribbling over its own window region with no fabric
        // handshake races with the remote put.
        let racy = detect_races(&[put(0, 0), touch(5)]);
        assert_eq!(racy.len(), 1, "{racy:?}");
        assert_eq!(racy[0].code, CheckCode::Cp101);
        assert!(
            racy[0].message.contains("put c2 seq 0"),
            "{}",
            racy[0].message
        );
        assert_eq!(racy[0].endpoints, vec!["spe(1,0)"]);
        // A get with no matching put stays concurrent with the put of a
        // different sequence number (read vs write of the window).
        let unmatched = detect_races(&[put(0, 1), get(20, 0)]);
        assert_eq!(unmatched.len(), 1, "{unmatched:?}");
    }

    #[test]
    fn duplicate_pairs_are_reported_once() {
        let d = detect_races(&[
            issue("spe", 0, false, 0, 0x100, 128),
            issue("spe", 1, true, 1, 0x100, 64),
            issue("spe", 2, true, 1, 0x140, 64),
        ]);
        // Both puts overlap the get, but they carry the same accessor
        // label, so the second (get, put) pairing collapses into the
        // first; the put/put pair is read/read and never races.
        assert_eq!(d.len(), 1, "{d:?}");
    }
}
