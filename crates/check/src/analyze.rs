//! Configure-time progress analyzer: CP201–CP204.
//!
//! The wiring verifier ([`fn@crate::verify`]) asks "is this graph
//! well-formed?"; this pass asks "will a well-formed graph make
//! progress, and at what cost?". Everything here is decidable from the
//! frozen wiring plus the channel configs — no trace is needed:
//!
//! * **CP201** — credit-deadlock cycles: a cycle in the channel
//!   dependency graph on which every edge is a `Block`-policy bounded
//!   channel. One full round of in-flight messages wedges every writer;
//!   the report carries the cycle in the deadlock detector's endpoint
//!   notation and the minimum capacity bump that breaks it.
//! * **CP202** — Co-Pilot relay saturation: the static fan-in dispatch
//!   cost of the channels a Co-Pilot proxies (per-op costs from the
//!   runtime's cost model) exceeds its service budget. Names the hot
//!   relay and the hottest channel.
//! * **CP203** (advice) — eager-inlining opportunity: a channel whose
//!   declared payload bound fits the mailbox inline capacity is left
//!   non-eager, paying a DMA round trip per message for nothing.
//! * **CP204** — unsatisfiable fence placement: a one-sided window whose
//!   channel config leaves nowhere to fence (coalesced batches or eager
//!   inlining bypass the per-message window fence).
//!
//! Like the verifier, the pass is deliberately graph-in/diagnostics-out
//! so a dynamic-spawn registry can re-run it incrementally on every
//! topology change.

use crate::diag::{CheckCode, Diagnostic, Severity};
use crate::graph::{WiringGraph, MAILBOX_INLINE_CAPACITY};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

fn ep(g: &WiringGraph, p: usize) -> Vec<String> {
    match g.processes.get(p) {
        Some(proc_) => vec![proc_.at.to_string()],
        None => Vec::new(),
    }
}

/// Run every progress pass over the graph. The graph is assumed
/// well-formed (run [`fn@crate::verify`] first); malformed pieces —
/// orphan channels, out-of-range endpoints — are silently skipped here
/// because the verifier already owns them.
pub fn analyze(g: &WiringGraph) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    credit_cycles(g, &mut out);
    relay_saturation(g, &mut out);
    eager_advice(g, &mut out);
    fence_placement(g, &mut out);
    out
}

/// CP201: cycles on which every edge is a Block-bounded channel.
///
/// Edges are `writer → reader` over channels that declared a finite
/// capacity with the (default) `Block` overload policy. For each such
/// cycle, once every channel on it holds `capacity` undrained messages,
/// every writer blocks in `acquire_credit` and no reader ever drains —
/// the credit-ledger equivalent of a circular wait. One diagnostic is
/// emitted per cycle found, scanning start nodes in ascending process
/// order and taking the BFS-shortest cycle through each (deterministic:
/// neighbors are explored in sorted order).
fn credit_cycles(g: &WiringGraph, out: &mut Vec<Diagnostic>) {
    // adjacency: writer process → [(reader process, channel, capacity)]
    let mut adj: BTreeMap<usize, Vec<(usize, usize, usize)>> = BTreeMap::new();
    for (c, ch) in g.channels.iter().enumerate() {
        let (Some(w), Some(r)) = (ch.writer, ch.reader) else {
            continue;
        };
        if w == r || g.processes.get(w).is_none() || g.processes.get(r).is_none() {
            continue; // CP009/CP004 territory
        }
        let Some(flow) = g.channel_flow.get(&c) else {
            continue;
        };
        if let (Some(cap), true) = (flow.capacity, flow.blocks) {
            adj.entry(w).or_default().push((r, c, cap));
        }
    }
    for edges in adj.values_mut() {
        edges.sort();
    }

    let mut claimed: BTreeSet<usize> = BTreeSet::new();
    let starts: Vec<usize> = adj.keys().copied().collect();
    for s in starts {
        if claimed.contains(&s) {
            continue;
        }
        // BFS from s's successors back to s: the shortest Block-bounded
        // cycle through s, if any.
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut found = false;
        for &(v, _, _) in adj.get(&s).into_iter().flatten() {
            if v == s {
                continue;
            }
            if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(v) {
                e.insert(s);
                queue.push_back(v);
            }
        }
        'bfs: while let Some(u) = queue.pop_front() {
            for &(v, _, _) in adj.get(&u).into_iter().flatten() {
                if v == s {
                    parent.insert(s, u);
                    found = true;
                    break 'bfs;
                }
                if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(v) {
                    e.insert(u);
                    queue.push_back(v);
                }
            }
        }
        if !found {
            continue;
        }
        // Reconstruct s -> ... -> s.
        let mut rev = vec![s];
        let mut at = parent[&s];
        while at != s {
            rev.push(at);
            at = parent[&at];
        }
        rev.push(s);
        rev.reverse();
        let cycle = rev; // [s, n1, ..., nk, s]
        for &n in &cycle {
            claimed.insert(n);
        }
        // The tightest hop: per consecutive pair the smallest-capacity
        // channel (ties → smallest channel index), then the minimum over
        // the cycle.
        let mut tightest: Option<(usize, usize)> = None; // (capacity, channel)
        for pair in cycle.windows(2) {
            let hop = adj[&pair[0]]
                .iter()
                .filter(|&&(v, _, _)| v == pair[1])
                .map(|&(_, c, cap)| (cap, c))
                .min()
                .expect("cycle edges come from the adjacency");
            tightest = Some(tightest.map_or(hop, |t| t.min(hop)));
        }
        let (cap, chan) = tightest.expect("a cycle has at least two hops");
        let cycle_str = cycle
            .iter()
            .map(|&p| g.processes[p].at.to_string())
            .collect::<Vec<_>>()
            .join(" -> ");
        let endpoints: Vec<String> = cycle[..cycle.len() - 1]
            .iter()
            .map(|&p| g.processes[p].at.to_string())
            .collect();
        out.push(Diagnostic::new(
            CheckCode::Cp201,
            Severity::Warning,
            format!(
                "credit-deadlock cycle {cycle_str}: every hop is a Block-bounded \
                 channel, so one full round of in-flight messages wedges every \
                 writer; bump channel {chan} capacity {cap} -> {} or give one hop \
                 a non-Block overload policy",
                cap + 1
            ),
            endpoints,
        ));
    }
}

/// CP202: static relay fan-in per Co-Pilot vs its service budget.
///
/// Every channel with an SPE endpoint is proxied by the Co-Pilot(s) of
/// the SPE node(s) it touches. Summing the per-op dispatch cost of all
/// proxied channels gives the Co-Pilot's worst-case service-cycle cost
/// when every channel has a request outstanding; past the budget the
/// relay is the bottleneck, not the fabric.
fn relay_saturation(g: &WiringGraph, out: &mut Vec<Diagnostic>) {
    let Some(costs) = g.relay_costs else {
        return;
    };
    // node → (total cost, channel count, hottest (cost, channel))
    let mut load: BTreeMap<usize, (f64, usize, (f64, usize))> = BTreeMap::new();
    let mut charge = |node: usize, c: usize, cost: f64| {
        if !g.copilot_nodes.contains(&node) {
            return; // no Co-Pilot to saturate — CP007 owns that defect
        }
        let e = load.entry(node).or_insert((0.0, 0, (0.0, c)));
        e.0 += cost;
        e.1 += 1;
        // Hottest channel, ties broken toward the smaller index.
        if cost > e.2 .0 || (cost == e.2 .0 && c < e.2 .1) {
            e.2 = (cost, c);
        }
    };
    for c in 0..g.channels.len() {
        let base = if g.channel_eager.contains_key(&c) {
            costs.eager_dispatch_us
        } else {
            costs.dispatch_us
        };
        let ch = &g.channels[c];
        if ch.one_sided {
            continue; // the window fabric bypasses the Co-Pilot relay
        }
        let spe_nodes: Vec<usize> = [ch.writer, ch.reader]
            .iter()
            .filter_map(|p| (*p).and_then(|p| g.processes.get(p)))
            .filter_map(|p| match p.at {
                crate::graph::GraphEndpoint::Spe { node, .. } => Some(node),
                crate::graph::GraphEndpoint::Rank { .. } => None,
            })
            .collect();
        match g.channel_type(c) {
            Some(2) | Some(3) => charge(spe_nodes[0], c, base),
            // Type 4: one Co-Pilot pairs the two local requests.
            Some(4) => charge(spe_nodes[0], c, base + costs.pair_poll_us),
            // Type 5: each side's Co-Pilot relays its half.
            Some(5) => {
                charge(spe_nodes[0], c, base);
                charge(spe_nodes[1], c, base);
            }
            _ => {}
        }
    }
    for (node, (total, count, (hot_cost, hot_chan))) in load {
        if total > costs.service_budget_us {
            out.push(Diagnostic::new(
                CheckCode::Cp202,
                Severity::Warning,
                format!(
                    "Co-Pilot on node {node} is saturated: {count} proxied channels \
                     cost {total}us of static relay fan-in per service cycle against \
                     a {budget}us budget; hottest is channel {hot_chan} at \
                     {hot_cost}us",
                    budget = costs.service_budget_us,
                ),
                vec![format!("copilot({node})")],
            ));
        }
    }
}

/// CP203 (advice): a channel that promised always-small payloads but was
/// left non-eager. The declared bound comes from
/// [`WiringGraph::set_channel_max_payload`]; without a promise the pass
/// stays silent (it never guesses payload sizes).
fn eager_advice(g: &WiringGraph, out: &mut Vec<Diagnostic>) {
    for (&c, &bound) in &g.channel_max_payload {
        if bound > MAILBOX_INLINE_CAPACITY || g.channel_eager.contains_key(&c) {
            continue;
        }
        let Some(ch) = g.channels.get(c) else {
            continue;
        };
        // The eager fast path exists only on Co-Pilot-relayed SPE
        // channels; one-sided channels are CP204's business.
        if ch.one_sided || !matches!(g.channel_type(c), Some(2..=5)) {
            continue;
        }
        let mut endpoints = ch.writer.map(|p| ep(g, p)).unwrap_or_default();
        endpoints.extend(ch.reader.map(|p| ep(g, p)).unwrap_or_default());
        out.push(Diagnostic::new(
            CheckCode::Cp203,
            Severity::Advice,
            format!(
                "channel {c} always carries at most {bound} bytes (one mailbox \
                 exchange inlines up to {MAILBOX_INLINE_CAPACITY}) yet is not \
                 eager: every send pays a DMA round trip; declare an eager \
                 threshold to inline it"
            ),
            endpoints,
        ));
    }
}

/// CP204: one-sided windows whose channel config makes fence placement
/// unsatisfiable. The window fabric orders a put against its reader with
/// a per-message fence; coalesced batches and eager inline delivery both
/// bypass it, so the combination has no correct fence placement at all.
fn fence_placement(g: &WiringGraph, out: &mut Vec<Diagnostic>) {
    for (&b, &batch) in &g.bundle_coalesce {
        let Some(bundle) = g.bundles.get(b) else {
            continue;
        };
        for &c in &bundle.channels {
            let Some(ch) = g.channels.get(c) else {
                continue;
            };
            if !ch.one_sided {
                continue;
            }
            let mut endpoints = ch.writer.map(|p| ep(g, p)).unwrap_or_default();
            endpoints.extend(ch.reader.map(|p| ep(g, p)).unwrap_or_default());
            out.push(Diagnostic::new(
                CheckCode::Cp204,
                Severity::Error,
                format!(
                    "bundle {b} coalesces in batches of {batch} over one-sided \
                     channel {c}: a batched put cannot carry the per-message \
                     window fence, so no fence placement is correct; uncoalesce \
                     the bundle or route the member through the Co-Pilot relay"
                ),
                endpoints,
            ));
        }
    }
    for (&c, &threshold) in &g.channel_eager {
        let Some(ch) = g.channels.get(c) else {
            continue;
        };
        if !ch.one_sided {
            continue;
        }
        let mut endpoints = ch.writer.map(|p| ep(g, p)).unwrap_or_default();
        endpoints.extend(ch.reader.map(|p| ep(g, p)).unwrap_or_default());
        out.push(Diagnostic::new(
            CheckCode::Cp204,
            Severity::Error,
            format!(
                "channel {c} declares an eager threshold of {threshold} bytes but \
                 is one-sided: inline mailbox delivery bypasses the window fence, \
                 so no fence placement is correct; drop the threshold or use the \
                 relay path"
            ),
            endpoints,
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RelayCostModel;

    fn base() -> WiringGraph {
        let mut g = WiringGraph::new(3);
        g.add_cell_node(0, 8);
        g.add_cell_node(1, 8);
        g.add_copilot(0);
        g.add_copilot(1);
        g
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn block_bounded_cycle_draws_cp201() {
        let mut g = base();
        let a = g.add_rank_process("a", 0, 2);
        let b = g.add_rank_process("b", 1, 2);
        let ab = g.add_channel(a, b);
        let ba = g.add_channel(b, a);
        g.set_channel_flow(ab, Some(1), true);
        g.set_channel_flow(ba, Some(4), true);
        let d = analyze(&g);
        assert_eq!(codes(&d), vec!["CP201"]);
        assert_eq!(d[0].endpoints, vec!["rank 0", "rank 1"]);
        assert!(
            d[0].message.contains("rank 0 -> rank 1 -> rank 0")
                && d[0]
                    .message
                    .contains(&format!("channel {ab} capacity 1 -> 2")),
            "{}",
            d[0].message
        );
    }

    #[test]
    fn an_unbounded_or_non_block_hop_breaks_the_cycle() {
        for repair_blocks in [false, true] {
            let mut g = base();
            let a = g.add_rank_process("a", 0, 2);
            let b = g.add_rank_process("b", 1, 2);
            let ab = g.add_channel(a, b);
            let ba = g.add_channel(b, a);
            g.set_channel_flow(ab, Some(1), true);
            if repair_blocks {
                // Bounded but sheds instead of blocking.
                g.set_channel_flow(ba, Some(4), false);
            } // else: ba declares nothing (unbounded).
            assert_eq!(analyze(&g), Vec::new());
        }
    }

    #[test]
    fn disjoint_cycles_each_draw_cp201() {
        let mut g = base();
        let mut mk = |i: usize| g.add_rank_process(&format!("p{i}"), i % 3, 2);
        let (a, b, c, d) = (mk(0), mk(1), mk(2), mk(3));
        for (w, r) in [(a, b), (b, a), (c, d), (d, c)] {
            let ch = g.add_channel(w, r);
            g.set_channel_flow(ch, Some(2), true);
        }
        assert_eq!(codes(&analyze(&g)), vec!["CP201", "CP201"]);
    }

    #[test]
    fn saturated_relay_draws_cp202_and_names_the_hot_channel() {
        let mut g = base();
        let mut spes = Vec::new();
        for slot in 0..8 {
            spes.push(g.add_spe_process(&format!("s{slot}"), 0, slot));
        }
        // A same-node ring: 8 type-4 channels, each costing
        // dispatch + pair_poll on node 0's Co-Pilot.
        for i in 0..8 {
            g.add_channel(spes[i], spes[(i + 1) % 8]);
        }
        g.set_relay_costs(RelayCostModel {
            dispatch_us: 37.0,
            pair_poll_us: 20.0,
            eager_dispatch_us: 5.0,
            service_budget_us: 400.0,
        });
        let d = analyze(&g);
        assert_eq!(codes(&d), vec!["CP202"]);
        assert_eq!(d[0].endpoints, vec!["copilot(0)"]);
        assert!(
            d[0].message.contains("456us") && d[0].message.contains("channel 0 at 57us"),
            "{}",
            d[0].message
        );
    }

    #[test]
    fn without_a_cost_model_cp202_is_skipped() {
        let mut g = base();
        let s0 = g.add_spe_process("s0", 0, 0);
        let s1 = g.add_spe_process("s1", 0, 1);
        g.add_channel(s0, s1);
        assert_eq!(analyze(&g), Vec::new());
    }

    #[test]
    fn small_payload_bound_without_eager_draws_cp203_advice() {
        let mut g = base();
        let main = g.add_rank_process("main", 0, 0);
        let s0 = g.add_spe_process("s0", 0, 0);
        let c = g.add_channel(main, s0);
        g.set_channel_max_payload(c, 8);
        let d = analyze(&g);
        assert_eq!(codes(&d), vec!["CP203"]);
        assert_eq!(d[0].severity, Severity::Advice);
        // An eager declaration satisfies the advice.
        g.set_channel_eager(c, 8);
        assert_eq!(analyze(&g), Vec::new());
    }

    #[test]
    fn large_bound_or_rank_only_channel_stays_silent() {
        let mut g = base();
        let main = g.add_rank_process("main", 0, 0);
        let xeon = g.add_rank_process("xeon", 1, 2);
        let s0 = g.add_spe_process("s0", 0, 0);
        let big = g.add_channel(main, s0);
        g.set_channel_max_payload(big, MAILBOX_INLINE_CAPACITY + 1);
        let rr = g.add_channel(main, xeon);
        g.set_channel_max_payload(rr, 4);
        assert_eq!(analyze(&g), Vec::new());
    }

    #[test]
    fn coalesced_one_sided_member_draws_cp204() {
        let mut g = base();
        let main = g.add_rank_process("main", 0, 0);
        let s0 = g.add_spe_process("s0", 0, 0);
        let c = g.add_channel(main, s0);
        g.mark_one_sided(c);
        g.add_window(c, 0, 0, 0x100, 256);
        let b = g.add_bundle(crate::graph::GraphBundleUsage::Broadcast, &[c], main);
        g.set_bundle_coalesce(b, 4);
        let d = analyze(&g);
        assert_eq!(codes(&d), vec!["CP204"]);
        assert!(d[0].is_error());
    }

    #[test]
    fn eager_one_sided_channel_draws_cp204() {
        let mut g = base();
        let main = g.add_rank_process("main", 0, 0);
        let s0 = g.add_spe_process("s0", 0, 0);
        let c = g.add_channel(main, s0);
        g.mark_one_sided(c);
        g.add_window(c, 0, 0, 0x100, 256);
        g.set_channel_eager(c, 8);
        let d = analyze(&g);
        assert_eq!(codes(&d), vec!["CP204"]);
    }
}
