//! The neutral wiring-graph model the verifier lints.
//!
//! `cp-check` sits below the Pilot and CellPilot runtimes in the
//! dependency order, so it defines its own minimal picture of an
//! application architecture — processes placed on ranks or SPE slots,
//! unidirectional channels, collective bundles, and the cluster facts
//! that matter for routing (which nodes are Cells, how many SPEs each
//! has, which nodes host a Co-Pilot). The runtimes translate their
//! configure-phase tables into a [`WiringGraph`] and hand it to
//! [`fn@crate::verify`].

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Where a process lives, in the deadlock detector's endpoint notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphEndpoint {
    /// An MPI-rank-backed process; `node` is the cluster node the rank is
    /// placed on (the hostfile entry).
    Rank {
        /// MPI rank number.
        rank: usize,
        /// Cluster node hosting the rank.
        node: usize,
    },
    /// An SPE process bound to a virtual SPE slot of a Cell node.
    Spe {
        /// Cell node id.
        node: usize,
        /// Virtual SPE slot on that node.
        slot: usize,
    },
}

impl fmt::Display for GraphEndpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphEndpoint::Rank { rank, .. } => write!(f, "rank {rank}"),
            GraphEndpoint::Spe { node, slot } => write!(f, "spe({node},{slot})"),
        }
    }
}

/// One process of the application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphProcess {
    /// Configure-phase name (diagnostics quote it).
    pub name: String,
    /// Placement.
    pub at: GraphEndpoint,
}

/// One unidirectional channel. A well-formed channel has both endpoints;
/// an endpoint can be absent to model a half-wired (orphan) channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphChannel {
    /// Writing process (index into [`WiringGraph::processes`]).
    pub writer: Option<usize>,
    /// Reading process (index into [`WiringGraph::processes`]).
    pub reader: Option<usize>,
    /// Whether the channel uses the one-sided put/get path: the writer
    /// lands data directly in a window of the reading SPE's local store
    /// instead of relaying through Co-Pilots.
    pub one_sided: bool,
}

/// A one-sided window registration: local-store bytes
/// `[start, start + len)` of `spe(node,slot)` serve as the landing region
/// for puts on channel `chan`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphWindow {
    /// Channel the window belongs to (index into
    /// [`WiringGraph::channels`]).
    pub chan: usize,
    /// Cell node id.
    pub node: usize,
    /// Virtual SPE slot holding the window.
    pub slot: usize,
    /// First local-store byte of the window.
    pub start: u32,
    /// Window length in bytes.
    pub len: u32,
}

/// Flow-control declaration of one channel, as `cp-check` sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphChannelFlow {
    /// Configured in-flight bound (`ChannelBuilder::capacity`); `None`
    /// means the channel queue is unbounded.
    pub capacity: Option<usize>,
    /// Whether the overload policy is the default `Block` (a non-Block
    /// policy on an unbounded channel is inert — CP013 flags it).
    pub blocks: bool,
}

/// Per-op Co-Pilot dispatch costs and service budget the CP202
/// relay-saturation estimate runs against. The runtimes populate this
/// from their cost model (`CellPilotCosts`); a graph without one skips
/// CP202 entirely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelayCostModel {
    /// Co-Pilot handling cost of one relayed request, microseconds.
    pub dispatch_us: f64,
    /// Extra pairing/poll cost of a same-node SPE↔SPE (type-4) transfer,
    /// microseconds.
    pub pair_poll_us: f64,
    /// Fast-path handling cost when the channel is eager-inlined,
    /// microseconds.
    pub eager_dispatch_us: f64,
    /// Service budget per Co-Pilot, microseconds: CP202 fires when the
    /// summed static fan-in cost of the channels a Co-Pilot proxies
    /// exceeds this.
    pub service_budget_us: f64,
}

/// What a bundle's collective does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphBundleUsage {
    /// The common endpoint writes every member channel.
    Broadcast,
    /// The common endpoint reads every member channel.
    Gather,
}

impl fmt::Display for GraphBundleUsage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            GraphBundleUsage::Broadcast => "broadcast",
            GraphBundleUsage::Gather => "gather",
        })
    }
}

/// A collective bundle over channels sharing a common endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphBundle {
    /// Collective direction.
    pub usage: GraphBundleUsage,
    /// Member channels (indices into [`WiringGraph::channels`]).
    pub channels: Vec<usize>,
    /// The common process (index into [`WiringGraph::processes`]).
    pub common: usize,
}

/// The full typed process/channel/bundle graph of one application, plus
/// the cluster facts routing depends on.
#[derive(Debug, Clone, Default)]
pub struct WiringGraph {
    /// Number of MPI ranks available to application processes.
    pub ranks: usize,
    /// Cell nodes: node id → number of physical SPEs.
    pub cell_nodes: BTreeMap<usize, usize>,
    /// Nodes on which a Co-Pilot serves SPE channel traffic.
    pub copilot_nodes: BTreeSet<usize>,
    /// All processes.
    pub processes: Vec<GraphProcess>,
    /// All channels.
    pub channels: Vec<GraphChannel>,
    /// All bundles.
    pub bundles: Vec<GraphBundle>,
    /// All one-sided window registrations.
    pub windows: Vec<GraphWindow>,
    /// Per-channel flow-control declarations (channel index → flow).
    /// Channels absent from the map declared nothing (unbounded, Block).
    pub channel_flow: BTreeMap<usize, GraphChannelFlow>,
    /// Whether strict mode asked for flow-control advisories: the
    /// unbounded-channel half of CP013 only fires when this is set.
    pub flow_strict: bool,
    /// Per-channel eager-inlining thresholds (channel index → configured
    /// byte threshold). Channels absent from the map are not eager.
    pub channel_eager: BTreeMap<usize, usize>,
    /// Per-bundle coalescing batch sizes (bundle index → `max_batch`).
    /// Bundles absent from the map do not coalesce.
    pub bundle_coalesce: BTreeMap<usize, usize>,
    /// Per-channel declared payload bounds (channel index → largest
    /// payload in bytes the application will ever send). Channels absent
    /// from the map made no promise; CP203 only reasons about declared
    /// bounds.
    pub channel_max_payload: BTreeMap<usize, usize>,
    /// Co-Pilot dispatch costs and service budget for the CP202
    /// relay-saturation estimate; `None` skips CP202.
    pub relay_costs: Option<RelayCostModel>,
}

/// Bytes one mailbox/control-word exchange can carry inline: the 4-deep
/// inbound mailbox × 4-byte words. An eager threshold above this is inert
/// for the excess — CP014 flags it.
pub const MAILBOX_INLINE_CAPACITY: usize = 16;

impl WiringGraph {
    /// An empty graph for an application with `ranks` MPI ranks.
    pub fn new(ranks: usize) -> WiringGraph {
        WiringGraph {
            ranks,
            ..WiringGraph::default()
        }
    }

    /// Declare a Cell node with `spe_capacity` physical SPEs.
    pub fn add_cell_node(&mut self, node: usize, spe_capacity: usize) {
        self.cell_nodes.insert(node, spe_capacity);
    }

    /// Declare that `node` hosts a Co-Pilot.
    pub fn add_copilot(&mut self, node: usize) {
        self.copilot_nodes.insert(node);
    }

    /// Add a rank-backed process; returns its index.
    pub fn add_rank_process(&mut self, name: &str, rank: usize, node: usize) -> usize {
        self.processes.push(GraphProcess {
            name: name.to_string(),
            at: GraphEndpoint::Rank { rank, node },
        });
        self.processes.len() - 1
    }

    /// Add an SPE process on `spe(node,slot)`; returns its index.
    pub fn add_spe_process(&mut self, name: &str, node: usize, slot: usize) -> usize {
        self.processes.push(GraphProcess {
            name: name.to_string(),
            at: GraphEndpoint::Spe { node, slot },
        });
        self.processes.len() - 1
    }

    /// Add a fully wired channel from `writer` to `reader`; returns its
    /// index.
    pub fn add_channel(&mut self, writer: usize, reader: usize) -> usize {
        self.channels.push(GraphChannel {
            writer: Some(writer),
            reader: Some(reader),
            one_sided: false,
        });
        self.channels.len() - 1
    }

    /// Add a channel with possibly missing endpoints (to seed orphan
    /// defects); returns its index.
    pub fn add_half_channel(&mut self, writer: Option<usize>, reader: Option<usize>) -> usize {
        self.channels.push(GraphChannel {
            writer,
            reader,
            one_sided: false,
        });
        self.channels.len() - 1
    }

    /// Mark channel `c` as using the one-sided put/get path. No-op for an
    /// out-of-range index (the orphan checks already flag those).
    pub fn mark_one_sided(&mut self, c: usize) {
        if let Some(ch) = self.channels.get_mut(c) {
            ch.one_sided = true;
        }
    }

    /// Record channel `c`'s flow-control declaration (capacity bound and
    /// whether its overload policy is the default `Block`). No-op for an
    /// out-of-range index (the orphan checks already flag those).
    pub fn set_channel_flow(&mut self, c: usize, capacity: Option<usize>, blocks: bool) {
        if self.channels.get(c).is_some() {
            self.channel_flow
                .insert(c, GraphChannelFlow { capacity, blocks });
        }
    }

    /// Enable the strict-mode-only flow advisories of CP013.
    pub fn set_flow_strict(&mut self, strict: bool) {
        self.flow_strict = strict;
    }

    /// Record channel `c`'s eager-inlining threshold (bytes). No-op for an
    /// out-of-range index (the orphan checks already flag those).
    pub fn set_channel_eager(&mut self, c: usize, threshold: usize) {
        if self.channels.get(c).is_some() {
            self.channel_eager.insert(c, threshold);
        }
    }

    /// Record bundle `b`'s coalescing batch size. No-op for an
    /// out-of-range index.
    pub fn set_bundle_coalesce(&mut self, b: usize, max_batch: usize) {
        if self.bundles.get(b).is_some() {
            self.bundle_coalesce.insert(b, max_batch);
        }
    }

    /// Record channel `c`'s declared payload bound (largest payload in
    /// bytes the application promises to send). No-op for an out-of-range
    /// index (the orphan checks already flag those).
    pub fn set_channel_max_payload(&mut self, c: usize, bytes: usize) {
        if self.channels.get(c).is_some() {
            self.channel_max_payload.insert(c, bytes);
        }
    }

    /// Attach the Co-Pilot cost model and service budget CP202 estimates
    /// against. Without one the relay-saturation pass is skipped.
    pub fn set_relay_costs(&mut self, costs: RelayCostModel) {
        self.relay_costs = Some(costs);
    }

    /// Register a one-sided window of `len` bytes at local-store offset
    /// `start` of `spe(node,slot)` for channel `chan`; returns its index.
    pub fn add_window(
        &mut self,
        chan: usize,
        node: usize,
        slot: usize,
        start: u32,
        len: u32,
    ) -> usize {
        self.windows.push(GraphWindow {
            chan,
            node,
            slot,
            start,
            len,
        });
        self.windows.len() - 1
    }

    /// Add a bundle; returns its index.
    pub fn add_bundle(
        &mut self,
        usage: GraphBundleUsage,
        channels: &[usize],
        common: usize,
    ) -> usize {
        self.bundles.push(GraphBundle {
            usage,
            channels: channels.to_vec(),
            common,
        });
        self.bundles.len() - 1
    }

    /// The Table-I channel type (1–5) of channel `c`, or `None` when an
    /// endpoint is missing or references a nonexistent process.
    pub fn channel_type(&self, c: usize) -> Option<u8> {
        let ch = self.channels.get(c)?;
        let w = self.processes.get(ch.writer?)?.at;
        let r = self.processes.get(ch.reader?)?.at;
        Some(match (w, r) {
            (GraphEndpoint::Rank { .. }, GraphEndpoint::Rank { .. }) => 1,
            (GraphEndpoint::Rank { node: rn, .. }, GraphEndpoint::Spe { node: sn, .. })
            | (GraphEndpoint::Spe { node: sn, .. }, GraphEndpoint::Rank { node: rn, .. }) => {
                if rn == sn {
                    2
                } else {
                    3
                }
            }
            (GraphEndpoint::Spe { node: a, .. }, GraphEndpoint::Spe { node: b, .. }) => {
                if a == b {
                    4
                } else {
                    5
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_notation_matches_deadlock_detector() {
        assert_eq!(
            GraphEndpoint::Spe { node: 1, slot: 3 }.to_string(),
            "spe(1,3)"
        );
        assert_eq!(
            GraphEndpoint::Rank { rank: 2, node: 0 }.to_string(),
            "rank 2"
        );
    }

    #[test]
    fn channel_types_follow_table_one() {
        let mut g = WiringGraph::new(2);
        g.add_cell_node(0, 8);
        g.add_cell_node(1, 8);
        let main = g.add_rank_process("main", 0, 0);
        let xeon = g.add_rank_process("xeon", 1, 2);
        let s0a = g.add_spe_process("s0a", 0, 0);
        let s0b = g.add_spe_process("s0b", 0, 1);
        let s1a = g.add_spe_process("s1a", 1, 0);
        let t1 = g.add_channel(main, xeon);
        let t2 = g.add_channel(main, s0a);
        let t3 = g.add_channel(xeon, s1a);
        let t4 = g.add_channel(s0b, s0a);
        let t5 = g.add_channel(s1a, s0b);
        let dangling = g.add_half_channel(Some(main), None);
        assert_eq!(g.channel_type(t1), Some(1));
        assert_eq!(g.channel_type(t2), Some(2));
        assert_eq!(g.channel_type(t3), Some(3));
        assert_eq!(g.channel_type(t4), Some(4));
        assert_eq!(g.channel_type(t5), Some(5));
        assert_eq!(g.channel_type(dangling), None);
    }
}
