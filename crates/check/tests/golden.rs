//! Golden-file pinning of every diagnostic `cp-check` can emit.
//!
//! The codes and rendered messages are a stable contract: CI greps for
//! them, the `SimReport` incident stream carries them verbatim, and users
//! write tooling against them. One minimal scenario per code is verified
//! and the full catalogue's rendering is compared byte for byte against
//! `tests/golden/diagnostics.txt`. On a deliberate wording change,
//! regenerate with `BLESS=1 cargo test -p cp-check --test golden`.

use cp_check::{render, CheckCode, Diagnostic, GraphBundleUsage, RelayCostModel, WiringGraph};
use cp_trace::{HbEvent, HbOp};

/// Three ranks, Cell nodes 0 and 1 (8 SPEs each, both with Co-Pilots),
/// node 2 a commodity host — the `two_cells_one_xeon` shape.
fn base() -> WiringGraph {
    let mut g = WiringGraph::new(3);
    g.add_cell_node(0, 8);
    g.add_cell_node(1, 8);
    g.add_copilot(0);
    g.add_copilot(1);
    g
}

/// One minimal trigger per wiring code, in code order. Each entry is the
/// code the scenario must draw and the full diagnostic list it draws
/// (exactly the expected codes, nothing else).
fn wiring_catalogue() -> Vec<(CheckCode, Vec<Diagnostic>)> {
    let mut out = Vec::new();

    // CP001: a channel nobody writes.
    let mut g = base();
    let main = g.add_rank_process("main", 0, 0);
    g.add_half_channel(None, Some(main));
    out.push((CheckCode::Cp001, cp_check::verify(&g)));

    // CP002: a channel nobody reads.
    let mut g = base();
    let main = g.add_rank_process("main", 0, 0);
    g.add_half_channel(Some(main), None);
    out.push((CheckCode::Cp002, cp_check::verify(&g)));

    // CP003: a broadcast member written by someone other than the common
    // endpoint.
    let mut g = base();
    let main = g.add_rank_process("main", 0, 0);
    let xeon = g.add_rank_process("xeon", 1, 2);
    let good = g.add_channel(main, xeon);
    let backwards = g.add_channel(xeon, main);
    g.add_bundle(GraphBundleUsage::Broadcast, &[good, backwards], main);
    out.push((CheckCode::Cp003, cp_check::verify(&g)));

    // CP004: a process on a rank the cluster does not have.
    let mut g = base();
    g.add_rank_process("ghost", 7, 0);
    out.push((CheckCode::Cp004, cp_check::verify(&g)));

    // CP005: an SPE process on a node that is not a Cell.
    let mut g = base();
    g.add_spe_process("lost", 2, 0);
    out.push((CheckCode::Cp005, cp_check::verify(&g)));

    // CP006: nine SPE processes on an eight-SPE node.
    let mut g = base();
    for slot in 0..9 {
        g.add_spe_process(&format!("farm#{slot}"), 0, slot);
    }
    out.push((CheckCode::Cp006, cp_check::verify(&g)));

    // CP007: SPE traffic routed through a node with no Co-Pilot.
    let mut g = base();
    g.copilot_nodes.remove(&1);
    let xeon = g.add_rank_process("xeon", 1, 2);
    let s1a = g.add_spe_process("s1a", 1, 0);
    g.add_channel(xeon, s1a);
    out.push((CheckCode::Cp007, cp_check::verify(&g)));

    // CP008 (warning): a bundle mixing SPE↔SPE pairing with a rank-side
    // rendezvous.
    let mut g = base();
    let s0a = g.add_spe_process("s0a", 0, 0);
    let s0b = g.add_spe_process("s0b", 0, 1);
    let xeon = g.add_rank_process("xeon", 1, 2);
    let pair = g.add_channel(s0a, s0b);
    let remote = g.add_channel(s0a, xeon);
    g.add_bundle(GraphBundleUsage::Broadcast, &[pair, remote], s0a);
    out.push((CheckCode::Cp008, cp_check::verify(&g)));

    // CP009: a process talking to itself over a channel.
    let mut g = base();
    let main = g.add_rank_process("main", 0, 0);
    g.add_half_channel(Some(main), Some(main));
    out.push((CheckCode::Cp009, cp_check::verify(&g)));

    // CP010: two SPE processes bound to the same slot.
    let mut g = base();
    g.add_spe_process("a", 0, 0);
    g.add_spe_process("b", 0, 0);
    out.push((CheckCode::Cp010, cp_check::verify(&g)));

    // CP014 (warning): an eager threshold no mailbox exchange can honor,
    // and a coalescing batch a bounded member channel can never
    // accumulate.
    let mut g = base();
    let main = g.add_rank_process("main", 0, 0);
    let s0a = g.add_spe_process("s0a", 0, 0);
    let s0b = g.add_spe_process("s0b", 0, 1);
    let c0 = g.add_channel(main, s0a);
    let c1 = g.add_channel(main, s0b);
    g.set_channel_eager(c0, 64);
    g.set_channel_flow(c1, Some(4), true);
    let b = g.add_bundle(GraphBundleUsage::Broadcast, &[c0, c1], main);
    g.set_bundle_coalesce(b, 16);
    out.push((CheckCode::Cp014, cp_check::verify(&g)));

    // CP201 (warning): a two-hop cycle on which both channels are
    // Block-bounded.
    let mut g = base();
    let main = g.add_rank_process("main", 0, 0);
    let xeon = g.add_rank_process("xeon", 1, 2);
    let fwd = g.add_channel(main, xeon);
    let back = g.add_channel(xeon, main);
    g.set_channel_flow(fwd, Some(1), true);
    g.set_channel_flow(back, Some(4), true);
    out.push((CheckCode::Cp201, cp_check::analyze(&g)));

    // CP202 (warning): a same-node SPE ring whose pairing dispatch cost
    // blows the Co-Pilot's service budget.
    let mut g = base();
    let mut ring = Vec::new();
    for slot in 0..8 {
        ring.push(g.add_spe_process(&format!("ring#{slot}"), 0, slot));
    }
    for i in 0..8 {
        g.add_channel(ring[i], ring[(i + 1) % 8]);
    }
    g.set_relay_costs(RelayCostModel {
        dispatch_us: 37.0,
        pair_poll_us: 20.0,
        eager_dispatch_us: 5.0,
        service_budget_us: 400.0,
    });
    out.push((CheckCode::Cp202, cp_check::analyze(&g)));

    // CP203 (advice): a channel promising mailbox-sized payloads, left
    // non-eager.
    let mut g = base();
    let main = g.add_rank_process("main", 0, 0);
    let s0a = g.add_spe_process("s0a", 0, 0);
    let small = g.add_channel(main, s0a);
    g.set_channel_max_payload(small, 8);
    out.push((CheckCode::Cp203, cp_check::analyze(&g)));

    // CP204: a coalesced bundle over a one-sided member, and an eager
    // threshold on a one-sided channel — both fence-unsatisfiable.
    let mut g = base();
    let main = g.add_rank_process("main", 0, 0);
    let s0a = g.add_spe_process("s0a", 0, 0);
    let s0b = g.add_spe_process("s0b", 0, 1);
    let put = g.add_channel(main, s0a);
    g.mark_one_sided(put);
    g.add_window(put, 0, 0, 0x100, 256);
    let b = g.add_bundle(GraphBundleUsage::Broadcast, &[put], main);
    g.set_bundle_coalesce(b, 4);
    let inline = g.add_channel(main, s0b);
    g.mark_one_sided(inline);
    g.add_window(inline, 0, 1, 0x100, 256);
    g.set_channel_eager(inline, 8);
    out.push((CheckCode::Cp204, cp_check::analyze(&g)));

    out
}

/// The race detector's CP101 on an unfenced MFC get/put pair.
fn race_catalogue() -> Vec<Diagnostic> {
    let issue = |ts: u64, put: bool, tag: u32| HbEvent {
        actor: "spu0".into(),
        ts_ns: ts,
        op: HbOp::DmaIssue {
            node: 0,
            spe: 0,
            put,
            tag,
            ls_start: 0x100,
            len: 256,
        },
    };
    cp_check::detect_races(&[
        issue(100, false, 0),
        issue(200, true, 1),
        HbEvent {
            actor: "spu0".into(),
            ts_ns: 300,
            op: HbOp::DmaWait {
                node: 0,
                spe: 0,
                mask: 0b11,
            },
        },
    ])
}

#[test]
fn every_code_renders_as_pinned_in_the_golden_file() {
    let mut all: Vec<Diagnostic> = Vec::new();
    for (want, diags) in wiring_catalogue() {
        assert!(
            diags.iter().any(|d| d.code == want),
            "scenario for {want:?} did not draw it: {diags:?}"
        );
        assert!(
            diags.iter().all(|d| d.code == want),
            "scenario for {want:?} drew extra codes: {diags:?}"
        );
        all.extend(diags);
    }
    let races = race_catalogue();
    assert!(
        races.iter().all(|d| d.code == CheckCode::Cp101) && !races.is_empty(),
        "race scenario must draw exactly CP101: {races:?}"
    );
    all.extend(races);

    let mut rendered = render(&all);
    rendered.push('\n');
    assert!(
        rendered.contains("advice[CP203]"),
        "the advice severity tier must be pinned by the golden file"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/diagnostics.txt");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(path, &rendered).unwrap();
    }
    let golden = std::fs::read_to_string(path).expect("golden file committed");
    assert_eq!(
        rendered, golden,
        "diagnostic rendering drifted from tests/golden/diagnostics.txt \
         (BLESS=1 to regenerate after a deliberate change)"
    );
}

/// The machine-readable code strings are part of the same contract as the
/// rendering.
#[test]
fn code_strings_are_stable() {
    let pinned = [
        (CheckCode::Cp001, "CP001"),
        (CheckCode::Cp002, "CP002"),
        (CheckCode::Cp003, "CP003"),
        (CheckCode::Cp004, "CP004"),
        (CheckCode::Cp005, "CP005"),
        (CheckCode::Cp006, "CP006"),
        (CheckCode::Cp007, "CP007"),
        (CheckCode::Cp008, "CP008"),
        (CheckCode::Cp009, "CP009"),
        (CheckCode::Cp010, "CP010"),
        (CheckCode::Cp014, "CP014"),
        (CheckCode::Cp101, "CP101"),
        (CheckCode::Cp201, "CP201"),
        (CheckCode::Cp202, "CP202"),
        (CheckCode::Cp203, "CP203"),
        (CheckCode::Cp204, "CP204"),
    ];
    for (code, s) in pinned {
        assert_eq!(code.as_str(), s);
    }
}
