//! Property: the wiring verifier and the progress analyzer never cry
//! wolf. Any well-formed graph — processes on existing ranks and Cell
//! slots, fully wired channels between distinct processes, bundles held
//! by their common endpoint on one rendezvous class, bounded channels
//! only along an acyclic order, a generous relay budget — must come out
//! of both passes with zero diagnostics.

use cp_check::{GraphBundleUsage, RelayCostModel, WiringGraph};
use proptest::prelude::*;

/// A recipe for a well-formed graph, drawn from small index spaces and
/// normalized into validity by construction in [`build`].
#[derive(Debug, Clone)]
struct Recipe {
    ranks: usize,
    /// SPE capacity per Cell node (node ids 0..len).
    cells: Vec<usize>,
    /// SPE processes as (cell_index, slot_seed); slots are deduplicated
    /// and wrapped into capacity so placements stay legal.
    spes: Vec<(usize, usize)>,
    /// Channel endpoint seeds, resolved to distinct process indices.
    chans: Vec<(usize, usize)>,
    /// Broadcast fan-out from rank 0's process (member count seed).
    bundle_fanout: usize,
    /// Block-bounded flow declarations as (channel seed, capacity seed).
    /// Only applied where the writer's process index is below the
    /// reader's, so the bounded subgraph is acyclic by construction and
    /// CP201 must stay silent.
    bounds: Vec<(usize, usize)>,
}

fn arb_recipe() -> impl Strategy<Value = Recipe> {
    (
        1usize..4,
        proptest::collection::vec(1usize..9, 1..3),
        proptest::collection::vec((0usize..2, 0usize..16), 0..10),
        proptest::collection::vec((0usize..32, 0usize..32), 0..12),
        (
            0usize..4,
            proptest::collection::vec((0usize..32, 1usize..8), 0..8),
        ),
    )
        .prop_map(
            |(ranks, cells, spes, chans, (bundle_fanout, bounds))| Recipe {
                ranks,
                cells,
                spes,
                chans,
                bundle_fanout,
                bounds,
            },
        )
}

/// Materialize the recipe as a graph that is well-formed by construction:
/// every defect class the verifier hunts is impossible here.
fn build(r: &Recipe) -> WiringGraph {
    let mut g = WiringGraph::new(r.ranks);
    for (node, &cap) in r.cells.iter().enumerate() {
        g.add_cell_node(node, cap);
        g.add_copilot(node);
    }
    let mut procs = Vec::new();
    for rank in 0..r.ranks {
        // Rank processes may sit on any node, Cell or not.
        procs.push(g.add_rank_process(&format!("r{rank}"), rank, rank % (r.cells.len() + 1)));
    }
    let mut used = std::collections::BTreeSet::new();
    for &(cell_seed, slot_seed) in &r.spes {
        let node = cell_seed % r.cells.len();
        let slot = slot_seed % r.cells[node];
        if used.insert((node, slot)) {
            procs.push(g.add_spe_process(&format!("s{node}_{slot}"), node, slot));
        }
    }
    let mut wired = Vec::new();
    for &(a, b) in &r.chans {
        let w = a % procs.len();
        let rd = b % procs.len();
        if w != rd {
            wired.push((g.add_channel(procs[w], procs[rd]), w, rd));
        }
    }
    // Bound a subset of channels (Block policy) along the process-index
    // order: writer below reader means the bounded subgraph is a DAG.
    for &(chan_seed, cap) in &r.bounds {
        if wired.is_empty() {
            break;
        }
        let (c, w, rd) = wired[chan_seed % wired.len()];
        if w < rd {
            g.set_channel_flow(c, Some(cap), true);
        }
    }
    // A generous service budget: the analyzer's CP202 arithmetic runs on
    // every graph, but a well-formed application must never trip it.
    g.set_relay_costs(RelayCostModel {
        dispatch_us: 37.0,
        pair_poll_us: 20.0,
        eager_dispatch_us: 5.0,
        service_budget_us: 1e9,
    });
    // A broadcast from rank 0 to the others: all members written by the
    // common endpoint, all rank↔rank (one rendezvous class).
    if r.bundle_fanout > 0 && r.ranks > 1 {
        let members: Vec<usize> = (1..r.ranks)
            .cycle()
            .take(r.bundle_fanout)
            .map(|peer| g.add_channel(procs[0], procs[peer]))
            .collect();
        g.add_bundle(GraphBundleUsage::Broadcast, &members, procs[0]);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Zero false positives on well-formed graphs.
    #[test]
    fn well_formed_graphs_verify_clean(recipe in arb_recipe()) {
        let g = build(&recipe);
        let d = cp_check::verify(&g);
        prop_assert!(d.is_empty(), "false positives on {recipe:?}: {d:?}");
    }

    /// The progress analyzer stays silent too: acyclic bounded wiring,
    /// an over-provisioned relay budget, no payload promises — no
    /// CP201–CP204.
    #[test]
    fn well_formed_graphs_analyze_clean(recipe in arb_recipe()) {
        let g = build(&recipe);
        let d = cp_check::analyze(&g);
        prop_assert!(d.is_empty(), "false positives on {recipe:?}: {d:?}");
    }
}
