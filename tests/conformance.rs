//! Cross-backend conformance: the sim backend is the oracle, the native
//! threads backend is the candidate. Two layers of evidence:
//!
//! 1. **Random wiring graphs** — proptest drives seeded [`WiringPlan`]s
//!    (mixed rank/SPE targets, one-sided and relay channels, multi-message
//!    FIFO traffic) through [`cellpilot::conformance::check_plan`], which
//!    runs the identical program on both backends and diffs the
//!    observables: per-channel payload FIFOs, incident categories, coarse
//!    outcome class, and process census.
//!
//! 2. **Every shipped example** — each example binary runs as a subprocess
//!    under `CP_BACKEND=sim` and `CP_BACKEND=native`; exit status and the
//!    sorted multiset of stdout lines must match. (Examples route anything
//!    timing- or schedule-dependent to stderr precisely so this holds.)
//!
//! What is deliberately *not* compared: timestamps (virtual vs wall
//! clock), dispatch counts, and cross-channel interleavings — the paper's
//! guarantees are per-channel FIFO and payload integrity, not a global
//! total order.

use cellpilot::conformance::{check_plan, check_saturated, WiringPlan};
use proptest::prelude::*;
use std::path::PathBuf;
use std::process::Command;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any seeded wiring graph observes identically on both backends.
    #[test]
    fn backends_agree_on_random_wirings(seed in any::<u64>()) {
        let plan = WiringPlan::from_seed(seed);
        let (oracle, candidate, divergence) = check_plan(&plan);
        prop_assert!(
            divergence.is_none(),
            "seed {seed} diverged: {}\nplan: {plan:?}\n--- sim (oracle) ---\n{oracle}\n--- native ---\n{candidate}",
            divergence.unwrap(),
        );
    }
}

/// A channel saturated past its capacity degrades identically on both
/// backends: the reader is parked during the burst, so exactly
/// `burst - capacity` writes shed (each an `ErrorKind::Backpressure`),
/// and the accepted-payload FIFO plus the `overload`/`message-shed`
/// incident multiset must match between sim and native.
#[test]
fn backends_agree_on_a_saturated_channel() {
    let (oracle, candidate, verdict) = check_saturated();
    assert!(
        verdict.is_none(),
        "saturated channel diverged: {}\n--- sim (oracle) ---\n{oracle}\n--- native ---\n{candidate}",
        verdict.unwrap(),
    );
    assert!(
        oracle.incidents.iter().any(|c| c == "message-shed"),
        "the scenario must actually shed, or it proves nothing"
    );
}

/// The full example suite, in dependency-crate order.
const EXAMPLES: &[&str] = &[
    "quickstart",
    "relay",
    "spe_farm",
    "heat_stencil",
    "mandelbrot_farm",
    "pipeline_overlay",
    "pilot_deadlock",
    "dacs_tour",
    "scatter_search",
];

/// `target/{profile}/examples`, derived from the test binary's own path
/// (`target/{profile}/deps/<test>-<hash>`).
fn examples_dir() -> Option<PathBuf> {
    let mut dir = std::env::current_exe().ok()?;
    dir.pop(); // test binary name
    if dir.ends_with("deps") {
        dir.pop();
    }
    dir.push("examples");
    dir.is_dir().then_some(dir)
}

/// Exit status plus the sorted multiset of stdout lines.
fn observe_example(bin: &PathBuf, backend: &str) -> (Option<i32>, Vec<String>) {
    let out = Command::new(bin)
        .env("CP_BACKEND", backend)
        .output()
        .unwrap_or_else(|e| panic!("spawning {} failed: {e}", bin.display()));
    let mut lines: Vec<String> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(str::to_owned)
        .collect();
    lines.sort_unstable();
    (out.status.code(), lines)
}

#[test]
fn examples_agree_on_both_backends() {
    let Some(dir) = examples_dir() else {
        eprintln!(
            "conformance: SKIPPING example comparison — no examples/ dir \
             next to the test binary (run via `cargo test` so examples build)"
        );
        return;
    };
    let mut compared = 0usize;
    for name in EXAMPLES {
        let bin = dir.join(name);
        if !bin.is_file() {
            eprintln!(
                "conformance: SKIPPING example `{name}` — binary not built \
                 at {}",
                bin.display()
            );
            continue;
        }
        let (sim_status, sim_lines) = observe_example(&bin, "sim");
        let (nat_status, nat_lines) = observe_example(&bin, "native");
        assert_eq!(
            sim_status, nat_status,
            "example `{name}`: exit status diverged (sim {sim_status:?}, native {nat_status:?})"
        );
        assert_eq!(
            sim_lines, nat_lines,
            "example `{name}`: stdout line multiset diverged between backends"
        );
        compared += 1;
    }
    assert!(
        compared > 0,
        "conformance: no example binaries found in {} — the suite compared nothing",
        dir.display()
    );
    eprintln!(
        "conformance: {compared}/{} examples agree on both backends",
        EXAMPLES.len()
    );
}
