//! Full-scale integration: the paper's evaluation platform — 8
//! dual-PowerXCell blades (16 SPEs each) plus 4 Xeon nodes — running one
//! CellPilot application that exercises every channel type concurrently,
//! twice, with bit-identical deterministic outcomes.

use cellpilot::{CellPilotConfig, CellPilotOpts, CpChannel, CpProcess, SpeProgram, CP_MAIN};
use cp_pilot::PiValue;
use cp_simnet::ClusterSpec;
use parking_lot::Mutex;
use std::sync::Arc;

/// Build and run: main on blade 0 farms one SPE worker out on *every* Cell
/// node (8 type-2/3 channel pairs), plus a Xeon aggregator (type 1), plus
/// an SPE→SPE pipeline within blade 0 (type 4) and across blades (type 5).
/// Returns (aggregate checksum, end virtual time ns).
fn run_cluster_app() -> (i64, u64) {
    let spec = ClusterSpec::paper();
    assert_eq!(spec.nodes.len(), 12);
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::default());

    // Worker SPE: read a seed on its task channel, reply seed*2+index.
    let worker = SpeProgram::new("worker", 2048, |spe, _, _| {
        let idx = spe.index() as usize;
        let vals = spe.read(CpChannel(2 * idx), "%ld").unwrap();
        let PiValue::Int64(v) = &vals[0] else {
            unreachable!()
        };
        spe.write(
            CpChannel(2 * idx + 1),
            "%ld",
            &[PiValue::Int64(vec![v[0] * 2 + idx as i64])],
        )
        .unwrap();
    });

    // Host process for Cell nodes 1..8: run local SPE children.
    let mut hosts = vec![CP_MAIN];
    for n in 1..8 {
        let h = cfg
            .create_process(&format!("host{n}"), n, |cp, _| {
                let mut ts = Vec::new();
                for p in 0..cp.process_count() {
                    if let Ok(t) = cp.run_spe(CpProcess(p), 0, 0) {
                        ts.push(t);
                    }
                }
                for t in ts {
                    cp.wait_spe(t);
                }
            })
            .unwrap();
        hosts.push(h);
    }
    // Xeon aggregator (rank on node 8): sums what main forwards (type 1).
    let xeon = cfg
        .create_process("xeon-agg", 0, |cp, _| {
            let vals = cp.read(CpChannel(16), "%*ld").unwrap();
            let PiValue::Int64(v) = &vals[0] else {
                unreachable!()
            };
            let sum: i64 = v.iter().sum();
            cp.write(CpChannel(17), "%ld", &[PiValue::Int64(vec![sum])])
                .unwrap();
        })
        .unwrap();

    // One worker SPE per Cell node; channels 2i (task) / 2i+1 (result).
    for (i, &host) in hosts.iter().enumerate() {
        let s = cfg.create_spe_process(&worker, host, i as i32).unwrap();
        let t = cfg.channel(CP_MAIN, s).build().unwrap();
        let r = cfg.channel(s, CP_MAIN).build().unwrap();
        assert_eq!((t.0, r.0), (2 * i, 2 * i + 1));
    }
    let to_xeon = cfg.channel(CP_MAIN, xeon).build().unwrap();
    let from_xeon = cfg.channel(xeon, CP_MAIN).build().unwrap();
    assert_eq!((to_xeon.0, from_xeon.0), (16, 17));

    // A type-4 + type-5 pipeline: stage1 (blade 0) -> stage2 (blade 0) ->
    // stage3 (blade 1).
    let stage1 = SpeProgram::new("stage1", 2048, |spe, _, _| {
        spe.write(CpChannel(18), "%d", &[PiValue::Int32(vec![1000])])
            .unwrap();
    });
    let stage2 = SpeProgram::new("stage2", 2048, |spe, _, _| {
        let vals = spe.read(CpChannel(18), "%d").unwrap();
        let PiValue::Int32(v) = &vals[0] else {
            unreachable!()
        };
        spe.write(CpChannel(19), "%d", &[PiValue::Int32(vec![v[0] + 1])])
            .unwrap();
    });
    let stage3 = SpeProgram::new("stage3", 2048, |spe, _, _| {
        let vals = spe.read(CpChannel(19), "%d").unwrap();
        let PiValue::Int32(v) = &vals[0] else {
            unreachable!()
        };
        spe.write(CpChannel(20), "%d", &[PiValue::Int32(vec![v[0] * 3])])
            .unwrap();
    });
    let s1 = cfg.create_spe_process(&stage1, CP_MAIN, 100).unwrap();
    let s2 = cfg.create_spe_process(&stage2, CP_MAIN, 101).unwrap();
    let s3 = cfg.create_spe_process(&stage3, hosts[1], 102).unwrap();
    use cellpilot::ChannelKind;
    let c18 = cfg.channel(s1, s2).build().unwrap();
    let c19 = cfg.channel(s2, s3).build().unwrap();
    let c20 = cfg.channel(s3, CP_MAIN).build().unwrap();
    assert_eq!(cfg.channel_kind(c18), Some(ChannelKind::Type4));
    assert_eq!(cfg.channel_kind(c19), Some(ChannelKind::Type5));
    assert_eq!(cfg.channel_kind(c20), Some(ChannelKind::Type3));

    let out = Arc::new(Mutex::new(0i64));
    let out2 = out.clone();
    let report = cfg
        .run(move |cp| {
            let mut ts = Vec::new();
            for p in 0..cp.process_count() {
                if let Ok(t) = cp.run_spe(CpProcess(p), 0, 0) {
                    ts.push(t);
                }
            }
            // Farm: seed every worker, collect results.
            for i in 0..8usize {
                cp.write(
                    CpChannel(2 * i),
                    "%ld",
                    &[PiValue::Int64(vec![10 * i as i64])],
                )
                .unwrap();
            }
            let mut results = Vec::new();
            for i in 0..8usize {
                let vals = cp.read(CpChannel(2 * i + 1), "%ld").unwrap();
                let PiValue::Int64(v) = &vals[0] else {
                    unreachable!()
                };
                results.push(v[0]);
            }
            // Off-load the sum to the Xeon.
            cp.write(to_xeon, "%*ld", &[PiValue::Int64(results.clone())])
                .unwrap();
            let vals = cp.read(from_xeon, "%ld").unwrap();
            let PiValue::Int64(sum) = &vals[0] else {
                unreachable!()
            };
            // Pipeline result.
            let vals = cp.read(CpChannel(20), "%d").unwrap();
            let PiValue::Int32(pipe) = &vals[0] else {
                unreachable!()
            };
            *out2.lock() = sum[0] + pipe[0] as i64;
            for t in ts {
                cp.wait_spe(t);
            }
        })
        .unwrap();
    let v = *out.lock();
    (v, report.end_time.as_nanos())
}

#[test]
fn paper_cluster_runs_all_channel_types() {
    let (checksum, _) = run_cluster_app();
    // Workers: sum over i of (10i*2 + i) = 21 * sum(0..8) = 21*28 = 588.
    // Pipeline: (1000 + 1) * 3 = 3003.
    assert_eq!(checksum, 588 + 3003);
}

#[test]
fn whole_stack_is_deterministic() {
    let a = run_cluster_app();
    let b = run_cluster_app();
    assert_eq!(a, b, "identical checksum and identical virtual end time");
}
