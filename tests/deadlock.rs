//! End-to-end deadlock detection across channel types 2–5.
//!
//! Each test constructs a genuine circular wait on one channel type and
//! asserts the deadlock service aborts the run with a diagnostic naming
//! every endpoint in the cycle (type-1 rank↔rank cycles are covered by the
//! Pilot layer's own tests and the `pilot_deadlock` example). A final test
//! checks the no-false-positive property: a slow writer that satisfies a
//! pending read within the grace period must not trip the detector.

use cellpilot::{CellPilotConfig, CellPilotOpts, ChannelKind, CpChannel, SpeProgram, CP_MAIN};
use cp_des::{SimDuration, SimError};
use cp_simnet::{ClusterSpec, NodeId};

/// Run `build`'s scenario expecting a detector abort; return the message.
fn expect_deadlock_abort(run: impl FnOnce() -> Result<(), SimError>) -> String {
    match run() {
        Err(SimError::Aborted { message, .. }) => {
            assert!(
                message.contains("DEADLOCK: circular wait detected"),
                "abort was not the detector diagnostic: {message}"
            );
            message
        }
        Err(other) => panic!("expected detector abort, got {other}"),
        Ok(()) => panic!("circular wait completed successfully?!"),
    }
}

/// Type 2: rank 0 and an SPE on the same Cell node read from each other.
#[test]
fn type2_rank_spe_same_node_cycle_aborts() {
    let message = expect_deadlock_abort(|| {
        let opts = CellPilotOpts::new().with_deadlock_service();
        let mut cfg = CellPilotConfig::one_rank_per_node(ClusterSpec::two_cells_one_xeon(), opts);
        let prog = SpeProgram::new("stuck", 2048, |spe, _, _| {
            // Read before writing: the classic ordering bug.
            let _ = spe.read_vec::<i32>(CpChannel(0));
            spe.write_slice(CpChannel(1), &[1i32]).unwrap();
        });
        let spe = cfg.create_spe_process(&prog, CP_MAIN, 0).unwrap();
        let to_spe = cfg.channel(CP_MAIN, spe).build().unwrap();
        let to_main = cfg.channel(spe, CP_MAIN).build().unwrap();
        assert_eq!(cfg.channel_kind(to_spe).unwrap(), ChannelKind::Type2);
        cfg.run(move |cp| {
            let t = cp.run_spe(spe, 0, 0).unwrap();
            // Mirror-image ordering bug on the rank side.
            let _ = cp.read_vec::<i32>(to_main);
            cp.write_slice(to_spe, &[1i32]).unwrap();
            cp.wait_spe(t);
        })
        .map(|_| ())
    });
    for endpoint in ["rank 0", "spe(0,0)", "copilot(0)"] {
        assert!(
            message.contains(endpoint),
            "missing '{endpoint}': {message}"
        );
    }
}

/// Type 3: a rank on the Xeon node and an SPE on a Cell node.
#[test]
fn type3_rank_remote_spe_cycle_aborts() {
    let message = expect_deadlock_abort(|| {
        let opts = CellPilotOpts::new().with_deadlock_service();
        // main on Cell node 0 (it must parent the SPE), worker rank on the
        // non-Cell Xeon node 2.
        let mut cfg = CellPilotConfig::new(
            ClusterSpec::two_cells_one_xeon(),
            vec![NodeId(0), NodeId(2)],
            opts,
        );
        let prog = SpeProgram::new("stuck", 2048, |spe, _, _| {
            let _ = spe.read_vec::<i32>(CpChannel(0));
            spe.write_slice(CpChannel(1), &[1i32]).unwrap();
        });
        let worker = cfg
            .create_process("worker", 0, move |cp, _| {
                let _ = cp.read_vec::<i32>(CpChannel(1));
                cp.write_slice(CpChannel(0), &[1i32]).unwrap();
            })
            .unwrap();
        let spe = cfg.create_spe_process(&prog, CP_MAIN, 0).unwrap();
        let to_spe = cfg.channel(worker, spe).build().unwrap();
        let _to_worker = cfg.channel(spe, worker).build().unwrap();
        assert_eq!(cfg.channel_kind(to_spe).unwrap(), ChannelKind::Type3);
        cfg.run(move |cp| {
            let t = cp.run_spe(spe, 0, 0).unwrap();
            cp.wait_spe(t);
        })
        .map(|_| ())
    });
    for endpoint in ["rank 1", "spe(0,0)", "copilot(0)"] {
        assert!(
            message.contains(endpoint),
            "missing '{endpoint}': {message}"
        );
    }
}

/// Type 4: two SPEs on the same Cell node.
#[test]
fn type4_spe_spe_same_node_cycle_aborts() {
    let message = expect_deadlock_abort(|| {
        let opts = CellPilotOpts::new().with_deadlock_service();
        let mut cfg = CellPilotConfig::one_rank_per_node(ClusterSpec::two_cells_one_xeon(), opts);
        let a = SpeProgram::new("a", 2048, |spe, _, _| {
            let _ = spe.read_vec::<i32>(CpChannel(1));
            spe.write_slice(CpChannel(0), &[1i32]).unwrap();
        });
        let b = SpeProgram::new("b", 2048, |spe, _, _| {
            let _ = spe.read_vec::<i32>(CpChannel(0));
            spe.write_slice(CpChannel(1), &[1i32]).unwrap();
        });
        let pa = cfg.create_spe_process(&a, CP_MAIN, 0).unwrap();
        let pb = cfg.create_spe_process(&b, CP_MAIN, 0).unwrap();
        let ab = cfg.channel(pa, pb).build().unwrap();
        let _ba = cfg.channel(pb, pa).build().unwrap();
        assert_eq!(cfg.channel_kind(ab).unwrap(), ChannelKind::Type4);
        cfg.run(move |cp| cp.run_and_wait_my_spes()).map(|_| ())
    });
    for endpoint in ["spe(0,0)", "spe(0,1)", "copilot(0)"] {
        assert!(
            message.contains(endpoint),
            "missing '{endpoint}': {message}"
        );
    }
}

/// Type 5 (the acceptance criterion): SPEs on two different Cell nodes,
/// each wait relayed by its own Co-Pilot — the diagnostic must name every
/// endpoint of the cross-cluster cycle.
#[test]
fn type5_remote_spe_cycle_aborts_naming_full_chain() {
    let message = expect_deadlock_abort(|| {
        let opts = CellPilotOpts::new().with_deadlock_service();
        let mut cfg = CellPilotConfig::one_rank_per_node(ClusterSpec::two_cells_one_xeon(), opts);
        let x = SpeProgram::new("x", 2048, |spe, _, _| {
            let _ = spe.read_vec::<i32>(CpChannel(1));
            spe.write_slice(CpChannel(0), &[1i32]).unwrap();
        });
        let y = SpeProgram::new("y", 2048, |spe, _, _| {
            let _ = spe.read_vec::<i32>(CpChannel(0));
            spe.write_slice(CpChannel(1), &[1i32]).unwrap();
        });
        let parent = cfg
            .create_process("parent", 0, |cp, _| cp.run_and_wait_my_spes())
            .unwrap();
        let px = cfg.create_spe_process(&x, CP_MAIN, 0).unwrap();
        let py = cfg.create_spe_process(&y, parent, 0).unwrap();
        let xy = cfg.channel(px, py).build().unwrap();
        let _yx = cfg.channel(py, px).build().unwrap();
        assert_eq!(cfg.channel_kind(xy).unwrap(), ChannelKind::Type5);
        cfg.run(move |cp| cp.run_and_wait_my_spes()).map(|_| ())
    });
    for endpoint in ["spe(0,0)", "spe(1,0)", "copilot(0)", "copilot(1)"] {
        assert!(
            message.contains(endpoint),
            "missing '{endpoint}': {message}"
        );
    }
}

/// No false positive: a reader blocks, but its writer is merely slow and
/// delivers well within the detector's grace period. The run must complete.
#[test]
fn slow_writer_within_grace_is_not_a_deadlock() {
    let opts = CellPilotOpts::new().with_deadlock_service();
    let mut cfg = CellPilotConfig::one_rank_per_node(ClusterSpec::two_cells_one_xeon(), opts);
    let prog = SpeProgram::new("slowpoke", 2048, |spe, _, _| {
        // Let the rank-side read park first, then satisfy it late — but
        // inside the grace window.
        spe.ctx().advance(SimDuration::from_micros(1_500));
        spe.write_slice(CpChannel(0), &[7i32]).unwrap();
        let v = spe.read_vec::<i32>(CpChannel(1)).unwrap();
        assert_eq!(v, vec![8]);
    });
    let spe = cfg.create_spe_process(&prog, CP_MAIN, 0).unwrap();
    let to_main = cfg.channel(spe, CP_MAIN).build().unwrap();
    let to_spe = cfg.channel(CP_MAIN, spe).build().unwrap();
    cfg.run(move |cp| {
        let t = cp.run_spe(spe, 0, 0).unwrap();
        let v = cp.read_vec::<i32>(to_main).unwrap();
        assert_eq!(v, vec![7]);
        cp.write_slice(to_spe, &[8i32]).unwrap();
        cp.wait_spe(t);
    })
    .expect("slow writer is not a deadlock");
}
