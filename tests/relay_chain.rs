//! Multi-hop composition across every processor kind: a message travels
//! Xeon → PPE → SPE → sibling SPE (type 4) → remote SPE (type 5) → remote
//! PPE → back to the Xeon, each hop transforming the payload, so any
//! mis-routing corrupts the final checksum.

use cellpilot::{CellPilotConfig, CellPilotOpts, ChannelKind, CpChannel, SpeProgram, CP_MAIN};
use cp_pilot::PiValue;
use cp_simnet::{ClusterSpec, NodeId};

fn bump(vals: &[PiValue], delta: i64) -> Vec<PiValue> {
    let PiValue::Int64(v) = &vals[0] else {
        unreachable!()
    };
    vec![PiValue::Int64(v.iter().map(|x| x + delta).collect())]
}

#[test]
fn seven_hop_chain_across_all_kinds() {
    let spec = ClusterSpec::two_cells_one_xeon();
    // main on the Xeon; ppe0 on Cell node 0; ppe1 on Cell node 1.
    let placement = vec![NodeId(2), NodeId(0), NodeId(1)];
    let mut cfg = CellPilotConfig::new(spec, placement, CellPilotOpts::default());

    // Hop ids (created below in order): 0 Xeon->ppe0 (t1), 1 ppe0->speA
    // (t2), 2 speA->speB (t4), 3 speB->speC (t5), 4 speC->ppe1 (t2),
    // 5 ppe1->Xeon (t1).
    let relay_spe = SpeProgram::new("relay", 2048, |spe, _, _| {
        let me = spe.index() as usize; // 0 = A, 1 = B, 2 = C
        let (inc, outc) = (CpChannel(me + 1), CpChannel(me + 2));
        let vals = spe.read(inc, "%8ld").unwrap();
        spe.write(outc, "%8ld", &bump(&vals, 100)).unwrap();
    });

    let ppe0 = cfg
        .create_process("ppe0", 0, |cp, _| {
            let ts = cp.run_my_spes();
            let vals = cp.read(CpChannel(0), "%8ld").unwrap();
            cp.write(CpChannel(1), "%8ld", &bump(&vals, 10)).unwrap();
            for t in ts {
                cp.wait_spe(t);
            }
        })
        .unwrap();
    let ppe1 = cfg
        .create_process("ppe1", 0, |cp, _| {
            let ts = cp.run_my_spes();
            let vals = cp.read(CpChannel(4), "%8ld").unwrap();
            cp.write(CpChannel(5), "%8ld", &bump(&vals, 1000)).unwrap();
            for t in ts {
                cp.wait_spe(t);
            }
        })
        .unwrap();
    let spe_a = cfg.create_spe_process(&relay_spe, ppe0, 0).unwrap();
    let spe_b = cfg.create_spe_process(&relay_spe, ppe0, 1).unwrap();
    let spe_c = cfg.create_spe_process(&relay_spe, ppe1, 2).unwrap();

    let hops = [
        (CP_MAIN, ppe0, ChannelKind::Type1),
        (ppe0, spe_a, ChannelKind::Type2),
        (spe_a, spe_b, ChannelKind::Type4),
        (spe_b, spe_c, ChannelKind::Type5),
        (spe_c, ppe1, ChannelKind::Type2),
        (ppe1, CP_MAIN, ChannelKind::Type1),
    ];
    for (i, &(from, to, kind)) in hops.iter().enumerate() {
        let c = cfg.channel(from, to).build().unwrap();
        assert_eq!(c.0, i);
        assert_eq!(cfg.channel_kind(c), Some(kind), "hop {i}");
    }

    cfg.run(move |cp| {
        let seed: Vec<i64> = (0..8).collect();
        cp.write(CpChannel(0), "%8ld", &[PiValue::Int64(seed.clone())])
            .unwrap();
        let vals = cp.read(CpChannel(5), "%8ld").unwrap();
        // +10 (ppe0) +100 (A) +100 (B) +100 (C) +1000 (ppe1) = +1310.
        let expect: Vec<i64> = seed.iter().map(|x| x + 1310).collect();
        assert_eq!(vals[0], PiValue::Int64(expect));
    })
    .unwrap();
}

#[test]
fn chain_is_deterministic_end_to_end() {
    // Two identical chain runs finish at the same virtual nanosecond.
    fn once() -> u64 {
        let spec = ClusterSpec::two_cells_one_xeon();
        let placement = vec![NodeId(2), NodeId(0)];
        let mut cfg = CellPilotConfig::new(spec, placement, CellPilotOpts::default());
        let spe = SpeProgram::new("s", 2048, |spe, _, _| {
            let v = spe.read(CpChannel(1), "%4ld").unwrap();
            spe.write(CpChannel(2), "%4ld", &bump(&v, 1)).unwrap();
        });
        let ppe = cfg
            .create_process("ppe", 0, |cp, _| {
                let ts = cp.run_my_spes();
                let v = cp.read(CpChannel(0), "%4ld").unwrap();
                cp.write(CpChannel(1), "%4ld", &v).unwrap();
                for t in ts {
                    cp.wait_spe(t);
                }
            })
            .unwrap();
        let s = cfg.create_spe_process(&spe, ppe, 0).unwrap();
        cfg.channel(CP_MAIN, ppe).build().unwrap();
        cfg.channel(ppe, s).build().unwrap();
        cfg.channel(s, CP_MAIN).build().unwrap();
        cfg.run(move |cp| {
            cp.write(CpChannel(0), "%4ld", &[PiValue::Int64(vec![1, 2, 3, 4])])
                .unwrap();
            let _ = cp.read(CpChannel(2), "%4ld").unwrap();
        })
        .unwrap()
        .end_time
        .as_nanos()
    }
    assert_eq!(once(), once());
}
