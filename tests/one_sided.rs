//! Experiment OS: the one-sided put/get path over the shared-memory window
//! fabric (DESIGN.md §16). Golden-trace digests pin the one-sided variants
//! of every SPE-read channel type (2–5) the way `channel_types.rs` pins
//! the relay path; property tests cover window-overlap rejection; fence
//! ordering, window overflow, exactly-once delivery across a supervised
//! writer crash, and window-ownership migration across a Co-Pilot failover
//! are each exercised end to end.

use cellpilot::{
    render_trace, CellPilotConfig, CellPilotOpts, ChannelKind, ChannelMode, CpChannel, CpError,
    SpeProgram, SupervisionPolicy, CP_MAIN,
};
use cp_des::{IncidentCategory, SimDuration, SimTime};
use cp_simnet::{ClusterSpec, FaultPlan, NodeId};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

const PAYLOAD: usize = 32;

fn data() -> Vec<i32> {
    (0..PAYLOAD as i32).collect()
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Run `scenario` twice; assert non-empty byte-identical traces and the
/// pinned digest — the same replay guarantee the relay goldens make, on
/// the put/get path.
fn assert_golden(kind: ChannelKind, pinned: u64, scenario: impl Fn() -> String) {
    let a = scenario();
    let b = scenario();
    assert!(!a.is_empty(), "{kind} scenario produced no trace");
    assert_eq!(a, b, "{kind} one-sided replay must be byte-identical");
    assert_eq!(
        fnv1a(&a),
        pinned,
        "{kind} one-sided trace digest drifted (got {:#018x}); current trace:\n{a}",
        fnv1a(&a)
    );
}

fn traced_cfg() -> CellPilotConfig {
    CellPilotConfig::one_rank_per_node(
        ClusterSpec::two_cells_one_xeon(),
        CellPilotOpts::new().with_trace(),
    )
}

/// Type 2, one-sided forward leg: main's write lands in the local SPE's
/// window; the ack leg has a rank reader and stays rendezvous.
#[test]
fn golden_one_sided_type2() {
    assert_golden(ChannelKind::Type2, 0xe3f1_3e79_d73a_6949, || {
        let mut cfg = traced_cfg();
        let prog = SpeProgram::new("echo", 2048, |spe, _, _| {
            let v = spe.read_vec::<i32>(CpChannel(0)).unwrap();
            spe.write_slice(CpChannel(1), &v).unwrap();
        });
        let spe = cfg.create_spe_process(&prog, CP_MAIN, 0).unwrap();
        let to_spe = cfg.channel(CP_MAIN, spe).one_sided().build().unwrap();
        let back = cfg.channel(spe, CP_MAIN).build().unwrap();
        assert_eq!(cfg.channel_kind(to_spe).unwrap(), ChannelKind::Type2);
        assert_eq!(cfg.channel_mode(to_spe), Some(ChannelMode::OneSided));
        assert_eq!(cfg.channel_mode(back), Some(ChannelMode::Rendezvous));
        let (_r, t) = cfg
            .run_traced(move |cp| {
                let task = cp.run_spe(spe, 0, 0).unwrap();
                cp.write_slice(to_spe, &data()).unwrap();
                assert_eq!(cp.read_vec::<i32>(back).unwrap(), data());
                cp.wait_spe(task);
            })
            .unwrap();
        render_trace(&t)
    });
}

/// Type 3, one-sided toward the SPE: the remote rank's echo lands straight
/// in the SPE's window across the wire; the SPE→rank leg stays rendezvous.
#[test]
fn golden_one_sided_type3() {
    assert_golden(ChannelKind::Type3, 0xfd87_97c6_dbde_3814, || {
        let mut cfg = traced_cfg();
        let prog = SpeProgram::new("src", 2048, |spe, _, _| {
            spe.write_slice(CpChannel(0), &data()).unwrap();
            assert_eq!(spe.read_vec::<i32>(CpChannel(1)).unwrap(), data());
        });
        let worker = cfg
            .create_process("worker", 0, |cp, _| {
                let v = cp.read_vec::<i32>(CpChannel(0)).unwrap();
                cp.write_slice(CpChannel(1), &v).unwrap();
            })
            .unwrap();
        let spe = cfg.create_spe_process(&prog, CP_MAIN, 0).unwrap();
        let out = cfg.channel(spe, worker).build().unwrap();
        let back = cfg.channel(worker, spe).one_sided().build().unwrap();
        assert_eq!(cfg.channel_kind(out).unwrap(), ChannelKind::Type3);
        assert_eq!(cfg.channel_mode(back), Some(ChannelMode::OneSided));
        let (_r, t) = cfg.run_traced(move |cp| cp.run_and_wait_my_spes()).unwrap();
        render_trace(&t)
    });
}

/// Type 4, one-sided both ways: two same-node SPEs exchange through each
/// other's windows; the shared Co-Pilot never touches the data.
#[test]
fn golden_one_sided_type4() {
    assert_golden(ChannelKind::Type4, 0xc32c_0afb_775e_18f0, || {
        let mut cfg = traced_cfg();
        let a = SpeProgram::new("a", 2048, |spe, _, _| {
            spe.write_slice(CpChannel(0), &data()).unwrap();
            assert_eq!(spe.read_vec::<i32>(CpChannel(1)).unwrap(), data());
        });
        let b = SpeProgram::new("b", 2048, |spe, _, _| {
            let v = spe.read_vec::<i32>(CpChannel(0)).unwrap();
            spe.write_slice(CpChannel(1), &v).unwrap();
        });
        let pa = cfg.create_spe_process(&a, CP_MAIN, 0).unwrap();
        let pb = cfg.create_spe_process(&b, CP_MAIN, 0).unwrap();
        let ab = cfg.channel(pa, pb).one_sided().build().unwrap();
        let _ba = cfg.channel(pb, pa).one_sided().build().unwrap();
        assert_eq!(cfg.channel_kind(ab).unwrap(), ChannelKind::Type4);
        let (_r, t) = cfg.run_traced(move |cp| cp.run_and_wait_my_spes()).unwrap();
        render_trace(&t)
    });
}

/// Type 5, one-sided both ways: the paper's slowest pairing, now one hop —
/// remote SPE to remote SPE with no Co-Pilot relay on either side.
#[test]
fn golden_one_sided_type5() {
    assert_golden(ChannelKind::Type5, 0xc562_90a5_7660_6e19, || {
        let mut cfg = traced_cfg();
        let x = SpeProgram::new("x", 2048, |spe, _, _| {
            spe.write_slice(CpChannel(0), &data()).unwrap();
            assert_eq!(spe.read_vec::<i32>(CpChannel(1)).unwrap(), data());
        });
        let y = SpeProgram::new("y", 2048, |spe, _, _| {
            let v = spe.read_vec::<i32>(CpChannel(0)).unwrap();
            spe.write_slice(CpChannel(1), &v).unwrap();
        });
        let parent = cfg
            .create_process("parent", 0, |cp, _| cp.run_and_wait_my_spes())
            .unwrap();
        let px = cfg.create_spe_process(&x, CP_MAIN, 0).unwrap();
        let py = cfg.create_spe_process(&y, parent, 0).unwrap();
        let xy = cfg.channel(px, py).one_sided().build().unwrap();
        let _yx = cfg.channel(py, px).one_sided().build().unwrap();
        assert_eq!(cfg.channel_kind(xy).unwrap(), ChannelKind::Type5);
        let (_r, t) = cfg.run_traced(move |cp| cp.run_and_wait_my_spes()).unwrap();
        render_trace(&t)
    });
}

/// `fence` blocks the writer until the reader has drained the window: the
/// rank writes twice back to back, fences, and only returns once a reader
/// that sat idle for 500 µs has taken both puts.
#[test]
fn fence_waits_for_the_window_to_drain() {
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::new());
    let lazy = SpeProgram::new("lazy", 2048, |spe, _, _| {
        spe.ctx().advance(SimDuration::from_micros(500));
        assert_eq!(spe.read_vec::<i32>(CpChannel(0)).unwrap(), vec![1, 2]);
        assert_eq!(spe.read_vec::<i32>(CpChannel(0)).unwrap(), vec![3, 4]);
    });
    let s = cfg.create_spe_process(&lazy, CP_MAIN, 0).unwrap();
    let chan = cfg.channel(CP_MAIN, s).one_sided().build().unwrap();
    cfg.run(move |cp| {
        let t = cp.run_spe(s, 0, 0).unwrap();
        cp.write_slice(chan, &[1i32, 2]).unwrap();
        cp.write_slice(chan, &[3i32, 4]).unwrap();
        cp.fence(chan).unwrap();
        assert!(
            cp.ctx().now() >= SimTime::ZERO + SimDuration::from_micros(500),
            "fence returned at {} before the reader drained",
            cp.ctx().now()
        );
        cp.wait_spe(t);
    })
    .unwrap();
}

/// `fence` on a rendezvous channel is a window-misuse configuration error.
#[test]
fn fence_rejects_rendezvous_channels() {
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::new());
    let prog = SpeProgram::new("echo", 2048, |spe, _, _| {
        let _ = spe.read_vec::<i32>(CpChannel(0)).unwrap();
    });
    let s = cfg.create_spe_process(&prog, CP_MAIN, 0).unwrap();
    let chan = cfg.channel(CP_MAIN, s).build().unwrap();
    cfg.run(move |cp| {
        let t = cp.run_spe(s, 0, 0).unwrap();
        match cp.fence(chan) {
            Err(CpError::WindowMisuse { channel, .. }) => assert_eq!(channel, chan.0),
            other => panic!("expected WindowMisuse, got {other:?}"),
        }
        cp.write_slice(chan, &[7i32]).unwrap();
        cp.wait_spe(t);
    })
    .unwrap();
}

/// A put larger than the reader's registered window is a buffer overflow
/// at the writer, not a corruption at the reader.
#[test]
fn put_larger_than_the_window_overflows() {
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::new());
    let prog = SpeProgram::new("tiny", 2048, |spe, _, _| {
        assert_eq!(spe.read_vec::<i32>(CpChannel(0)).unwrap(), vec![9i32]);
    });
    let s = cfg.create_spe_process(&prog, CP_MAIN, 0).unwrap();
    // 32 bytes of window: a one-int message (13 wire bytes) fits, a
    // 32-int message (137 bytes) does not.
    let chan = cfg
        .channel(CP_MAIN, s)
        .one_sided()
        .window_at(4096, 32)
        .build()
        .unwrap();
    cfg.run(move |cp| {
        let t = cp.run_spe(s, 0, 0).unwrap();
        match cp.write_slice(chan, &data()) {
            Err(CpError::SpeBufferOverflow { channel, capacity }) => {
                assert_eq!(channel, chan.0);
                assert_eq!(capacity, 32);
            }
            other => panic!("expected SpeBufferOverflow, got {other:?}"),
        }
        cp.write_slice(chan, &[9i32]).unwrap();
        cp.wait_spe(t);
    })
    .unwrap();
}

/// Recovery harness over one-sided type-5 channels: a 5-round remote
/// SPE↔SPE ping-pong whose reader-side sequence of received messages is
/// the output recovery is judged against.
fn one_sided_ping_pong(
    plan: Option<Arc<FaultPlan>>,
    supervise: bool,
) -> (
    Vec<IncidentCategory>,
    Vec<cellpilot::TraceEvent>,
    Vec<Vec<i32>>,
) {
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut opts = CellPilotOpts::new().with_trace();
    if let Some(p) = plan {
        opts = opts.with_faults(p);
    }
    if supervise {
        opts = opts.with_supervision(SupervisionPolicy::default());
    }
    let mut cfg = CellPilotConfig::one_rank_per_node(spec, opts);
    let writer = SpeProgram::new("writer", 2048, |spe, _, _| {
        for i in 0..5i32 {
            spe.write_slice(CpChannel(0), &[i, i * i, i + 100]).unwrap();
            assert_eq!(spe.read_vec::<i32>(CpChannel(1)).unwrap(), vec![i]);
        }
    });
    let collected: Arc<Mutex<Vec<Vec<i32>>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = collected.clone();
    let reader = SpeProgram::new("reader", 2048, move |spe, _, _| {
        for i in 0..5i32 {
            let v = spe.read_vec::<i32>(CpChannel(0)).unwrap();
            sink.lock().unwrap().push(v);
            spe.write_slice(CpChannel(1), &[i]).unwrap();
        }
    });
    let parent = cfg
        .create_process("parent", 0, |cp, _| cp.run_and_wait_my_spes())
        .unwrap();
    let w = cfg.create_spe_process(&writer, CP_MAIN, 0).unwrap();
    assert_eq!(w.0, 2, "fault plans in these tests target process id 2");
    let r = cfg.create_spe_process(&reader, parent, 0).unwrap();
    let fwd = cfg.channel(w, r).one_sided().build().unwrap();
    let _ack = cfg.channel(r, w).one_sided().build().unwrap();
    assert_eq!(cfg.channel_kind(fwd).unwrap(), ChannelKind::Type5);
    let (report, trace) = cfg
        .run_traced(move |cp| cp.run_and_wait_my_spes())
        .expect("recovery keeps the run alive");
    let out = std::mem::take(&mut *collected.lock().unwrap());
    let cats = report.incidents.iter().map(|i| i.category).collect();
    (cats, trace, out)
}

/// Mid-stream instant: when the third one-sided delivery completed.
fn third_deliver_at(trace: &[cellpilot::TraceEvent]) -> SimTime {
    trace
        .iter()
        .filter(|e| e.op == cellpilot::TraceOp::OneSidedDeliver && e.subject == 0)
        .nth(2)
        .expect("the golden run delivers five forward messages")
        .at
}

/// Killing the reader-side Co-Pilot mid-stream migrates window ownership
/// to the standby (`take_over_rank`) while puts keep landing: the
/// application output is byte-identical to the fault-free run and every
/// message is delivered exactly once.
#[test]
fn one_sided_survives_copilot_failover() {
    let (golden_cats, golden_trace, golden_out) = one_sided_ping_pong(None, false);
    assert!(golden_cats.is_empty(), "{golden_cats:?}");
    assert_eq!(golden_out.len(), 5);

    // The reader SPE lives on node 1 (child of `parent`); its Co-Pilot
    // owns the forward window.
    let plan = Arc::new(FaultPlan::new().kill_copilot(NodeId(1), third_deliver_at(&golden_trace)));
    let (cats, _trace, out) = one_sided_ping_pong(Some(plan), false);
    assert_eq!(out, golden_out, "failover must be application-invisible");
    assert!(cats.contains(&IncidentCategory::CopilotDeath), "{cats:?}");
    assert!(
        cats.contains(&IncidentCategory::CopilotFailover),
        "{cats:?}"
    );
    assert!(!cats.contains(&IncidentCategory::PeerLost), "{cats:?}");
}

/// A supervised writer crash mid-stream restarts from the op journal; the
/// fabric's wire-seq dedup swallows any replayed put, so the reader still
/// observes every message exactly once, in order.
#[test]
fn one_sided_exactly_once_across_supervised_writer_crash() {
    let (golden_cats, golden_trace, golden_out) = one_sided_ping_pong(None, true);
    assert!(golden_cats.is_empty(), "{golden_cats:?}");

    let plan = Arc::new(FaultPlan::new().crash_spe(2, third_deliver_at(&golden_trace)));
    let (cats, _trace, out) = one_sided_ping_pong(Some(plan), true);
    assert_eq!(out, golden_out, "supervised recovery must be lossless");
    assert!(cats.contains(&IncidentCategory::SpeCrash), "{cats:?}");
    assert!(cats.contains(&IncidentCategory::SpeRestart), "{cats:?}");
    assert!(!cats.contains(&IncidentCategory::PeerLost), "{cats:?}");
}

proptest! {
    /// CP011, property-checked: two explicit windows on the same SPE are
    /// flagged exactly when their byte ranges overlap.
    #[test]
    fn overlapping_explicit_windows_are_flagged(
        start1 in 0u32..8192,
        len1 in 1u32..2048,
        start2 in 0u32..8192,
        len2 in 1u32..2048,
    ) {
        let spec = ClusterSpec::two_cells_one_xeon();
        let mut cfg = CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::new());
        let prog = SpeProgram::new("w", 1024, |_, _, _| {});
        let s = cfg.create_spe_process(&prog, CP_MAIN, 0).unwrap();
        let ppe = cfg.create_process("ppe", 0, |_, _| {}).unwrap();
        cfg.channel(CP_MAIN, s)
            .one_sided()
            .window_at(start1, len1)
            .build()
            .unwrap();
        cfg.channel(ppe, s)
            .one_sided()
            .window_at(start2, len2)
            .build()
            .unwrap();
        let overlap = start1 < start2 + len2 && start2 < start1 + len1;
        let flagged = cfg
            .check()
            .iter()
            .any(|d| d.code.as_str() == "CP011");
        prop_assert_eq!(flagged, overlap, "windows ({}, {}) and ({}, {})", start1, len1, start2, len2);
    }
}
