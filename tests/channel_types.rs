//! Experiment T-I: the paper's Table I channel-type taxonomy, asserted for
//! every endpoint pairing the classification function can see (this is the
//! "static" experiment of DESIGN.md's index) — plus golden-trace
//! regression tests: one pinned trace digest per channel type, with the
//! byte-identical-replay guarantee checked on every run.

use cellpilot::{
    classify, render_trace, CellPilotConfig, CellPilotOpts, ChannelKind, CpChannel, Location,
    SpeProgram, CP_MAIN,
};
use cp_simnet::{ClusterSpec, NodeId};

fn rank(node: usize) -> Location {
    Location::Rank {
        rank: node,
        node: NodeId(node),
    }
}

fn spe(node: usize, slot: usize) -> Location {
    Location::Spe {
        node: NodeId(node),
        slot,
    }
}

#[test]
fn table_one_is_exhaustive_over_endpoint_shapes() {
    // The five rows, plus the direction-insensitivity and the co-resident
    // rank case. Nodes: 0 and 1 are Cells, 2 is the Xeon.
    let cases = [
        // (a, b, expected)
        (rank(0), rank(1), ChannelKind::Type1), // PPE <-> remote PPE
        (rank(0), rank(2), ChannelKind::Type1), // PPE <-> non-Cell
        (rank(2), rank(1), ChannelKind::Type1), // non-Cell <-> PPE
        (rank(0), spe(0, 0), ChannelKind::Type2), // PPE <-> local SPE
        (rank(1), spe(0, 0), ChannelKind::Type3), // PPE <-> remote SPE
        (rank(2), spe(0, 0), ChannelKind::Type3), // non-Cell <-> remote SPE
        (spe(0, 0), spe(0, 1), ChannelKind::Type4), // SPE <-> local SPE
        (spe(0, 0), spe(1, 0), ChannelKind::Type5), // SPE <-> remote SPE
    ];
    for (a, b, expected) in cases {
        assert_eq!(classify(a, b), expected, "{a:?} <-> {b:?}");
        assert_eq!(classify(b, a), expected, "direction-insensitive");
    }
}

#[test]
fn every_kind_is_reachable() {
    use std::collections::HashSet;
    let locs = [rank(0), rank(1), rank(2), spe(0, 0), spe(0, 1), spe(1, 0)];
    let mut seen = HashSet::new();
    for &a in &locs {
        for &b in &locs {
            if a != b {
                seen.insert(classify(a, b));
            }
        }
    }
    assert_eq!(seen.len(), 5, "all five Table-I types occur: {seen:?}");
}

// ---------------------------------------------------------------------------
// Golden traces: each channel type runs a fixed 32-integer echo scenario
// under the default (FIFO, seed-0) schedule. The rendered trace is pinned by
// a FNV-1a digest — any change to timing, routing, or event order shows up
// as a digest drift here before it shows up anywhere else — and every
// scenario is run twice to re-assert byte-identical replay.
// ---------------------------------------------------------------------------

const PAYLOAD: usize = 32;

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

fn data() -> Vec<i32> {
    (0..PAYLOAD as i32).collect()
}

/// Run `scenario` twice; assert non-empty byte-identical traces and the
/// pinned digest.
fn assert_golden(kind: ChannelKind, pinned: u64, scenario: impl Fn() -> String) {
    let a = scenario();
    let b = scenario();
    assert!(!a.is_empty(), "{kind} scenario produced no trace");
    assert_eq!(a, b, "{kind} replay must be byte-identical");
    assert_eq!(
        fnv1a(&a),
        pinned,
        "{kind} trace digest drifted (got {:#018x}); current trace:\n{a}",
        fnv1a(&a)
    );
}

fn traced_cfg() -> CellPilotConfig {
    CellPilotConfig::one_rank_per_node(
        ClusterSpec::two_cells_one_xeon(),
        CellPilotOpts::new().with_trace(),
    )
}

/// Type 1: PPE rank 0 <-> PPE rank 1 on another node, pure Pilot/MPI path.
#[test]
fn golden_trace_type1_rank_to_rank() {
    assert_golden(ChannelKind::Type1, 0xcb00_3640_5a3d_da16, || {
        let mut cfg = traced_cfg();
        let worker = cfg
            .create_process("worker", 0, |cp, _| {
                let v = cp.read_vec::<i32>(CpChannel(0)).unwrap();
                cp.write_slice(CpChannel(1), &v).unwrap();
            })
            .unwrap();
        let out = cfg.channel(CP_MAIN, worker).build().unwrap();
        let back = cfg.channel(worker, CP_MAIN).build().unwrap();
        assert_eq!(cfg.channel_kind(out).unwrap(), ChannelKind::Type1);
        let (_r, t) = cfg
            .run_traced(move |cp| {
                cp.write_slice(out, &data()).unwrap();
                assert_eq!(cp.read_vec::<i32>(back).unwrap(), data());
            })
            .unwrap();
        render_trace(&t)
    });
}

/// The Type-1 golden scenario with both channels bounded far above their
/// actual traffic: below capacity the credit check is a pure lock-guarded
/// branch (no virtual time, no kernel events), so the trace must match
/// the unbounded scenario's pinned digest *byte for byte*. This is the
/// determinism contract of flow control — bounding a channel you never
/// saturate changes nothing.
#[test]
fn golden_trace_unchanged_by_large_capacities() {
    assert_golden(ChannelKind::Type1, 0xcb00_3640_5a3d_da16, || {
        let mut cfg = traced_cfg();
        let worker = cfg
            .create_process("worker", 0, |cp, _| {
                let v = cp.read_vec::<i32>(CpChannel(0)).unwrap();
                cp.write_slice(CpChannel(1), &v).unwrap();
            })
            .unwrap();
        let out = cfg.channel(CP_MAIN, worker).capacity(1024).build().unwrap();
        let back = cfg.channel(worker, CP_MAIN).capacity(1024).build().unwrap();
        let (_r, t) = cfg
            .run_traced(move |cp| {
                cp.write_slice(out, &data()).unwrap();
                assert_eq!(cp.read_vec::<i32>(back).unwrap(), data());
            })
            .unwrap();
        render_trace(&t)
    });
}

/// Type 2: PPE rank <-> SPE on the same Cell node, via that node's
/// Co-Pilot.
#[test]
fn golden_trace_type2_rank_to_local_spe() {
    assert_golden(ChannelKind::Type2, 0x6753_a07b_3455_70fd, || {
        let mut cfg = traced_cfg();
        let prog = SpeProgram::new("echo", 2048, |spe, _, _| {
            let v = spe.read_vec::<i32>(CpChannel(0)).unwrap();
            spe.write_slice(CpChannel(1), &v).unwrap();
        });
        let spe = cfg.create_spe_process(&prog, CP_MAIN, 0).unwrap();
        let to_spe = cfg.channel(CP_MAIN, spe).build().unwrap();
        let back = cfg.channel(spe, CP_MAIN).build().unwrap();
        assert_eq!(cfg.channel_kind(to_spe).unwrap(), ChannelKind::Type2);
        let (_r, t) = cfg
            .run_traced(move |cp| {
                let task = cp.run_spe(spe, 0, 0).unwrap();
                cp.write_slice(to_spe, &data()).unwrap();
                assert_eq!(cp.read_vec::<i32>(back).unwrap(), data());
                cp.wait_spe(task);
            })
            .unwrap();
        render_trace(&t)
    });
}

/// Type 3: remote PPE rank <-> SPE, relayed by the SPE node's Co-Pilot.
#[test]
fn golden_trace_type3_rank_to_remote_spe() {
    assert_golden(ChannelKind::Type3, 0x906c_d23f_4df4_9fe2, || {
        let mut cfg = traced_cfg();
        let prog = SpeProgram::new("src", 2048, |spe, _, _| {
            spe.write_slice(CpChannel(0), &data()).unwrap();
            assert_eq!(spe.read_vec::<i32>(CpChannel(1)).unwrap(), data());
        });
        let worker = cfg
            .create_process("worker", 0, |cp, _| {
                let v = cp.read_vec::<i32>(CpChannel(0)).unwrap();
                cp.write_slice(CpChannel(1), &v).unwrap();
            })
            .unwrap();
        let spe = cfg.create_spe_process(&prog, CP_MAIN, 0).unwrap();
        let out = cfg.channel(spe, worker).build().unwrap();
        let _back = cfg.channel(worker, spe).build().unwrap();
        assert_eq!(cfg.channel_kind(out).unwrap(), ChannelKind::Type3);
        let (_r, t) = cfg.run_traced(move |cp| cp.run_and_wait_my_spes()).unwrap();
        render_trace(&t)
    });
}

/// Type 4: two SPEs on one Cell node, paired locally by their shared
/// Co-Pilot.
#[test]
fn golden_trace_type4_spe_to_local_spe() {
    assert_golden(ChannelKind::Type4, 0x4330_0edc_02f1_c124, || {
        let mut cfg = traced_cfg();
        let a = SpeProgram::new("a", 2048, |spe, _, _| {
            spe.write_slice(CpChannel(0), &data()).unwrap();
            assert_eq!(spe.read_vec::<i32>(CpChannel(1)).unwrap(), data());
        });
        let b = SpeProgram::new("b", 2048, |spe, _, _| {
            let v = spe.read_vec::<i32>(CpChannel(0)).unwrap();
            spe.write_slice(CpChannel(1), &v).unwrap();
        });
        let pa = cfg.create_spe_process(&a, CP_MAIN, 0).unwrap();
        let pb = cfg.create_spe_process(&b, CP_MAIN, 0).unwrap();
        let ab = cfg.channel(pa, pb).build().unwrap();
        let _ba = cfg.channel(pb, pa).build().unwrap();
        assert_eq!(cfg.channel_kind(ab).unwrap(), ChannelKind::Type4);
        let (_r, t) = cfg.run_traced(move |cp| cp.run_and_wait_my_spes()).unwrap();
        render_trace(&t)
    });
}

/// Type 5: SPEs on two different Cell nodes, relayed by both Co-Pilots.
#[test]
fn golden_trace_type5_spe_to_remote_spe() {
    assert_golden(ChannelKind::Type5, 0x2686_3d58_dd8f_6264, || {
        let mut cfg = traced_cfg();
        let x = SpeProgram::new("x", 2048, |spe, _, _| {
            spe.write_slice(CpChannel(0), &data()).unwrap();
            assert_eq!(spe.read_vec::<i32>(CpChannel(1)).unwrap(), data());
        });
        let y = SpeProgram::new("y", 2048, |spe, _, _| {
            let v = spe.read_vec::<i32>(CpChannel(0)).unwrap();
            spe.write_slice(CpChannel(1), &v).unwrap();
        });
        let parent = cfg
            .create_process("parent", 0, |cp, _| cp.run_and_wait_my_spes())
            .unwrap();
        let px = cfg.create_spe_process(&x, CP_MAIN, 0).unwrap();
        let py = cfg.create_spe_process(&y, parent, 0).unwrap();
        let xy = cfg.channel(px, py).build().unwrap();
        let _yx = cfg.channel(py, px).build().unwrap();
        assert_eq!(cfg.channel_kind(xy).unwrap(), ChannelKind::Type5);
        let (_r, t) = cfg.run_traced(move |cp| cp.run_and_wait_my_spes()).unwrap();
        render_trace(&t)
    });
}
