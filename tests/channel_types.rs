//! Experiment T-I: the paper's Table I channel-type taxonomy, asserted for
//! every endpoint pairing the classification function can see (this is the
//! "static" experiment of DESIGN.md's index).

use cellpilot::{classify, ChannelKind, Location};
use cp_simnet::NodeId;

fn rank(node: usize) -> Location {
    Location::Rank {
        rank: node,
        node: NodeId(node),
    }
}

fn spe(node: usize, slot: usize) -> Location {
    Location::Spe {
        node: NodeId(node),
        slot,
    }
}

#[test]
fn table_one_is_exhaustive_over_endpoint_shapes() {
    // The five rows, plus the direction-insensitivity and the co-resident
    // rank case. Nodes: 0 and 1 are Cells, 2 is the Xeon.
    let cases = [
        // (a, b, expected)
        (rank(0), rank(1), ChannelKind::Type1), // PPE <-> remote PPE
        (rank(0), rank(2), ChannelKind::Type1), // PPE <-> non-Cell
        (rank(2), rank(1), ChannelKind::Type1), // non-Cell <-> PPE
        (rank(0), spe(0, 0), ChannelKind::Type2), // PPE <-> local SPE
        (rank(1), spe(0, 0), ChannelKind::Type3), // PPE <-> remote SPE
        (rank(2), spe(0, 0), ChannelKind::Type3), // non-Cell <-> remote SPE
        (spe(0, 0), spe(0, 1), ChannelKind::Type4), // SPE <-> local SPE
        (spe(0, 0), spe(1, 0), ChannelKind::Type5), // SPE <-> remote SPE
    ];
    for (a, b, expected) in cases {
        assert_eq!(classify(a, b), expected, "{a:?} <-> {b:?}");
        assert_eq!(classify(b, a), expected, "direction-insensitive");
    }
}

#[test]
fn every_kind_is_reachable() {
    use std::collections::HashSet;
    let locs = [rank(0), rank(1), rank(2), spe(0, 0), spe(0, 1), spe(1, 0)];
    let mut seen = HashSet::new();
    for &a in &locs {
        for &b in &locs {
            if a != b {
                seen.insert(classify(a, b));
            }
        }
    }
    assert_eq!(seen.len(), 5, "all five Table-I types occur: {seen:?}");
}
