//! Golden sim-trace digests for the application examples: scaled-down but
//! structurally faithful replicas of `mandelbrot_farm` and
//! `pipeline_overlay` run under `with_trace` on the sim backend (the
//! conformance oracle), and the rendered trace is pinned by an FNV-1a
//! digest. Any change to scheduling, routing, costs, or event order drifts
//! a digest here before it shows up in any figure — and each scenario runs
//! twice to re-assert byte-identical replay. (`dacs_tour`'s digest lives
//! in `crates/dacs/tests/golden.rs` — the core crate does not depend on
//! the DaCS baseline.)

use cellpilot::{
    render_trace, CellPilotConfig, CellPilotOpts, CpChannel, CpProcess, SpeProgram, CP_MAIN,
};
use cp_cellsim::OverlaySegment;
use cp_des::SimDuration;
use cp_pilot::PiValue;
use cp_simnet::ClusterSpec;

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Run `scenario` twice; assert non-empty byte-identical traces and the
/// pinned digest.
fn assert_golden(what: &str, pinned: u64, scenario: impl Fn() -> String) {
    let a = scenario();
    let b = scenario();
    assert!(!a.is_empty(), "{what} scenario produced no trace");
    assert_eq!(a, b, "{what} replay must be byte-identical");
    assert_eq!(
        fnv1a(&a),
        pinned,
        "{what} trace digest drifted (got {:#018x})",
        fnv1a(&a)
    );
}

fn traced_cfg() -> CellPilotConfig {
    CellPilotConfig::one_rank_per_node(
        ClusterSpec::two_cells_one_xeon(),
        CellPilotOpts::new().with_trace(),
    )
}

// ---------------------------------------------------------------------------
// mandelbrot_farm: dynamic dealing over polled result channels.
// ---------------------------------------------------------------------------

const WIDTH: usize = 24;
const HEIGHT: usize = 12;
const MAX_ITER: u32 = 200;
const WORKERS: usize = 4;

fn mandel(px: usize, py: usize) -> u32 {
    let x0 = -2.2 + 3.0 * px as f64 / WIDTH as f64;
    let y0 = -1.2 + 2.4 * py as f64 / HEIGHT as f64;
    let (mut x, mut y) = (0.0f64, 0.0f64);
    let mut it = 0;
    while x * x + y * y <= 4.0 && it < MAX_ITER {
        let xt = x * x - y * y + x0;
        y = 2.0 * x * y + y0;
        x = xt;
        it += 1;
    }
    it
}

fn row_pixels(py: usize) -> Vec<u32> {
    (0..WIDTH).map(|px| mandel(px, py)).collect()
}

#[test]
fn golden_trace_mandelbrot_farm() {
    assert_golden("mandelbrot_farm", 0x5eec_cefb_0920_2e6e, || {
        let mut cfg = traced_cfg();
        let worker = SpeProgram::new("mandel-worker", 6144, |spe, _, _| {
            let w = spe.index() as usize;
            let (task, result) = (CpChannel(2 * w), CpChannel(2 * w + 1));
            loop {
                let vals = spe.read(task, "%d").unwrap();
                let PiValue::Int32(v) = &vals[0] else {
                    unreachable!()
                };
                if v[0] < 0 {
                    return;
                }
                let pixels = row_pixels(v[0] as usize);
                let iters: u64 = pixels.iter().map(|&p| u64::from(p)).sum();
                spe.ctx()
                    .advance(SimDuration::from_micros_f64(iters as f64 * 0.004));
                spe.write(
                    result,
                    &format!("%d %{WIDTH}u"),
                    &[PiValue::Int32(vec![v[0]]), PiValue::UInt32(pixels)],
                )
                .unwrap();
            }
        });
        let host = cfg
            .create_process("host", 0, |cp, _| {
                let ts = cp.run_my_spes();
                for t in ts {
                    cp.wait_spe(t);
                }
            })
            .unwrap();
        let mut chans = Vec::new();
        for w in 0..WORKERS {
            let parent = if w < WORKERS / 2 { CP_MAIN } else { host };
            let s = cfg.create_spe_process(&worker, parent, w as i32).unwrap();
            let task = cfg.channel(CP_MAIN, s).build().unwrap();
            let result = cfg.channel(s, CP_MAIN).build().unwrap();
            chans.push((task, result));
        }
        let (_r, t) = cfg
            .run_traced(move |cp| {
                let mut ts = Vec::new();
                for p in 0..cp.process_count() {
                    if let Ok(t) = cp.run_spe(CpProcess(p), 0, 0) {
                        ts.push(t);
                    }
                }
                let mut image = vec![Vec::new(); HEIGHT];
                let mut next_row = 0usize;
                let mut done_rows = 0usize;
                for &(task, _) in &chans {
                    cp.write(task, "%d", &[PiValue::Int32(vec![next_row as i32])])
                        .unwrap();
                    next_row += 1;
                }
                while done_rows < HEIGHT {
                    let mut any = false;
                    for &(task, result) in &chans {
                        if cp.channel_has_data(result).unwrap() {
                            any = true;
                            let vals = cp.read(result, &format!("%d %{WIDTH}u")).unwrap();
                            let PiValue::Int32(r) = &vals[0] else {
                                unreachable!()
                            };
                            let PiValue::UInt32(px) = &vals[1] else {
                                unreachable!()
                            };
                            image[r[0] as usize] = px.clone();
                            done_rows += 1;
                            if next_row < HEIGHT {
                                cp.write(task, "%d", &[PiValue::Int32(vec![next_row as i32])])
                                    .unwrap();
                                next_row += 1;
                            }
                        }
                    }
                    if !any {
                        cp.ctx().advance(SimDuration::from_micros(20));
                    }
                }
                for &(task, _) in &chans {
                    cp.write(task, "%d", &[PiValue::Int32(vec![-1])]).unwrap();
                }
                for (py, row) in image.iter().enumerate() {
                    assert_eq!(row, &row_pixels(py), "row {py}");
                }
                for t in ts {
                    cp.wait_spe(t);
                }
            })
            .unwrap();
        render_trace(&t)
    });
}

// ---------------------------------------------------------------------------
// pipeline_overlay: producer SPE → worker SPE with three overlay stages.
// ---------------------------------------------------------------------------

const BLOCK: usize = 16;
const BLOCKS: usize = 4;

fn window_stage(x: &[f64]) -> Vec<f64> {
    let n = x.len() as f64;
    x.iter()
        .enumerate()
        .map(|(i, &v)| {
            let w = 0.5 - 0.5 * (2.0 * std::f64::consts::PI * i as f64 / n).cos();
            v * w
        })
        .collect()
}

fn filter_stage(x: &[f64]) -> Vec<f64> {
    (0..x.len())
        .map(|i| {
            let a = x[i.saturating_sub(1)];
            let b = x[i];
            let c = x[(i + 1).min(x.len() - 1)];
            (a + b + c) / 3.0
        })
        .collect()
}

fn integrate_stage(x: &[f64]) -> f64 {
    x.iter().sum()
}

#[test]
fn golden_trace_pipeline_overlay() {
    assert_golden("pipeline_overlay", 0x6275_af54_ea89_92b2, || {
        let mut cfg = traced_cfg();
        let producer = SpeProgram::new("producer", 4096, |spe, _, _| {
            for b in 0..BLOCKS {
                let block: Vec<f64> = (0..BLOCK)
                    .map(|i| ((b * BLOCK + i) as f64 * 0.1).sin())
                    .collect();
                spe.write(
                    CpChannel(0),
                    &format!("%{BLOCK}lf"),
                    &[PiValue::Float64(block)],
                )
                .unwrap();
            }
        });
        let worker = SpeProgram::new("worker", 4096, |spe, _, _| {
            let overlay = spe
                .create_overlay(
                    36_000,
                    vec![
                        OverlaySegment {
                            name: "window".into(),
                            bytes: 30_000,
                        },
                        OverlaySegment {
                            name: "filter".into(),
                            bytes: 34_000,
                        },
                        OverlaySegment {
                            name: "integrate".into(),
                            bytes: 26_000,
                        },
                    ],
                )
                .unwrap();
            let mut results = Vec::with_capacity(BLOCKS);
            for _ in 0..BLOCKS {
                let vals = spe.read(CpChannel(0), &format!("%{BLOCK}lf")).unwrap();
                let PiValue::Float64(block) = &vals[0] else {
                    unreachable!()
                };
                let mut data = block.clone();
                for (stage, f) in [
                    (0usize, window_stage as fn(&[f64]) -> Vec<f64>),
                    (1, filter_stage as fn(&[f64]) -> Vec<f64>),
                ] {
                    overlay.ensure_resident(spe.ctx(), stage).unwrap();
                    data = f(&data);
                    spe.ctx()
                        .advance(SimDuration::from_micros_f64(BLOCK as f64 * 0.05));
                }
                overlay.ensure_resident(spe.ctx(), 2).unwrap();
                results.push(integrate_stage(&data));
                spe.ctx()
                    .advance(SimDuration::from_micros_f64(BLOCK as f64 * 0.02));
            }
            overlay.release();
            spe.write(
                CpChannel(1),
                &format!("%{BLOCKS}lf"),
                &[PiValue::Float64(results)],
            )
            .unwrap();
        });
        let p = cfg.create_spe_process(&producer, CP_MAIN, 0).unwrap();
        let w = cfg.create_spe_process(&worker, CP_MAIN, 1).unwrap();
        cfg.channel(p, w).build().unwrap();
        cfg.channel(w, CP_MAIN).build().unwrap();
        let (_r, t) = cfg
            .run_traced(move |cp| {
                let t1 = cp.run_spe(p, 0, 0).unwrap();
                let t2 = cp.run_spe(w, 0, 0).unwrap();
                let vals = cp.read(CpChannel(1), &format!("%{BLOCKS}lf")).unwrap();
                let PiValue::Float64(results) = &vals[0] else {
                    unreachable!()
                };
                for (b, &got) in results.iter().enumerate() {
                    let block: Vec<f64> = (0..BLOCK)
                        .map(|i| ((b * BLOCK + i) as f64 * 0.1).sin())
                        .collect();
                    let expect = integrate_stage(&filter_stage(&window_stage(&block)));
                    assert!((got - expect).abs() < 1e-9, "block {b}");
                }
                cp.wait_spe(t1);
                cp.wait_spe(t2);
            })
            .unwrap();
        render_trace(&t)
    });
}
