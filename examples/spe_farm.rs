//! A data-parallel SPE farm using the collective extension: the master
//! broadcasts a query vector to eight SPE workers (one wire multicast per
//! Cell node), each worker computes dot products against its private chunk
//! of a matrix, and a gather bundle collects the partial results — the
//! "utilize every available processor" pattern Pilot-style programs are
//! built for.
//!
//! Run with: `cargo run --example spe_farm`

use cellpilot::{
    CellPilotConfig, CellPilotOpts, CpBundleUsage, CpChannel, CpProcess, SpeProgram, CP_MAIN,
};
use cp_des::SimDuration;
use cp_pilot::PiValue;
use cp_simnet::ClusterSpec;

const DIM: usize = 64;
const ROWS_PER_WORKER: usize = 16;
const WORKERS: usize = 8;

/// Deterministic pseudo-matrix row `r`.
fn row(r: usize) -> Vec<f64> {
    (0..DIM)
        .map(|j| ((r * 31 + j * 7) % 17) as f64 - 8.0)
        .collect()
}

fn main() {
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg =
        CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::new().with_backend_from_env());

    let worker = SpeProgram::new("dot-worker", 8192, |spe, _, _| {
        let w = spe.index() as usize;
        // Broadcast arrives on my task channel (id 2w).
        let vals = spe.read(CpChannel(2 * w), "%64lf").unwrap();
        let PiValue::Float64(query) = &vals[0] else {
            unreachable!()
        };
        // My rows live in local store; model the SIMD dot-product time.
        let mut partial = Vec::with_capacity(ROWS_PER_WORKER);
        for r in 0..ROWS_PER_WORKER {
            let my_row = row(w * ROWS_PER_WORKER + r);
            let dot: f64 = my_row.iter().zip(query).map(|(a, b)| a * b).sum();
            partial.push(dot);
        }
        spe.ctx().advance(SimDuration::from_micros_f64(
            (ROWS_PER_WORKER * DIM) as f64 * 0.01,
        ));
        spe.write(CpChannel(2 * w + 1), "%16lf", &[PiValue::Float64(partial)])
            .unwrap();
    });

    // Half the workers on each Cell node.
    let host = cfg
        .create_process("host", 0, |cp, _| {
            let mut ts = Vec::new();
            for p in 0..cp.process_count() {
                if let Ok(t) = cp.run_spe(CpProcess(p), 0, 0) {
                    ts.push(t);
                }
            }
            for t in ts {
                cp.wait_spe(t);
            }
        })
        .unwrap();
    let mut task_chans = Vec::new();
    let mut result_chans = Vec::new();
    for w in 0..WORKERS {
        let parent = if w < WORKERS / 2 { CP_MAIN } else { host };
        let s = cfg.create_spe_process(&worker, parent, w as i32).unwrap();
        task_chans.push(cfg.channel(CP_MAIN, s).build().unwrap());
        result_chans.push(cfg.channel(s, CP_MAIN).build().unwrap());
    }
    let bcast = cfg
        .create_bundle(CpBundleUsage::Broadcast, &task_chans)
        .unwrap();
    let gather = cfg
        .create_bundle(CpBundleUsage::Gather, &result_chans)
        .unwrap();

    let report = cfg
        .run(move |cp| {
            let mut ts = Vec::new();
            for p in 0..cp.process_count() {
                if let Ok(t) = cp.run_spe(CpProcess(p), 0, 0) {
                    ts.push(t);
                }
            }
            let query: Vec<f64> = (0..DIM).map(|j| (j % 5) as f64 - 2.0).collect();
            cp.broadcast(bcast, "%64lf", &[PiValue::Float64(query.clone())])
                .unwrap();
            let rows_back = cp.gather(gather, "%16lf").unwrap();
            let result: Vec<f64> = rows_back
                .iter()
                .flat_map(|r| {
                    let PiValue::Float64(v) = &r[0] else {
                        unreachable!()
                    };
                    v.clone()
                })
                .collect();
            // Verify against a local computation.
            for (r, &got) in result.iter().enumerate() {
                let expect: f64 = row(r).iter().zip(&query).map(|(a, b)| a * b).sum();
                assert!((got - expect).abs() < 1e-9, "row {r}");
            }
            println!(
                "matrix-vector product of {} rows across {WORKERS} SPEs on 2 Cell nodes: OK",
                result.len()
            );
            println!("first entries: {:?}", &result[..4.min(result.len())]);
            for t in ts {
                cp.wait_spe(t);
            }
        })
        .unwrap();
    eprintln!(
        "finished at t = {:.1} us (virtual on the sim backend, wall-clock on native)",
        report.end_time.as_micros_f64()
    );
}
