//! A three-stage signal-processing pipeline on one SPE whose *code* does
//! not fit the 256 KB local store: the stages live in overlay segments
//! (paper §II.A — "programmers must pay special attention not to exceed
//! this limit, and may need to divide up their application code
//! accordingly, for which an overlay capability is available").
//!
//! A producer SPE streams blocks to a worker SPE; the worker applies
//! window → filter → integrate, swapping each stage's code into its
//! overlay window on first use per block batch. The run prints how much
//! virtual time the overlay swaps cost relative to the computation.
//!
//! Run with: `cargo run --example pipeline_overlay`

use cellpilot::{CellPilotConfig, CellPilotOpts, CpChannel, SpeProgram, CP_MAIN};
use cp_cellsim::OverlaySegment;
use cp_des::SimDuration;
use cp_pilot::PiValue;
use cp_simnet::ClusterSpec;

const BLOCK: usize = 64;
const BLOCKS: usize = 12;

fn window_stage(x: &[f64]) -> Vec<f64> {
    // Hann window.
    let n = x.len() as f64;
    x.iter()
        .enumerate()
        .map(|(i, &v)| {
            let w = 0.5 - 0.5 * (2.0 * std::f64::consts::PI * i as f64 / n).cos();
            v * w
        })
        .collect()
}

fn filter_stage(x: &[f64]) -> Vec<f64> {
    // 3-tap moving average.
    (0..x.len())
        .map(|i| {
            let a = x[i.saturating_sub(1)];
            let b = x[i];
            let c = x[(i + 1).min(x.len() - 1)];
            (a + b + c) / 3.0
        })
        .collect()
}

fn integrate_stage(x: &[f64]) -> f64 {
    x.iter().sum()
}

fn main() {
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg =
        CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::new().with_backend_from_env());

    let producer = SpeProgram::new("producer", 4096, |spe, _, _| {
        for b in 0..BLOCKS {
            let block: Vec<f64> = (0..BLOCK)
                .map(|i| ((b * BLOCK + i) as f64 * 0.1).sin())
                .collect();
            spe.write(CpChannel(0), "%64lf", &[PiValue::Float64(block)])
                .unwrap();
        }
    });

    // The worker's three stages total ~90 KB of code; with the data
    // buffers and the CellPilot runtime they cannot all be resident, so
    // they share one 36 KB overlay window.
    let worker = SpeProgram::new("worker", 4096, |spe, _, _| {
        let overlay = spe
            .create_overlay(
                36_000,
                vec![
                    OverlaySegment {
                        name: "window".into(),
                        bytes: 30_000,
                    },
                    OverlaySegment {
                        name: "filter".into(),
                        bytes: 34_000,
                    },
                    OverlaySegment {
                        name: "integrate".into(),
                        bytes: 26_000,
                    },
                ],
            )
            .unwrap();
        let mut swap_us = 0.0;
        let mut results = Vec::with_capacity(BLOCKS);
        for _ in 0..BLOCKS {
            let vals = spe.read(CpChannel(0), "%64lf").unwrap();
            let PiValue::Float64(block) = &vals[0] else {
                unreachable!()
            };
            let mut data = block.clone();
            for (stage, f) in [
                (0usize, window_stage as fn(&[f64]) -> Vec<f64>),
                (1, filter_stage as fn(&[f64]) -> Vec<f64>),
            ] {
                let t0 = spe.ctx().now();
                overlay.ensure_resident(spe.ctx(), stage).unwrap();
                swap_us += (spe.ctx().now() - t0).as_micros_f64();
                data = f(&data);
                spe.ctx()
                    .advance(SimDuration::from_micros_f64(BLOCK as f64 * 0.05));
            }
            let t0 = spe.ctx().now();
            overlay.ensure_resident(spe.ctx(), 2).unwrap();
            swap_us += (spe.ctx().now() - t0).as_micros_f64();
            results.push(integrate_stage(&data));
            spe.ctx()
                .advance(SimDuration::from_micros_f64(BLOCK as f64 * 0.02));
        }
        let swaps = overlay.swap_count();
        overlay.release();
        spe.write(
            CpChannel(1),
            &format!("%{BLOCKS}lf %ld %lf"),
            &[
                PiValue::Float64(results),
                PiValue::Int64(vec![swaps as i64]),
                PiValue::Float64(vec![swap_us]),
            ],
        )
        .unwrap();
    });

    let p = cfg.create_spe_process(&producer, CP_MAIN, 0).unwrap();
    let w = cfg.create_spe_process(&worker, CP_MAIN, 1).unwrap();
    cfg.channel(p, w).build().unwrap();
    cfg.channel(w, CP_MAIN).build().unwrap();

    let report = cfg
        .run(move |cp| {
            let t1 = cp.run_spe(p, 0, 0).unwrap();
            let t2 = cp.run_spe(w, 0, 0).unwrap();
            let vals = cp.read(CpChannel(1), &format!("%{BLOCKS}lf %ld %lf")).unwrap();
            let PiValue::Float64(results) = &vals[0] else { unreachable!() };
            let PiValue::Int64(swaps) = &vals[1] else { unreachable!() };
            let PiValue::Float64(swap_us) = &vals[2] else { unreachable!() };
            // Verify against a host-side reference.
            for (b, &got) in results.iter().enumerate() {
                let block: Vec<f64> = (0..BLOCK)
                    .map(|i| ((b * BLOCK + i) as f64 * 0.1).sin())
                    .collect();
                let expect = integrate_stage(&filter_stage(&window_stage(&block)));
                assert!((got - expect).abs() < 1e-9, "block {b}");
            }
            println!("{BLOCKS} blocks through window->filter->integrate: verified");
            // DMA time is clock-dependent (virtual vs wall): stderr.
            eprintln!(
                "overlay swaps: {} ({}us of DMA; 3 stages x {BLOCKS} blocks round-robin the window)",
                swaps[0], swap_us[0].round()
            );
            cp.wait_spe(t1);
            cp.wait_spe(t2);
        })
        .unwrap();
    eprintln!(
        "finished at t = {:.1} us (virtual on the sim backend, wall-clock on native)",
        report.end_time.as_micros_f64()
    );
}
