//! The paper's "longer example": three channel transfers relaying an array
//! from one SPE process to its parent PPE, from there to another node's
//! PPE, and from there to that node's SPE (Section IV.C — the program
//! whose CellPilot version took 80 lines vs 186 for the raw SDK).
//!
//! Run with: `cargo run --example relay`

use cellpilot::{CellPilotConfig, CellPilotOpts, CpChannel, CpProcess, SpeProgram, CP_MAIN};
use cp_pilot::PiValue;
use cp_simnet::ClusterSpec;

const N: usize = 100;

fn main() {
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg =
        CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::new().with_backend_from_env());

    let source = SpeProgram::new("source", 2048, |spe, _, _| {
        let data: Vec<i32> = (0..N as i32).map(|i| i * i).collect();
        spe.write(CpChannel(0), "%100d", &[PiValue::Int32(data)])
            .unwrap();
        println!("[source SPE] hop 1 sent (SPE -> parent PPE, type 2)");
    });
    let sink = SpeProgram::new("sink", 2048, |spe, _, _| {
        let vals = spe.read(CpChannel(2), "%100d").unwrap();
        let PiValue::Int32(v) = &vals[0] else {
            unreachable!()
        };
        println!(
            "[sink SPE]   hop 3 received (PPE -> SPE, type 2): sum = {}",
            v.iter().map(|&x| x as i64).sum::<i64>()
        );
    });

    let far_ppe = cfg
        .create_process("farPPE", 0, |cp, _| {
            let t = cp.run_spe(CpProcess(3), 0, 0).unwrap();
            let vals = cp.read(CpChannel(1), "%100d").unwrap();
            println!("[far PPE]    hop 2 received (PPE -> remote PPE, type 1)");
            cp.write(CpChannel(2), "%100d", &vals).unwrap();
            cp.wait_spe(t);
        })
        .unwrap();
    let src_spe = cfg.create_spe_process(&source, CP_MAIN, 0).unwrap();
    let sink_spe = cfg.create_spe_process(&sink, far_ppe, 0).unwrap();

    for (c, (from, to)) in [
        (0usize, (src_spe, CP_MAIN)),
        (1, (CP_MAIN, far_ppe)),
        (2, (far_ppe, sink_spe)),
    ] {
        let chan = cfg.channel(from, to).build().unwrap();
        assert_eq!(chan.0, c);
        println!(
            "hop {} is a {} channel",
            c + 1,
            cfg.channel_kind(chan).unwrap()
        );
    }

    let report = cfg
        .run(move |cp| {
            let t = cp.run_spe(src_spe, 0, 0).unwrap();
            let vals = cp.read(CpChannel(0), "%100d").unwrap();
            println!("[near PPE]   hop 1 received, forwarding over the wire");
            cp.write(CpChannel(1), "%100d", &vals).unwrap();
            cp.wait_spe(t);
        })
        .unwrap();
    println!(
        "relay finished across {} simulated processes",
        report.processes
    );
    eprintln!(
        "finished at t = {:.1} us (virtual on the sim backend, wall-clock on native)",
        report.end_time.as_micros_f64()
    );
}
