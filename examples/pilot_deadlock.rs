//! Pilot's integrated deadlock detection in action (`-pisvc=d`): two
//! processes read from each other before either writes — a circular wait.
//! With the service enabled, the run aborts with a diagnostic naming the
//! deadlocked processes instead of hanging.
//!
//! Run with: `cargo run -p cp-pilot --example pilot_deadlock`

use cp_pilot::{pi_read, pi_write, Backend, PiChannel, PilotConfig, PilotOpts};
use cp_simnet::{ClusterSpec, NodeId, NodeKind};

fn main() {
    let spec = ClusterSpec {
        nodes: vec![NodeKind::Commodity { cores: 4 }; 4],
        ..ClusterSpec::two_cells_one_xeon()
    };
    let placement = (0..4).map(NodeId).collect();
    let opts = PilotOpts {
        deadlock_detection: true, // mpirun ... -pisvc=d
        backend: Backend::from_env(),
        ..Default::default()
    };
    let mut cfg = PilotConfig::new(spec, placement, opts);

    let ping = cfg
        .create_process("ping", 0, |p, _| {
            // Reads before writing — so does pong. Classic circular wait.
            let _ = pi_read!(p, PiChannel(1), "%d");
            pi_write!(p, PiChannel(0), "%d", 1);
        })
        .unwrap();
    let pong = cfg
        .create_process("pong", 0, |p, _| {
            let _ = pi_read!(p, PiChannel(0), "%d");
            pi_write!(p, PiChannel(1), "%d", 2);
        })
        .unwrap();
    let _c0 = cfg.create_channel(ping, pong).unwrap();
    let _c1 = cfg.create_channel(pong, ping).unwrap();

    match cfg.run(|_p| {}) {
        Err(e) => {
            // The full diagnostic names the cycle in wait-for order; which
            // process the rendering starts from depends on event arrival
            // order, so it goes to stderr. stdout keeps the stable facts:
            // the verdict and the sorted set of deadlocked processes.
            eprintln!("full diagnostic: {e}");
            let msg = e.to_string();
            let mut parties: Vec<&str> = msg
                .rsplit("circular wait detected: ")
                .next()
                .unwrap_or("")
                .trim()
                .split(" -> ")
                .collect();
            parties.sort_unstable();
            parties.dedup();
            println!(
                "DEADLOCK: circular wait detected among: {}",
                parties.join(", ")
            );
        }
        Ok(_) => unreachable!("this program always deadlocks"),
    }
}
