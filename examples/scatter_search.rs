//! The paper's Section VI case study: scatter search parallelized over a
//! hybrid Cell cluster, with the improvement step running on SPE workers.
//!
//! Run with: `cargo run -p cp-scatter --example scatter_search`

use cp_scatter::{parallel_scatter_search, scatter_search, BinaryProblem, Knapsack, SsParams};
use cp_simnet::ClusterSpec;

fn main() {
    let problem = Knapsack::random(80, 2011);
    let params = SsParams {
        pool_size: 20,
        refset_size: 8,
        generations: 6,
        ..Default::default()
    };
    println!(
        "0/1 knapsack: {} items, capacity {}",
        problem.len(),
        problem.capacity
    );

    let seq = scatter_search(&problem, &params);
    println!("sequential scatter search: best value = {}", seq.fitness);

    let spec = ClusterSpec::two_cells_one_xeon();
    // The timing table is clock-dependent (virtual on the sim backend,
    // wall-clock on native): stderr. stdout keeps the quality facts.
    eprintln!(
        "\n{:>8} {:>14} {:>10} {:>10}",
        "workers", "time", "speedup", "best"
    );
    let mut base = 0.0;
    for workers in [1usize, 2, 4, 8, 12] {
        let r = parallel_scatter_search(&problem, &params, workers, &spec);
        if workers == 1 {
            base = r.virtual_us;
        }
        assert_eq!(
            r.best.fitness, seq.fitness,
            "parallel must match sequential quality"
        );
        println!(
            "parallel with {workers} workers: best value = {}",
            r.best.fitness
        );
        eprintln!(
            "{:>8} {:>11.0} us {:>9.2}x {:>10}",
            workers,
            r.virtual_us,
            base / r.virtual_us,
            r.best.fitness
        );
    }
    println!("\n(workers beyond 8 span both Cell nodes; channels become type 3)");
}
