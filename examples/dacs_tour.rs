//! A tour of the DaCS baseline library (`cp-dacs`) — the Cell SDK layer
//! the paper compares CellPilot against. Shows the hierarchical model's
//! mechanics (remote memory regions, put/get/wait, host↔AE scatter and
//! gather) and its two costs the paper calls out: the 36 600-byte SPE
//! footprint and the absence of any SPE↔SPE path.
//!
//! Run with: `cargo run -p cp-dacs --example dacs_tour`

use cp_cellsim::{CellCosts, CellNode, LS_SIZE};
use cp_dacs::{DacsHost, MemPerm, SPE_LIB_FOOTPRINT};
use cp_des::{Backend, Spawner};
use cp_native::Runner;

fn main() {
    let cell = CellNode::new(0, 8, 1 << 20, CellCosts::default());
    let mut sim = Runner::for_backend(Backend::from_env());
    let cell2 = cell.clone();
    sim.spawn_boxed(
        "host-element",
        Box::new(move |ctx| {
            let dacs = DacsHost::init(cell2.clone());
            println!(
                "host element with {} accelerator elements available",
                dacs.num_available_children()
            );

            // 1. Remote memory: the host shares a region; an AE queries,
            //    gets, transforms, and puts back.
            let base = cell2.mem.alloc(256, 16).unwrap();
            cell2.mem.write(base.0 as usize, &[3u8; 128]).unwrap();
            let mem = dacs.remote_mem_create(base, 256, MemPerm::ReadWrite);
            let pid = dacs
                .de_start(ctx, 0, "transform", 8192, move |ae| {
                    println!(
                        "  AE{}: local store has {} B free under libdacs ({} B resident)",
                        ae.index(),
                        ae.local_store().free_bytes(),
                        SPE_LIB_FOOTPRINT,
                    );
                    let len = ae.remote_mem_query(mem).unwrap();
                    let ls = ae.local_store().alloc(128, 16).unwrap();
                    ae.get(mem, 0, ls, 128, 0).unwrap();
                    ae.wait(0);
                    let data = ae.local_store().read(ls, 128).unwrap();
                    let tripled: Vec<u8> = data.iter().map(|&b| b * 3).collect();
                    ae.local_store().write(ls, &tripled).unwrap();
                    ae.put(mem, 128, ls, 128, 1).unwrap();
                    ae.wait(1);
                    ae.local_store().free(ls).unwrap();
                    ae.mailbox_write(len as u32);
                })
                .unwrap();
            let announced = dacs.mailbox_read(ctx, 0);
            assert_eq!(announced, 256);
            let out = cell2.mem.read(base.0 as usize + 128, 128).unwrap();
            assert_eq!(out, vec![9u8; 128]);
            ctx.join(pid);
            dacs.remote_mem_release(mem).unwrap();
            println!("  remote-mem roundtrip: host saw the transformed data");

            // 2. The scatter/gather collectives ("limited support for
            //    collective operations ... between the PPE and a list of
            //    SPEs").
            let aes = [1usize, 2, 3];
            let mut pids = Vec::new();
            for &hw in &aes {
                pids.push(
                    dacs.de_start(ctx, hw, "collect", 4096, move |ae| {
                        let part = ae.scatter_recv().unwrap();
                        let sum: u32 = part.iter().map(|&b| b as u32).sum();
                        ae.gather_send(&sum.to_be_bytes()).unwrap();
                    })
                    .unwrap(),
                );
            }
            let parts: Vec<Vec<u8>> = (0..3).map(|k| vec![k as u8 + 1; 64]).collect();
            dacs.scatter(ctx, &aes, &parts).unwrap();
            let sums = dacs.gather(ctx, &aes, 4).unwrap();
            for (k, s) in sums.iter().enumerate() {
                let v = u32::from_be_bytes(s[..4].try_into().unwrap());
                assert_eq!(v, (k as u32 + 1) * 64);
            }
            println!("  scatter/gather over {} AEs: sums verified", aes.len());
            for p in pids {
                ctx.join(p);
            }

            // 3. The footprint squeeze: a program CellPilot can load does not
            //    fit under DaCS.
            let big = LS_SIZE - SPE_LIB_FOOTPRINT + 1;
            match dacs.de_start(ctx, 0, "too-big", big, |_| {}) {
                Err(e) => println!("  {big}-byte image under DaCS: {e}"),
                Ok(_) => unreachable!(),
            }
        }),
    );
    let report = sim.run().unwrap();
    println!(
        "tour complete across {} simulated processes",
        report.processes
    );
    eprintln!(
        "finished at t = {:.1} us (virtual on the sim backend, wall-clock on native)",
        report.end_time.as_micros_f64()
    );
}
