//! Dynamically load-balanced Mandelbrot farm: work cost varies wildly per
//! row, so the master deals rows to whichever SPE worker finishes first,
//! discovered with the non-blocking `channel_has_data` (the Pilot
//! `PI_TrySelect` idiom). Rows near the set cost ~100× the edge rows, so
//! static striping would leave most SPEs idle.
//!
//! Run with: `cargo run --example mandelbrot_farm`

use cellpilot::{CellPilotConfig, CellPilotOpts, CpChannel, CpProcess, SpeProgram, CP_MAIN};
use cp_des::SimDuration;
use cp_pilot::PiValue;
use cp_simnet::ClusterSpec;

const WIDTH: usize = 96;
const HEIGHT: usize = 64;
const MAX_ITER: u32 = 800;
const WORKERS: usize = 8;

/// Escape-time iteration count for one pixel.
fn mandel(px: usize, py: usize) -> u32 {
    let x0 = -2.2 + 3.0 * px as f64 / WIDTH as f64;
    let y0 = -1.2 + 2.4 * py as f64 / HEIGHT as f64;
    let (mut x, mut y) = (0.0f64, 0.0f64);
    let mut it = 0;
    while x * x + y * y <= 4.0 && it < MAX_ITER {
        let xt = x * x - y * y + x0;
        y = 2.0 * x * y + y0;
        x = xt;
        it += 1;
    }
    it
}

fn row_pixels(py: usize) -> Vec<u32> {
    (0..WIDTH).map(|px| mandel(px, py)).collect()
}

fn main() {
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg =
        CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::new().with_backend_from_env());

    // Worker: read a row number (or -1 = done), compute it, send it back
    // prefixed with the row number and its total iteration cost.
    let worker = SpeProgram::new("mandel-worker", 6144, |spe, _, _| {
        let w = spe.index() as usize;
        let task = CpChannel(2 * w);
        let result = CpChannel(2 * w + 1);
        loop {
            let vals = spe.read(task, "%d").unwrap();
            let PiValue::Int32(v) = &vals[0] else {
                unreachable!()
            };
            let row = v[0];
            if row < 0 {
                return;
            }
            let pixels = row_pixels(row as usize);
            let iters: u64 = pixels.iter().map(|&p| p as u64).sum();
            // SIMD escape-time loop: model ~4 iterations per ns per lane.
            spe.ctx()
                .advance(SimDuration::from_micros_f64(iters as f64 * 0.004));
            spe.write(
                result,
                &format!("%d %{WIDTH}u"),
                &[PiValue::Int32(vec![row]), PiValue::UInt32(pixels)],
            )
            .unwrap();
        }
    });

    let host = cfg
        .create_process("host", 0, |cp, _| {
            let mut ts = Vec::new();
            for p in 0..cp.process_count() {
                if let Ok(t) = cp.run_spe(CpProcess(p), 0, 0) {
                    ts.push(t);
                }
            }
            for t in ts {
                cp.wait_spe(t);
            }
        })
        .unwrap();
    let mut chans = Vec::new();
    for w in 0..WORKERS {
        let parent = if w < WORKERS / 2 { CP_MAIN } else { host };
        let s = cfg.create_spe_process(&worker, parent, w as i32).unwrap();
        let task = cfg.channel(CP_MAIN, s).build().unwrap();
        let result = cfg.channel(s, CP_MAIN).build().unwrap();
        chans.push((task, result));
    }

    let report = cfg
        .run(move |cp| {
            let mut ts = Vec::new();
            for p in 0..cp.process_count() {
                if let Ok(t) = cp.run_spe(CpProcess(p), 0, 0) {
                    ts.push(t);
                }
            }
            let mut image = vec![Vec::new(); HEIGHT];
            let mut next_row = 0usize;
            let mut done_rows = 0usize;
            let mut tiles_per_worker = vec![0usize; WORKERS];
            // Prime every worker with one row.
            for (w, &(task, _)) in chans.iter().enumerate() {
                cp.write(task, "%d", &[PiValue::Int32(vec![next_row as i32])])
                    .unwrap();
                tiles_per_worker[w] += 1;
                next_row += 1;
            }
            // Dynamic dealing: poll result channels, refill the fastest.
            while done_rows < HEIGHT {
                let mut any = false;
                for (w, &(task, result)) in chans.iter().enumerate() {
                    if cp.channel_has_data(result).unwrap() {
                        any = true;
                        let vals = cp.read(result, &format!("%d %{WIDTH}u")).unwrap();
                        let PiValue::Int32(r) = &vals[0] else {
                            unreachable!()
                        };
                        let PiValue::UInt32(px) = &vals[1] else {
                            unreachable!()
                        };
                        image[r[0] as usize] = px.clone();
                        done_rows += 1;
                        if next_row < HEIGHT {
                            cp.write(task, "%d", &[PiValue::Int32(vec![next_row as i32])])
                                .unwrap();
                            tiles_per_worker[w] += 1;
                            next_row += 1;
                        }
                    }
                }
                if !any {
                    // Nothing ready: model the master's poll interval.
                    cp.ctx().advance(SimDuration::from_micros(20));
                }
            }
            // Retire the workers.
            for &(task, _) in &chans {
                cp.write(task, "%d", &[PiValue::Int32(vec![-1])]).unwrap();
            }
            // Verify against the sequential reference.
            for (py, row) in image.iter().enumerate() {
                assert_eq!(row, &row_pixels(py), "row {py}");
            }
            println!("rendered {WIDTH}x{HEIGHT} at up to {MAX_ITER} iterations; all rows verified");
            // Dealing is schedule-dependent (and so backend-dependent): stderr.
            eprintln!("rows per worker (dynamic dealing): {tiles_per_worker:?}");
            let interior: u64 = image.iter().flatten().map(|&p| p as u64).sum();
            println!("total iterations: {interior}");
            for t in ts {
                cp.wait_spe(t);
            }
        })
        .unwrap();
    eprintln!(
        "finished at t = {:.1} us (virtual on the sim backend, wall-clock on native)",
        report.end_time.as_micros_f64()
    );
}
