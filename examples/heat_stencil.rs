//! 1-D heat diffusion with halo exchange between neighbouring SPE workers
//! — the classic nearest-neighbour HPC pattern, here running over direct
//! SPE↔SPE channels (type 4 within a blade, type 5 across blades; the very
//! channels DaCS's strict hierarchy cannot express, per Section II.B).
//!
//! The rod is split across 8 SPE workers, 4 on each Cell node. Each
//! timestep every worker sends its boundary temperatures to its
//! neighbours, receives theirs, and applies the explicit Euler update.
//! The master verifies the result against a sequential reference.
//!
//! Run with: `cargo run --example heat_stencil`

use cellpilot::{CellPilotConfig, CellPilotOpts, CpChannel, CpProcess, SpeProgram, CP_MAIN};
use cp_des::SimDuration;
use cp_pilot::PiValue;
use cp_simnet::ClusterSpec;
use std::sync::Arc;
use std::sync::OnceLock;

const WORKERS: usize = 8;
const CHUNK: usize = 32;
const N: usize = WORKERS * CHUNK;
const STEPS: usize = 40;
const ALPHA: f64 = 0.2;

/// Channel layout, filled during configuration and read by the SPE
/// programs at run time (the configuration phase always completes before
/// the execution phase starts).
#[derive(Debug, Default)]
struct Layout {
    /// `to_left[w]`: worker w -> worker w-1 (None for w = 0).
    to_left: Vec<Option<CpChannel>>,
    /// `to_right[w]`: worker w -> worker w+1 (None for the last).
    to_right: Vec<Option<CpChannel>>,
    /// `result[w]`: worker w -> master.
    result: Vec<CpChannel>,
}

fn initial(i: usize) -> f64 {
    // A hot spot in the middle of the rod.
    if (N / 2 - 8..N / 2 + 8).contains(&i) {
        100.0
    } else {
        0.0
    }
}

fn step_chunk(chunk: &mut [f64], left_ghost: f64, right_ghost: f64) {
    let old = chunk.to_vec();
    let at = |i: isize| -> f64 {
        if i < 0 {
            left_ghost
        } else if i as usize >= old.len() {
            right_ghost
        } else {
            old[i as usize]
        }
    };
    for (i, c) in chunk.iter_mut().enumerate() {
        let i = i as isize;
        *c = at(i) + ALPHA * (at(i - 1) - 2.0 * at(i) + at(i + 1));
    }
}

fn sequential_reference() -> Vec<f64> {
    let mut rod: Vec<f64> = (0..N).map(initial).collect();
    for _ in 0..STEPS {
        // Fixed (insulating mirror) boundaries, matching the workers'
        // treatment of the rod ends.
        let mut chunks: Vec<Vec<f64>> = rod.chunks(CHUNK).map(<[f64]>::to_vec).collect();
        for (w, chunk) in chunks.iter_mut().enumerate() {
            let left = if w == 0 { chunk[0] } else { rod[w * CHUNK - 1] };
            let right = if w == WORKERS - 1 {
                chunk[CHUNK - 1]
            } else {
                rod[(w + 1) * CHUNK]
            };
            step_chunk(chunk, left, right);
        }
        rod = chunks.concat();
    }
    rod
}

fn main() {
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg =
        CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::new().with_backend_from_env());
    let layout: Arc<OnceLock<Layout>> = Arc::new(OnceLock::new());

    let lay = layout.clone();
    let worker = SpeProgram::new("heat-worker", 8192, move |spe, _, _| {
        let w = spe.index() as usize;
        let lay = lay.get().expect("layout fixed before execution");
        let mut chunk: Vec<f64> = (w * CHUNK..(w + 1) * CHUNK).map(initial).collect();
        let read_halo = |c: CpChannel| -> f64 {
            let v = spe.read(c, "%lf").unwrap();
            let PiValue::Float64(x) = &v[0] else {
                unreachable!()
            };
            x[0]
        };
        for _ in 0..STEPS {
            // SPE<->SPE channel writes rendezvous at the Co-Pilot (all
            // CellPilot communication is blocking), so a uniform
            // write-then-read order would cycle. Classic odd-even
            // schedule: even workers send first, odd workers receive
            // first. Rod ends mirror themselves.
            let send = |dir: &Option<CpChannel>, val: f64| {
                if let Some(c) = dir {
                    spe.write(*c, "%lf", &[PiValue::Float64(vec![val])])
                        .unwrap();
                }
            };
            let (mut left_ghost, mut right_ghost) = (chunk[0], chunk[CHUNK - 1]);
            if w.is_multiple_of(2) {
                send(&lay.to_left[w], chunk[0]);
                send(&lay.to_right[w], chunk[CHUNK - 1]);
                if let Some(c) = w.checked_sub(1).and_then(|lw| lay.to_right[lw]) {
                    left_ghost = read_halo(c);
                }
                if let Some(c) = lay.to_left.get(w + 1).copied().flatten() {
                    right_ghost = read_halo(c);
                }
            } else {
                if let Some(c) = w.checked_sub(1).and_then(|lw| lay.to_right[lw]) {
                    left_ghost = read_halo(c);
                }
                if let Some(c) = lay.to_left.get(w + 1).copied().flatten() {
                    right_ghost = read_halo(c);
                }
                send(&lay.to_left[w], chunk[0]);
                send(&lay.to_right[w], chunk[CHUNK - 1]);
            }
            step_chunk(&mut chunk, left_ghost, right_ghost);
            // Model the SIMD stencil update.
            spe.ctx()
                .advance(SimDuration::from_micros_f64(CHUNK as f64 * 0.05));
        }
        spe.write(lay.result[w], "%32lf", &[PiValue::Float64(chunk)])
            .unwrap();
    });

    // 4 workers per Cell node.
    let host = cfg
        .create_process("host", 0, |cp, _| {
            let mut ts = Vec::new();
            for p in 0..cp.process_count() {
                if let Ok(t) = cp.run_spe(CpProcess(p), 0, 0) {
                    ts.push(t);
                }
            }
            for t in ts {
                cp.wait_spe(t);
            }
        })
        .unwrap();
    let mut spes = Vec::new();
    for w in 0..WORKERS {
        let parent = if w < WORKERS / 2 { CP_MAIN } else { host };
        spes.push(cfg.create_spe_process(&worker, parent, w as i32).unwrap());
    }
    let mut lay = Layout {
        to_left: vec![None; WORKERS],
        to_right: vec![None; WORKERS],
        result: Vec::new(),
    };
    for w in 1..WORKERS {
        lay.to_left[w] = Some(cfg.channel(spes[w], spes[w - 1]).build().unwrap());
    }
    for w in 0..WORKERS - 1 {
        lay.to_right[w] = Some(cfg.channel(spes[w], spes[w + 1]).build().unwrap());
    }
    for &spe in &spes {
        lay.result.push(cfg.channel(spe, CP_MAIN).build().unwrap());
    }
    // The w=3 / w=4 halo channels cross the two Cell nodes.
    println!(
        "halo channel 3->4 is {} (crosses blades)",
        cfg.channel_kind(lay.to_right[3].unwrap()).unwrap()
    );
    println!(
        "halo channel 1->2 is {} (within one blade)",
        cfg.channel_kind(lay.to_right[1].unwrap()).unwrap()
    );
    let result_chans = lay.result.clone();
    layout.set(lay).expect("layout set once");

    let report = cfg
        .run(move |cp| {
            let mut ts = Vec::new();
            for p in 0..cp.process_count() {
                if let Ok(t) = cp.run_spe(CpProcess(p), 0, 0) {
                    ts.push(t);
                }
            }
            let mut rod = Vec::with_capacity(N);
            for &c in &result_chans {
                let vals = cp.read(c, "%32lf").unwrap();
                let PiValue::Float64(chunk) = &vals[0] else {
                    unreachable!()
                };
                rod.extend_from_slice(chunk);
            }
            let reference = sequential_reference();
            for (i, (a, b)) in rod.iter().zip(&reference).enumerate() {
                assert!((a - b).abs() < 1e-12, "cell {i}: {a} vs {b}");
            }
            let total: f64 = rod.iter().sum();
            println!(
                "{STEPS} timesteps over {N} cells on {WORKERS} SPEs: matches the \
                 sequential reference (total heat {total:.3})"
            );
            for t in ts {
                cp.wait_spe(t);
            }
        })
        .unwrap();
    eprintln!(
        "finished at t = {:.1} us (virtual on the sim backend, wall-clock on native)",
        report.end_time.as_micros_f64()
    );
}
