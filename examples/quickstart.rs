//! Quickstart: the paper's Figures 3 and 4, line for line.
//!
//! Two Cell nodes. `main` (the sender-side PPE, `PI_MAIN`) creates one
//! regular Pilot process (`recvFunc`, the receiver-side PPE) and two SPE
//! processes; a channel joins the two SPEs — a **type 5** channel, relayed
//! through both nodes' Co-Pilot processes. One SPE writes an array of 100
//! integers; the other reads it with the `"%*d"` argument-supplied-length
//! format and prints it, exactly like the paper's listing.
//!
//! Run with: `cargo run --example quickstart`

use cellpilot::{CellPilotConfig, CellPilotOpts, CpChannel, CpProcess, SpeProgram, CP_MAIN};
use cp_pilot::PiValue;
use cp_simnet::ClusterSpec;

fn main() {
    // --- configuration phase (paper Figure 3, lines 16-24) ---
    let spec = ClusterSpec::two_cells_one_xeon();
    let mut cfg =
        CellPilotConfig::one_rank_per_node(spec, CellPilotOpts::new().with_backend_from_env());

    // --- Sender SPE (Figure 4, spe_send.c) ---
    let spe_send = SpeProgram::new("spe_send", 2048, |spe, _arg1, _arg2| {
        let array: Vec<i32> = (0..100).collect();
        spe.write(CpChannel(0), "%100d", &[PiValue::Int32(array)])
            .unwrap();
    });

    // --- Receiver SPE (Figure 4, spe_recv.c) ---
    let spe_recv = SpeProgram::new("spe_recv", 2048, |spe, _arg1, _arg2| {
        let vals = spe.read(CpChannel(0), "%*d").unwrap();
        let PiValue::Int32(array) = &vals[0] else {
            unreachable!()
        };
        let line: Vec<String> = array.iter().map(i32::to_string).collect();
        println!("{}", line.join(" "));
    });

    // recvFunc: the receiver-side PPE process; it launches its SPE.
    let recv_ppe = cfg
        .create_process("recvFunc", 0, |cp, _arg| {
            let t = cp.run_spe(CpProcess(3), 0, 0).unwrap();
            cp.wait_spe(t);
        })
        .unwrap();
    let send_spe = cfg.create_spe_process(&spe_send, CP_MAIN, 0).unwrap();
    let recv_spe = cfg.create_spe_process(&spe_recv, recv_ppe, 0).unwrap();
    let between_spes = cfg.channel(send_spe, recv_spe).build().unwrap();
    println!(
        "channel 'betweenSPEs' classified as {} (paper Table I)",
        cfg.channel_kind(between_spes).unwrap()
    );

    // --- execution phase (Figure 3, lines 26-29) ---
    let report = cfg
        .run(move |cp| {
            let t = cp.run_spe(send_spe, 0, 0).unwrap();
            cp.wait_spe(t);
        })
        .unwrap();
    println!("done across {} simulated processes", report.processes);
    eprintln!(
        "finished at t = {:.1} us (virtual on the sim backend, wall-clock on native)",
        report.end_time.as_micros_f64()
    );
}
